//! Quickstart: store and retrieve a file through the RobuSTore client API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Sets up an in-memory deployment of 16 heterogeneous "disks", writes a
//! 4 MB object with LT-coded redundancy, reads it back speculatively, and
//! patches 1 KB in place — printing what each step cost.

use robustore::core::{AccessMode, Client, InMemoryBackend, QosOptions, System, SystemConfig};

fn main() {
    // A pool of 16 disks whose nominal speeds span ~10x, like a federated
    // storage system built from different generations of hardware.
    let speeds: Vec<f64> = (0..16).map(|i| 6e6 + i as f64 * 4e6).collect();
    let system = System::new(
        InMemoryBackend::new(speeds),
        SystemConfig {
            block_bytes: 64 << 10, // 64 KB blocks for a small demo object
            ..Default::default()
        },
    );

    let me = system.register_user();
    let client = Client::connect(&system, me);

    // --- write -----------------------------------------------------------
    let data: Vec<u8> = (0..4 << 20).map(|i| (i % 251) as u8).collect();
    let mut handle = client
        .open(
            "datasets/sky-survey.tile",
            AccessMode::Write,
            QosOptions::best_effort().with_redundancy(3.0),
        )
        .expect("open for write");
    let wr = client.write(&mut handle, &data).expect("write");
    println!(
        "wrote {} MB as {} coded blocks over {} disks (redundancy {:.0}%)",
        data.len() >> 20,
        wr.blocks_written,
        wr.disks,
        wr.redundancy * 100.0
    );
    client.close(handle).expect("close writer");

    // --- read ------------------------------------------------------------
    let handle = client
        .open(
            "datasets/sky-survey.tile",
            AccessMode::Read,
            QosOptions::best_effort(),
        )
        .expect("open for read");
    let (back, rr) = client.read_with_report(&handle).expect("read");
    assert_eq!(back, data, "round-trip fidelity");
    println!(
        "read it back from {} blocks ({} cancelled unread; reception overhead {:.0}%)",
        rr.blocks_fetched,
        rr.blocks_cancelled,
        rr.reception_overhead * 100.0
    );
    client.close(handle).expect("close reader");

    // --- update ----------------------------------------------------------
    let mut handle = client
        .open(
            "datasets/sky-survey.tile",
            AccessMode::Write,
            QosOptions::best_effort(),
        )
        .expect("reopen for update");
    let patch = vec![0x42u8; 1024];
    let ur = client.update(&mut handle, 1 << 20, &patch).expect("update");
    println!(
        "patched 1 KB: {} original block(s) changed, {} coded blocks rewritten ({:.1}% of stored data)",
        ur.originals_changed,
        ur.coded_rewritten,
        ur.fraction_rewritten * 100.0
    );
    client.close(handle).expect("close updater");

    let (reads, writes) = system.backend_stats();
    println!("backend traffic: {reads} block reads, {writes} block writes");
}
