//! A shared, multi-tenant cluster: competitive workloads, admission
//! control, and delegated access.
//!
//! ```text
//! cargo run --release --example shared_cluster [trials]
//! ```
//!
//! Part 1 quantifies what disk sharing does to each scheme (§6.3.2): the
//! same 1 GB read with every disk running heterogeneous competitive
//! background workloads. Part 2 demonstrates the framework side: per-server
//! admission control refusing an overloaded tenant, and a credential chain
//! letting a collaborator read a private dataset (Appendices B/C).

use robustore::cluster::BackgroundPolicy;
use robustore::core::{
    AccessMode, Client, CredentialChain, InMemoryBackend, QosOptions, Rights, StoreError, System,
    SystemConfig,
};
use robustore::schemes::{run_trials, AccessConfig, SchemeKind};
use robustore::simkit::report::{mbps, Table};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    // ---------------------------------------------------------------
    // Part 1: competitive workloads (cf. Figures 6-26/6-27 at D=3).
    // ---------------------------------------------------------------
    println!("1 GB read with heterogeneous competitive workloads on every disk, {trials} trials\n");
    let mut table = Table::new(
        "Read under disk sharing",
        &["scheme", "bandwidth (MB/s)", "stdev (s)", "I/O overhead"],
    );
    for scheme in SchemeKind::ALL {
        let mut cfg = AccessConfig::default().with_scheme(scheme);
        cfg.background = BackgroundPolicy::Heterogeneous;
        let s = run_trials(&cfg, trials, 0xD15C);
        table.row(vec![
            scheme.name().to_string(),
            mbps(s.mean_bandwidth_mbps()),
            format!("{:.2}", s.latency_stdev_secs()),
            format!("{:.0}%", s.mean_io_overhead() * 100.0),
        ]);
    }
    println!("{}", table.render());

    // ---------------------------------------------------------------
    // Part 2: admission control + delegation on the framework.
    // ---------------------------------------------------------------
    let system = System::new(
        InMemoryBackend::new((0..8).map(|i| 10e6 + i as f64 * 5e6).collect()),
        SystemConfig {
            block_bytes: 64 << 10,
            admission_capacity: 1,
            ..Default::default()
        },
    );
    let pi = system.register_user(); // principal investigator
    let postdoc = system.register_user();
    let pi_client = Client::connect(&system, pi);
    let postdoc_client = Client::connect(&system, postdoc);

    let data: Vec<u8> = (0..2 << 20).map(|i| (i % 199) as u8).collect();
    let mut h = pi_client
        .open(
            "lab/results.raw",
            AccessMode::Write,
            QosOptions::best_effort(),
        )
        .expect("open");
    pi_client.write(&mut h, &data).expect("write");
    pi_client.close(h).expect("close");
    println!("PI stored lab/results.raw ({} MB)", data.len() >> 20);

    // A greedy tenant saturates every server's admission slot.
    for d in 0..8 {
        system.occupy_admission(d, 4242);
    }
    let mut h = pi_client
        .open("lab/scratch", AccessMode::Write, QosOptions::best_effort())
        .expect("open scratch");
    match pi_client.write(&mut h, &data) {
        Err(StoreError::AdmissionDenied { disk }) => {
            println!("admission control refused the write (server of disk {disk} is full)");
        }
        other => panic!("expected admission denial, got {other:?}"),
    }
    for d in 0..8 {
        system.release_admission(d, 4242);
    }
    pi_client
        .write(&mut h, &data)
        .expect("write after tenants leave");
    pi_client.close(h).expect("close scratch");
    println!("…and admitted it once the competing tenant released its slots");

    // The postdoc cannot read the PI's file without a credential.
    assert!(matches!(
        postdoc_client.open(
            "lab/results.raw",
            AccessMode::Read,
            QosOptions::best_effort()
        ),
        Err(StoreError::AccessDenied(_))
    ));
    let cred = system
        .issue_credential(pi, postdoc, Rights::R, "lab/results.raw", 10_000)
        .expect("issue credential");
    let chain = CredentialChain(vec![cred]);
    let h = postdoc_client
        .open_with_chain(
            "lab/results.raw",
            AccessMode::Read,
            QosOptions::best_effort(),
            &chain,
        )
        .expect("delegated open");
    let back = postdoc_client.read(&h).expect("delegated read");
    postdoc_client.close(h).expect("close");
    assert_eq!(back, data);
    println!("postdoc read the dataset through a credential chain delegated by the PI");
}
