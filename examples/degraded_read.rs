//! Failure injection: how much of the cluster can die before an object
//! becomes unreadable?
//!
//! ```text
//! cargo run --release --example degraded_read [trials]
//! ```
//!
//! Part 1 (framework): store an object at 3x redundancy on 12 disks, then
//! kill servers one by one and keep reading until the redundancy runs out.
//!
//! Part 2 (simulation): the same question as a performance experiment —
//! read bandwidth and failure rate per scheme as selected disks go down
//! (the §4.1.3 argument: erasure coding needs only *any* sufficient
//! subset; plain striping dies with the first disk).

use robustore::core::{AccessMode, Client, InMemoryBackend, QosOptions, System, SystemConfig};
use robustore::schemes::{run_trials, AccessConfig, SchemeKind};
use robustore::simkit::report::{mbps, Table};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    // --- Part 1: the client API under failures -----------------------
    let system = System::new(
        InMemoryBackend::new((0..12).map(|i| 8e6 + i as f64 * 5e6).collect()),
        SystemConfig {
            block_bytes: 64 << 10,
            ..Default::default()
        },
    );
    let me = system.register_user();
    let client = Client::connect(&system, me);
    let data: Vec<u8> = (0..3 << 20).map(|i| (i % 241) as u8).collect();
    let mut h = client
        .open(
            "survivor.dat",
            AccessMode::Write,
            QosOptions::best_effort().with_redundancy(3.0),
        )
        .expect("open");
    client.write(&mut h, &data).expect("write");
    client.close(h).expect("close");
    println!("stored 3 MB at 300% redundancy on 12 disks; now killing disks:");

    let mut dead = 0;
    loop {
        let h = client
            .open("survivor.dat", AccessMode::Read, QosOptions::best_effort())
            .expect("open for read");
        match client.read_with_report(&h) {
            Ok((back, rr)) => {
                assert_eq!(back, data);
                println!(
                    "  {dead:2} disk(s) down: read OK from {} blocks ({} unread)",
                    rr.blocks_fetched, rr.blocks_cancelled
                );
            }
            Err(e) => {
                println!("  {dead:2} disk(s) down: read failed ({e}) — redundancy exhausted");
                client.close(h).expect("close");
                break;
            }
        }
        client.close(h).expect("close");
        system.set_disk_offline(dead, true);
        dead += 1;
        if dead > 11 {
            break;
        }
    }

    // --- Part 2: scheme comparison under failures --------------------
    println!("\n1 GB read, 64 disks, 3x redundancy, with failed servers ({trials} trials):\n");
    let mut table = Table::new(
        "Reads with injected server failures",
        &[
            "failed disks",
            "scheme",
            "bandwidth (MB/s)",
            "failed trials",
        ],
    );
    for failed in [0usize, 1, 4, 8] {
        for scheme in [SchemeKind::Raid0, SchemeKind::RraidA, SchemeKind::RobuStore] {
            let mut cfg = AccessConfig::default().with_scheme(scheme);
            cfg.failed_disks = failed;
            let s = run_trials(&cfg, trials, 0xDEAD + failed as u64);
            table.row(vec![
                failed.to_string(),
                scheme.name().to_string(),
                if s.trials() > 0 {
                    mbps(s.mean_bandwidth_mbps())
                } else {
                    "-".into()
                },
                format!("{}/{}", s.failures, trials),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "RAID-0 dies with the first failure; RobuSTore's symmetric redundancy reads on \
         (slightly slower as survivors carry the load)."
    );
}
