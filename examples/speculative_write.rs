//! Speculative writing and what it does to later reads (§6.3.1, Figures
//! 6-18..6-23).
//!
//! ```text
//! cargo run --release --example speculative_write [trials]
//! ```
//!
//! Writes 1 GB at 3x redundancy under each scheme, then reads RobuSTore's
//! *unbalanced* layout back over independently-drawn disk performance —
//! the paper's read-after-write scenario. The fixed-layout schemes crawl
//! (every disk must absorb the same share, so the slowest disk gates the
//! write); speculative writing lets fast disks take more blocks.

use robustore::schemes::{run_trials, AccessConfig, AccessKind, SchemeKind};
use robustore::simkit::report::{mbps, Table};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    println!("1 GB write at 300% redundancy, 64 disks, {trials} trials\n");
    let mut table = Table::new(
        "Write access (cf. Figures 6-18/6-19/6-20 at D=3)",
        &["scheme", "bandwidth (MB/s)", "stdev (s)", "I/O overhead"],
    );
    for scheme in SchemeKind::ALL {
        let cfg = AccessConfig::default()
            .with_scheme(scheme)
            .with_kind(AccessKind::Write);
        let s = run_trials(&cfg, trials, 0xBEEF);
        table.row(vec![
            scheme.name().to_string(),
            mbps(s.mean_bandwidth_mbps()),
            format!("{:.2}", s.latency_stdev_secs()),
            format!("{:.0}%", s.mean_io_overhead() * 100.0),
        ]);
    }
    println!("{}", table.render());

    println!("Read-after-write: RobuSTore reads its unbalanced layout back\n");
    let mut table = Table::new(
        "Read after write (cf. Figures 6-21/6-22/6-23 at D=3)",
        &["scheme", "bandwidth (MB/s)", "stdev (s)", "I/O overhead"],
    );
    for scheme in [SchemeKind::Raid0, SchemeKind::RraidA, SchemeKind::RobuStore] {
        let cfg = AccessConfig::default()
            .with_scheme(scheme)
            .with_kind(AccessKind::ReadAfterWrite);
        let s = run_trials(&cfg, trials, 0xFEED);
        table.row(vec![
            scheme.name().to_string(),
            mbps(s.mean_bandwidth_mbps()),
            format!("{:.2}", s.latency_stdev_secs()),
            format!("{:.0}%", s.mean_io_overhead() * 100.0),
        ]);
    }
    println!("{}", table.render());
}
