//! The paper's headline experiment: read 1 GB from 64 heterogeneous disks
//! under all four storage schemes (§6.3.1, Figure 6-6 at H = 64).
//!
//! ```text
//! cargo run --release --example gigabyte_read [trials]
//! ```
//!
//! Expect RobuSTore to deliver an order of magnitude more bandwidth than
//! RAID-0 with the lowest latency variation, at ~40-50% I/O overhead.

use robustore::schemes::{run_trials, AccessConfig, SchemeKind};
use robustore::simkit::report::{mbps, Table};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    println!("1 GB read, 64 of 128 disks, heterogeneous in-disk layout, {trials} trials\n");
    let mut table = Table::new(
        "Read access, paper baseline (cf. Figures 6-6/6-7/6-8 at 64 disks)",
        &[
            "scheme",
            "bandwidth (MB/s)",
            "latency (s)",
            "stdev (s)",
            "I/O overhead",
        ],
    );
    let mut raid0_bw = 0.0;
    let mut robusto_bw = 0.0;
    for scheme in SchemeKind::ALL {
        let cfg = AccessConfig::default().with_scheme(scheme);
        let s = run_trials(&cfg, trials, 0xC0FFEE);
        if scheme == SchemeKind::Raid0 {
            raid0_bw = s.mean_bandwidth_mbps();
        }
        if scheme == SchemeKind::RobuStore {
            robusto_bw = s.mean_bandwidth_mbps();
        }
        table.row(vec![
            scheme.name().to_string(),
            mbps(s.mean_bandwidth_mbps()),
            format!("{:.2}", s.mean_latency_secs()),
            format!("{:.2}", s.latency_stdev_secs()),
            format!("{:.0}%", s.mean_io_overhead() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "RobuSTore/RAID-0 bandwidth ratio: {:.1}x (paper: ~15x)",
        robusto_bw / raid0_bw
    );
}
