//! Offline drop-in subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free lock
//! signatures (`lock()` returns the guard directly, with poison errors
//! treated as fatal). The workspace only needs `Mutex`/`RwLock`
//! semantics, not parking_lot's performance characteristics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A thread that
    /// panicked while holding the lock does not poison it (parking_lot
    /// semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
