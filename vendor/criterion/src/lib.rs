//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this vendored
//! substitute keeps the workspace's `[[bench]]` targets compiling and
//! runnable. It performs a short timed smoke run per benchmark and
//! prints mean wall-clock time (plus derived throughput) — no warmup,
//! no statistics, no reports. Treat the numbers as order-of-magnitude
//! only; the benches' real value offline is exercising the hot paths.

use std::fmt;
use std::time::{Duration, Instant};

/// Smoke-run iteration budget: enough to amortize timer overhead
/// without making `cargo bench` crawl on simulation-heavy benches.
const MAX_ITERS: u64 = 10;
/// Per-benchmark time budget; iteration stops once exceeded.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (smoke-run edition).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Construct with defaults.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Hook for `criterion_main!`; the smoke runner has no deferred
    /// output.
    pub fn final_summary(&mut self) {}
}

/// Group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke runner uses its own
    /// fixed iteration budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure under a plain string id.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.throughput, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Benchmark identifier: function name plus a displayed parameter.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// `name` labeled with `parameter` (anything `Display`).
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            name: name.into(),
            param: parameter.to_string(),
        }
    }

    /// Id with a parameter only (criterion calls this the function id).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: String::new(),
            param: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
    /// Bytes, displayed in decimal multiples.
    BytesDecimal(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, repeating it up to the smoke budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..MAX_ITERS {
            black_box(routine());
            self.iters_done += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("  {id}: no iterations run");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!(" ({:.1} MB/s)", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "  {id}: {:.3} ms/iter{rate}  [{} iters]",
        per_iter * 1e3,
        b.iters_done
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $(
                $target(&mut c);
            )+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.sample_size(10);
        g.throughput(Throughput::Elements(1000));
        g.bench_with_input(BenchmarkId::new("n", 1000u32), &1000u32, |b, &n| {
            b.iter(|| (0..n).map(u64::from).sum::<u64>());
        });
        g.bench_function("plain", |b| b.iter(|| black_box(21) * 2));
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn smoke_runner_executes() {
        benches();
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("k", 256).to_string(), "k/256");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
