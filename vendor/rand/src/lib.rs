//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of `rand` it actually uses: the [`RngCore`]/[`SeedableRng`]
//! core traits, the [`Rng`] extension methods (`gen`, `gen_range`,
//! `gen_bool`), [`rngs::SmallRng`] backed by xoshiro256++ (the same
//! algorithm rand 0.8 uses on 64-bit platforms), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Determinism is the only hard requirement for the simulator: all draws
//! are pure functions of the seed, with no platform- or time-dependent
//! state, and the implementations are fixed here so results can never
//! shift under a dependency upgrade.

/// Core random-number source: the subset of `rand_core::RngCore` used by
/// this workspace.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded through SplitMix64 (the
    /// expansion the xoshiro authors recommend).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's `SmallRng` on 64-bit platforms.
    ///
    /// Small, fast, excellent statistical quality; not cryptographic
    /// (nothing in the simulator is adversarial).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one degenerate fixed point of the
            // xoshiro family; nudge it to the generator's reference seed.
            if s == [0; 4] {
                s = [
                    0x180E_C6D3_3CFD_0ABA,
                    0xD5A6_1266_F0C9_392C,
                    0xA958_7630_1861_AB94,
                    0x2957_0B82_D476_1B45,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    //! The `Standard` distribution for `Rng::gen`.

    use super::RngCore;

    /// Uniform distribution over a type's full value range (probabilities
    /// for `bool`, `[0,1)` for floats).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    /// Types samplable from a distribution.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_standard {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits: the standard [0,1) construction.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by 128-bit widening multiply (Lemire),
/// with a rejection step so the result is exactly uniform.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected: retry (probability < span / 2^64, essentially never).
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the `Standard` distribution (full integer range,
    /// `[0,1)` for floats, fair coin for `bool`).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rr>(&mut self, range: Rr) -> T
    where
        Rr: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice shuffling and selection.

    use super::{RngCore, SampleRange as _};

    /// The used subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ with state [1, 2, 3, 4] produces
        // 41943041 first (rotl(1+4,23)+1 = 5<<23 + 1).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 41943041);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(15);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = SmallRng::seed_from_u64(19);
        let _: u8 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
