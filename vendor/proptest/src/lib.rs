//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro,
//! `prop_assert*` / [`prop_assume!`], [`any`], numeric-range and tuple
//! strategies, and [`collection::vec`].
//!
//! Unlike real proptest this runner does **not** shrink failing inputs —
//! it reports the failing case's values and panics. Sampling is fully
//! deterministic: each test draws from an RNG seeded by the test's own
//! `module_path!()::name`, so failures reproduce exactly from one run to
//! the next (a property the simulator's own determinism tests rely on).

use std::fmt;

/// Deterministic sampling source for strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully-qualified name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating values.

    use super::TestRng;

    /// A generator of test inputs. Mirrors proptest's trait of the same
    /// name, minus shrinking.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let u = rng.unit_f64();
                    let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                    v as $t
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the unconstrained strategy for a type.

    use super::strategy::{Any, Arbitrary};

    /// Strategy yielding any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration and per-case error type.

    use super::fmt;

    /// Mirrors `proptest::test_runner::Config` for the fields this
    /// workspace sets.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Build a failure with a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Build an assumption rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }

        /// True if this case was merely skipped.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
                TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            }
        }
    }
}

/// Define property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(...)]` header followed by `fn`s whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($body:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($body)*);
    };
    (
        @funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $block:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    // Rendered before the body runs: the body may consume
                    // the arguments, and they must still be reportable on
                    // failure.
                    let mut inputs = ::std::string::String::new();
                    $(
                        inputs.push_str(&format!(
                            "\n  {} = {:?}",
                            stringify!($arg),
                            &$arg,
                        ));
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $block ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err(e) if e.is_reject() => {}
                        ::std::result::Result::Err(e) => {
                            panic!(
                                "proptest '{}' failed on case {}:\n{}\ninputs:{}",
                                stringify!($name),
                                ran,
                                e,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($body:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($body)*);
    };
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r,
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: {:?}",
            l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(
            a in 3u64..9,
            b in -5i32..=5,
            f in -1.5f64..2.5,
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        /// vec lengths respect the size range; tuples compose.
        #[test]
        fn vec_and_tuples(
            v in collection::vec(any::<u8>(), 2..7),
            nested in collection::vec(collection::vec(0u8..4, 3usize), 1..4),
            pair in (any::<bool>(), 0u64..12),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!((1..4).contains(&nested.len()));
            for inner in &nested {
                prop_assert_eq!(inner.len(), 3);
                prop_assert!(inner.iter().all(|&x| x < 4));
            }
            prop_assert!(pair.1 < 12);
        }

        /// prop_assume skips cases without failing the test.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x was {}", x);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("some::test");
        let mut b = crate::TestRng::for_test("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    fn _impl_strategy_in_return_position() -> impl Strategy<Value = Vec<Vec<u8>>> {
        collection::vec(collection::vec(any::<u8>(), 4usize), 2usize)
    }
}
