//! Statistics accumulators for the evaluation metrics.
//!
//! The paper reports, per configuration, the mean over 100 trials of each
//! metric and the standard deviation of access latency (its robustness
//! metric, §6.2.3). [`OnlineStats`] implements Welford's numerically stable
//! one-pass algorithm; [`Summary`] is the frozen result.

/// One-pass mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (n-1) standard deviation; 0 with fewer than two observations.
    pub fn stdev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0).sqrt()
        }
    }

    /// Population (n) standard deviation; 0 when empty.
    pub fn stdev_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0).sqrt()
        }
    }

    /// Minimum observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Relative standard deviation, stdev / mean (0 if the mean is 0).
    pub fn relative_stdev(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stdev() / m
        }
    }

    /// Freeze into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stdev: self.stdev(),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Frozen summary of a set of observations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample (n-1) standard deviation.
    pub stdev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Relative standard deviation (coefficient of variation).
    pub fn relative_stdev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stdev / self.mean
        }
    }
}

/// Sub-buckets per octave in [`LogHistogram`]: values ≥ 2^6 land in
/// buckets of width 2^(e-5) for e = ⌊log2 v⌋, bounding the relative
/// quantisation error by 1/32 ≈ 3.1%.
const HIST_SUB: usize = 32;

/// HDR-style log-bucket latency histogram over `u64` microseconds.
///
/// Values below 64 µs are recorded exactly (unit buckets); above that,
/// each power-of-two octave is split into [`HIST_SUB`] equal buckets, so
/// quantile estimates carry at most ~3% relative error regardless of
/// range. Recording is O(1) with no allocation beyond amortised growth
/// of the bucket vector, which makes it safe to call from open-loop
/// load generators recording hundreds of thousands of samples.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(v: u64) -> usize {
        if v < 2 * HIST_SUB as u64 {
            return v as usize;
        }
        let e = 63 - v.leading_zeros() as usize; // ⌊log2 v⌋, ≥ 6
        let offset = (v >> (e - 5)) as usize - HIST_SUB;
        2 * HIST_SUB + (e - 6) * HIST_SUB + offset
    }

    /// Upper edge (inclusive) of the bucket at `index` — the value
    /// reported for any sample that fell in it, so quantiles are
    /// conservative (never under-reported).
    fn bucket_high(index: usize) -> u64 {
        if index < 2 * HIST_SUB {
            return index as u64;
        }
        let e = 6 + (index - 2 * HIST_SUB) / HIST_SUB;
        let offset = (index - 2 * HIST_SUB) % HIST_SUB;
        ((HIST_SUB + offset + 1) as u64) << (e - 5)
    }

    /// Fold in one sample, in microseconds.
    pub fn record(&mut self, micros: u64) {
        let i = Self::index(micros);
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += 1;
        self.count += 1;
        self.max = self.max.max(micros);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded exactly (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper edge of
    /// the bucket holding the ⌈q·n⌉-th order statistic — except `q = 1`,
    /// which returns the exact maximum. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (parallel reduction).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// A percentile of a sample, by linear interpolation between order
/// statistics (the "exclusive" definition); `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q));
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stdev_population() - 2.0).abs() < 1e-12);
        assert!((s.stdev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_single() {
        let empty = OnlineStats::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.stdev(), 0.0);
        assert!(empty.min().is_nan());

        let one: OnlineStats = [3.5].into_iter().collect();
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.stdev(), 0.0);
        assert_eq!(one.min(), 3.5);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..37].iter().copied().collect();
        let right: OnlineStats = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.stdev() - whole.stdev()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), 2);
        let mut e = OnlineStats::new();
        e.merge(&s);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn relative_stdev() {
        let s: OnlineStats = [10.0, 10.0, 10.0].into_iter().collect();
        assert_eq!(s.relative_stdev(), 0.0);
        let z = OnlineStats::new();
        assert_eq!(z.relative_stdev(), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 0.25), 2.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn log_histogram_exact_below_64() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 7, 42, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 63);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 63);
    }

    #[test]
    fn log_histogram_relative_error_bounded() {
        // Every value must be reported within +3.2% of its true
        // magnitude (upper bucket edge, never under-reported).
        for v in [64u64, 100, 1_000, 65_535, 1_000_000, u32::MAX as u64 * 7] {
            let mut h = LogHistogram::new();
            h.record(v);
            let p = h.percentile(0.5);
            assert!(p >= v, "under-reported {v} as {p}");
            assert!(
                (p - v) as f64 <= v as f64 / 31.0,
                "bucket too wide: {v} -> {p}"
            );
        }
    }

    #[test]
    fn log_histogram_quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5) as f64;
        let p99 = h.percentile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.04, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.04, "p99 {p99}");
        assert_eq!(h.percentile(1.0), 10_000);
    }

    #[test]
    fn log_histogram_merge_matches_combined() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..1_000u64 {
            let v = i * 97 % 50_000;
            whole.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn log_histogram_empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max(), 0);
    }
}
