//! Plain-text table formatting for the experiment harness.
//!
//! Each experiment binary prints the rows/series of the corresponding paper
//! table or figure. The format is fixed-width text so results diff cleanly
//! between runs and paste into EXPERIMENTS.md unchanged.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row. The number of cells must match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width does not match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>width$}", h, width = widths[i]);
            if i + 1 < ncols {
                line.push_str("  ");
            }
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

/// Format a float with `prec` decimal places.
pub fn fmt(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a bandwidth in MB/s with one decimal place.
pub fn mbps(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a ratio as a percentage with one decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["disks", "bw (MB/s)"]);
        t.row(vec!["2".into(), "31.0".into()]);
        t.row(vec!["128".into(), "459.3".into()]);
        let s = t.render();
        assert!(s.contains("# demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, 2 rows
        assert_eq!(lines.len(), 5);
        assert!(lines[1].ends_with("bw (MB/s)"));
        assert!(lines[3].trim_start().starts_with('2'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(3.45678, 2), "3.46");
        assert_eq!(mbps(123.456), "123.5");
        assert_eq!(pct(0.405), "40.5%");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
