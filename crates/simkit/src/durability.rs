//! Durability modelling: predicted MTTDL from a birth–death Markov
//! chain over a file's surviving coded blocks.
//!
//! The model is the classic repair-queue chain (Patterson's RAID
//! analysis generalised to erasure codes): a file stores `n` coded
//! blocks; each surviving block fails independently at rate `λ`
//! (deaths), and the repair service restores blocks at rate `μ`
//! (births, one block at a time — the rate-limited repair pipeline).
//! The file is *lost* when the surviving count drops below a
//! scheme-specific decode threshold:
//!
//! * replication — each replica group dies when its last copy does
//!   (threshold 1 per group; a file of `k` groups loses data when the
//!   first group dies, so the file MTTDL is the group MTTDL over `k`);
//! * Reed–Solomon `(k, n)` — survivors `< k`;
//! * LT `(k, n)` — survivors `< ⌈k·(1+ε)⌉`, the rateless decode
//!   overhead making LT need slightly more than `k` blocks on average.
//!
//! MTTDL is the expected hitting time of the absorbing state starting
//! from full strength, computed exactly from the chain's downward
//! passage times — no simulation noise, so scheme comparisons at equal
//! storage overhead are exact within the model. (A naive tridiagonal
//! solve of the same system is numerically treacherous here: with
//! `μ ≫ λ` the final pivot is a catastrophic cancellation that rounds
//! to zero and reports `inf`; the passage-time recurrence sums only
//! positive terms.) The per-block failure rate `λ` is calibrated from the
//! same seeded decay traces the scrub/repair experiments replay
//! ([`lambda_from_decay`]), tying the analytic table to the measured
//! system.

/// Per-block failure rate `λ` (failures/second) implied by a decay
/// trace that loses fraction `fraction_per_round` of surviving blocks
/// every `round_secs`: the hazard rate of `f = 1 − e^{−λ·Δt}`.
pub fn lambda_from_decay(fraction_per_round: f64, round_secs: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&fraction_per_round),
        "loss fraction must be in [0, 1)"
    );
    assert!(round_secs > 0.0, "round duration must be positive");
    -(1.0 - fraction_per_round).ln() / round_secs
}

/// Expected time (seconds) for a birth–death chain starting at `n`
/// surviving blocks to first drop below `threshold`, with per-block
/// failure rate `lambda` and repair rate `mu` blocks/second (repairs
/// run whenever the count is below `n`; `mu = 0` models no repair).
///
/// From state `s` (with `threshold ≤ s ≤ n`) the chain dies at rate
/// `s·λ` and is reborn at rate `μ` (except at `s = n`, which has
/// nothing to repair). Let `U(s)` be the expected time to first reach
/// `s − 1` from `s`; first-step analysis gives the downward recurrence
/// `U(n) = 1/(n·λ)` and `U(s) = (1 + μ·U(s+1)) / (s·λ)`, and the
/// hitting time from full strength is `Σ_{s=threshold}^{n} U(s)`.
/// Every term is positive, so the evaluation is numerically stable for
/// any `μ/λ` ratio — unlike a direct tridiagonal solve of the hitting
/// time system, whose last pivot cancels to zero once `μ ≫ λ`.
pub fn mttdl_birth_death(n: usize, threshold: usize, lambda: f64, mu: f64) -> f64 {
    assert!(lambda > 0.0, "failure rate must be positive");
    assert!(mu >= 0.0, "repair rate must be non-negative");
    assert!(
        (1..=n).contains(&threshold),
        "threshold must be in 1..=n (n={n}, threshold={threshold})"
    );
    // Downward passage times, top state first (no repair at s = n).
    let mut total = 0.0f64;
    let mut u = 1.0 / (n as f64 * lambda);
    total += u;
    for s in (threshold..n).rev() {
        u = (1.0 + mu * u) / (s as f64 * lambda);
        total += u;
    }
    total
}

/// Predicted MTTDL for one redundancy scheme at a given geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MttdlEstimate {
    /// Scheme label (`"replication"`, `"rs"`, `"lt"`).
    pub scheme: &'static str,
    /// Coded blocks stored per protected unit (the replica group for
    /// replication, the whole file for RS/LT).
    pub n: usize,
    /// Surviving-block count below which the unit is lost.
    pub threshold: usize,
    /// Predicted mean time to data loss for the *file*, seconds.
    pub mttdl_secs: f64,
}

/// Compare replication, RS and LT durability at equal storage
/// overhead: every scheme stores `stretch × k` blocks for `k` data
/// blocks (`stretch` must be an integer ≥ 2 so replication can match
/// it exactly). `lt_eps` is LT's decode overhead ε — LT needs
/// `⌈k·(1+ε)⌉` survivors where RS needs exactly `k`.
///
/// Replication keeps `stretch` copies of each of the `k` data blocks;
/// its file-level MTTDL divides the group MTTDL by `k` (the file dies
/// with its first group, and group deaths are independent and
/// memoryless in this model). The repair rate `mu` is *per file* for
/// RS/LT and *per group* for replication — the same repair pipeline
/// serves either layout.
pub fn compare_at_overhead(
    k: usize,
    stretch: usize,
    lambda: f64,
    mu: f64,
    lt_eps: f64,
) -> Vec<MttdlEstimate> {
    assert!(k >= 1, "k must be at least 1");
    assert!(stretch >= 2, "stretch must be at least 2 (some redundancy)");
    assert!(lt_eps >= 0.0, "LT overhead must be non-negative");
    let n = k * stretch;
    let lt_threshold = ((k as f64) * (1.0 + lt_eps)).ceil() as usize;
    assert!(
        lt_threshold <= n,
        "LT overhead ε={lt_eps} leaves no margin at stretch {stretch}"
    );
    vec![
        MttdlEstimate {
            scheme: "replication",
            n: stretch,
            threshold: 1,
            mttdl_secs: mttdl_birth_death(stretch, 1, lambda, mu) / k as f64,
        },
        MttdlEstimate {
            scheme: "rs",
            n,
            threshold: k,
            mttdl_secs: mttdl_birth_death(n, k, lambda, mu),
        },
        MttdlEstimate {
            scheme: "lt",
            n,
            threshold: lt_threshold,
            mttdl_secs: mttdl_birth_death(n, lt_threshold, lambda, mu),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} !≈ {b}");
    }

    #[test]
    fn two_way_replication_no_repair_matches_closed_form() {
        // n=2, absorb below 1, μ=0: h(2) = 1/(2λ) + 1/λ = 3/(2λ).
        let lambda = 1e-6;
        close(mttdl_birth_death(2, 1, lambda, 0.0), 1.5 / lambda);
    }

    #[test]
    fn mirrored_pair_with_repair_matches_closed_form() {
        // The classic RAID-1 result: MTTDL = (3λ + μ) / (2λ²).
        let lambda = 1e-6;
        let mu = 1e-3;
        close(
            mttdl_birth_death(2, 1, lambda, mu),
            (3.0 * lambda + mu) / (2.0 * lambda * lambda),
        );
    }

    #[test]
    fn no_repair_chain_matches_harmonic_sum() {
        // μ=0: pure death chain, h(n) = Σ_{s=threshold}^{n} 1/(s·λ).
        let (n, t, lambda) = (12, 5, 2.5e-7);
        let expect: f64 = (t..=n).map(|s| 1.0 / (s as f64 * lambda)).sum();
        close(mttdl_birth_death(n, t, lambda, 0.0), expect);
    }

    #[test]
    fn repair_and_margin_both_extend_mttdl() {
        let lambda = 1e-6;
        let base = mttdl_birth_death(16, 8, lambda, 0.0);
        assert!(mttdl_birth_death(16, 8, lambda, 1e-4) > base * 10.0);
        assert!(mttdl_birth_death(16, 6, lambda, 0.0) > base);
        assert!(mttdl_birth_death(16, 10, lambda, 0.0) < base);
    }

    #[test]
    fn fast_repair_stays_finite_and_monotone() {
        // Regression: with μ ≫ λ a tridiagonal solve of the hitting-time
        // system loses its last pivot to cancellation and reports inf.
        // The passage-time recurrence must stay finite and grow with μ.
        let (n, t, lambda) = (24, 8, 0.462);
        let slow = mttdl_birth_death(n, t, lambda, 1.0);
        let fast = mttdl_birth_death(n, t, lambda, 183.1);
        assert!(fast.is_finite(), "MTTDL overflowed: {fast}");
        assert!(slow.is_finite() && fast > slow);
        // Cross-check against the closed-form product expansion
        // Σ_{s=t}^{n} Σ_{j=s}^{n} (1/jλ)·Π_{i=s}^{j−1} μ/(iλ).
        let mu = 183.1;
        let mut expect = 0.0f64;
        for s in t..=n {
            for j in s..=n {
                let mut term = 1.0 / (j as f64 * lambda);
                for i in s..j {
                    term *= mu / (i as f64 * lambda);
                }
                expect += term;
            }
        }
        close(fast, expect);
    }

    #[test]
    fn lambda_from_decay_inverts_exponential_loss() {
        let lambda: f64 = 3e-5;
        let dt = 3600.0;
        let f = 1.0 - (-lambda * dt).exp();
        close(lambda_from_decay(f, dt), lambda);
    }

    #[test]
    fn erasure_codes_beat_replication_at_equal_overhead() {
        // The headline durability result: at the same 3× storage, wide
        // RS/LT codes survive vastly longer than 3-way replication, and
        // LT pays a small penalty for its decode overhead ε.
        let table = compare_at_overhead(8, 3, 1e-7, 1e-4, 0.05);
        let get = |s: &str| table.iter().find(|e| e.scheme == s).unwrap().mttdl_secs;
        assert!(get("rs") > get("replication") * 100.0);
        assert!(get("lt") > get("replication") * 100.0);
        assert!(get("lt") <= get("rs"));
    }
}
