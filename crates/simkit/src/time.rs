//! Virtual simulation time.
//!
//! Time is kept in integer nanoseconds so that event ordering is exact: two
//! runs with the same seed produce byte-identical traces regardless of
//! platform floating-point behaviour. Durations derived from continuous
//! models (seek curves, transfer rates) are rounded to the nearest
//! nanosecond at the model boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// causality bug in a model.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs are clamped to zero: continuous models
    /// occasionally produce tiny negative values from floating-point
    /// cancellation, and those mean "instantaneous" rather than "time
    /// travel".
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting and rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is larger.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn negative_and_nan_float_durations_clamp_to_zero() {
        assert!(SimDuration::from_secs_f64(-1.0).is_zero());
        assert!(SimDuration::from_secs_f64(f64::NAN).is_zero());
        assert!(SimDuration::from_secs_f64(-0.0).is_zero());
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(10));
        let back = t - SimDuration::from_millis(4);
        assert_eq!(back.as_nanos(), 6_000_000);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_causality_violation() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(10);
        let _ = early.since(late);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(3) * 4;
        assert_eq!(d, SimDuration::from_millis(12));
        assert_eq!(d / 6, SimDuration::from_millis(2));
        let total: SimDuration = (0..4).map(|_| SimDuration::from_secs(1)).sum();
        assert_eq!(total, SimDuration::from_secs(4));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimTime::from_nanos(1_500_000_000);
        assert_eq!(format!("{t}"), "1.500000s");
    }
}
