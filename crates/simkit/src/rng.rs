//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (per-disk layout draws,
//! background-workload arrivals, LT coding graphs, disk selection, ...)
//! owns its own [`SimRng`] derived from a master seed through a
//! [`SeedSequence`]. Components therefore never share a stream, and adding
//! draws to one component cannot perturb another — the property that makes
//! per-figure sweeps comparable across schemes.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// The concrete RNG used throughout the simulation.
///
/// `SmallRng` (xoshiro256++ on 64-bit platforms) is fast and has more than
/// enough statistical quality for the workload models here; it is not
/// cryptographic, which is fine — nothing in the simulator is adversarial.
pub type SimRng = SmallRng;

/// SplitMix64 step, used for seed derivation.
///
/// SplitMix64 is the standard generator for expanding one 64-bit seed into
/// many independent seeds (it is what the xoshiro authors recommend for
/// seeding).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible seeds and RNGs from a master seed.
///
/// Streams are labelled: `fork("disk", 17)` always yields the same stream
/// for a given master seed, independent of the order in which other streams
/// are forked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// A sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed this sequence was rooted at.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed for stream (`label`, `index`).
    pub fn seed_for(&self, label: &str, index: u64) -> u64 {
        // FNV-1a over the label, mixed with the master seed and index, then
        // finalized through SplitMix64. Deterministic across platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = self
            .master
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h)
            .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        a ^ b.rotate_left(32)
    }

    /// Fork a fully-seeded RNG for stream (`label`, `index`).
    pub fn fork(&self, label: &str, index: u64) -> SimRng {
        let mut state = self.seed_for(label, index);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng::from_seed(seed)
    }

    /// A sub-sequence rooted at stream (`label`, `index`); useful for
    /// giving a component its own namespace of child streams (e.g. one
    /// sequence per simulation trial).
    pub fn subsequence(&self, label: &str, index: u64) -> SeedSequence {
        SeedSequence {
            master: self.seed_for(label, index),
        }
    }
}

/// Convenience: draw a uniform `f64` in `[0, 1)`.
pub fn uniform01(rng: &mut impl RngCore) -> f64 {
    // 53 random mantissa bits, the standard construction.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draw from an exponential distribution with the given mean.
///
/// Used for Poisson arrival processes in the background-workload generator.
pub fn exponential(rng: &mut impl RngCore, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u = 1.0 - uniform01(rng); // in (0, 1]
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let seq = SeedSequence::new(42);
        let mut a = seq.fork("disk", 3);
        let mut b = seq.fork("disk", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let seq = SeedSequence::new(42);
        assert_ne!(seq.seed_for("disk", 0), seq.seed_for("filer", 0));
        assert_ne!(seq.seed_for("disk", 0), seq.seed_for("disk", 1));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSequence::new(1).seed_for("disk", 0),
            SeedSequence::new(2).seed_for("disk", 0)
        );
    }

    #[test]
    fn subsequence_is_namespaced() {
        let seq = SeedSequence::new(7);
        let t0 = seq.subsequence("trial", 0);
        let t1 = seq.subsequence("trial", 1);
        assert_ne!(t0.seed_for("disk", 0), t1.seed_for("disk", 0));
        // And stable:
        assert_eq!(
            t0.seed_for("disk", 0),
            seq.subsequence("trial", 0).seed_for("disk", 0)
        );
    }

    #[test]
    fn uniform01_in_range_and_varied() {
        let mut rng = SeedSequence::new(9).fork("u", 0);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&x));
            seen_low |= x < 0.5;
            seen_high |= x >= 0.5;
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SeedSequence::new(11).fork("e", 0);
        let n = 100_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.1,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn forked_rng_supports_rand_traits() {
        let mut rng = SeedSequence::new(1).fork("x", 0);
        let v: u32 = rng.gen_range(0..10);
        assert!(v < 10);
    }
}
