//! Timestamped event queue with deterministic ordering.
//!
//! Events are ordered by timestamp; events scheduled for the same instant
//! are delivered in insertion (FIFO) order. Both properties are load-bearing
//! for reproducibility: the disk, filer, and client models all schedule
//! events at identical instants (e.g. a cancellation racing a completion),
//! and the tie-break decides who wins — it must not depend on heap
//! internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: the core of the discrete-event simulation.
///
/// `E` is the simulation-specific event payload (an enum in practice).
/// Cancellation is supported by id: cancelled events are dropped lazily when
/// they reach the head of the queue, which keeps `cancel` O(log n) amortised
/// without a secondary index into the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` for instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulation time; models
    /// must not schedule into the past.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at} is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (idempotent: cancelling twice returns `false` the
    /// second time).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Remove and return the earliest pending event, advancing the clock to
    /// its timestamp. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue time went backwards");
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(30), "c");
        q.schedule(at_ms(10), "a");
        q.schedule(at_ms(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at_ms(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(10), ());
        q.schedule(at_ms(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), at_ms(10));
        q.pop();
        assert_eq!(q.now(), at_ms(25));
    }

    #[test]
    fn cancellation_drops_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(at_ms(10), "a");
        q.schedule(at_ms(20), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(at_ms(10), "a");
        q.schedule(at_ms(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(at_ms(20)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(10), ());
        q.pop();
        q.schedule(at_ms(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(10), 1);
        q.pop();
        q.schedule(at_ms(10), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }
}
