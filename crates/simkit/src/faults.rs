//! Deterministic fault injection.
//!
//! A [`FaultScenario`] describes *what kind* of trouble a trial should
//! see; [`FaultPlan::generate`] expands it into a concrete, fully
//! deterministic schedule of [`FaultEvent`]s drawn from a dedicated
//! labelled RNG stream (`"fault-plan"`). Because the stream is forked by
//! label from the trial's [`SeedSequence`], adding or removing faults
//! never perturbs layout, background, or disk-service randomness: a
//! no-fault run is byte-identical to a run of a build without this
//! module, and two runs with the same scenario and seed produce the
//! same schedule — and therefore the same per-request outcomes.
//!
//! Event times are offsets from the start of the access being faulted,
//! and disks are named by *slot* (index into the access's selected disk
//! set), so one plan can be replayed against every scheme on identical
//! terms.

use crate::rng::SeedSequence;
use crate::time::SimDuration;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Service times on the disk are multiplied by `factor` for
    /// `duration` (thermal throttling, a misbehaving firmware, a
    /// congested enclosure link).
    Slowdown {
        /// Service-time multiplier (> 1 slows the disk down).
        factor: f64,
        /// How long the degradation window lasts.
        duration: SimDuration,
    },
    /// The disk stops serving permanently: queued requests are dropped
    /// and every later submission fails.
    PermanentFailure,
    /// Completions carry an I/O error with probability `error_prob` for
    /// `duration` (media errors, transient controller resets).
    Flaky {
        /// Per-completion error probability in `[0, 1]`.
        error_prob: f64,
        /// How long the flaky window lasts.
        duration: SimDuration,
    },
    /// A burst of competing best-effort work lands on the disk:
    /// `requests` background reads of `sectors` sectors each.
    LoadBurst {
        /// Number of background requests in the burst.
        requests: u32,
        /// Sectors per background request.
        sectors: u64,
    },
}

/// One scheduled fault: `kind` strikes slot `slot` at offset `at` from
/// the start of the access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Offset from access start at which the fault takes effect.
    pub at: SimDuration,
    /// Slot index into the access's selected disks.
    pub slot: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A named, parameterized fault shape; expanded to concrete events by
/// [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultScenario {
    /// No faults: plans are empty and runs are identical to a build
    /// without fault injection.
    #[default]
    None,
    /// One randomly chosen disk degrades by `factor` for the whole
    /// access — the paper's canonical "one slow disk" robustness probe.
    OneSlowDisk {
        /// Service-time multiplier on the unlucky disk.
        factor: f64,
    },
    /// `n` randomly chosen disks fail permanently, at staggered random
    /// times early in the access.
    NFailures {
        /// How many distinct disks fail.
        n: usize,
    },
    /// A random quarter of the disks (at least one) return I/O errors
    /// with probability `error_prob` for the whole access; the engine
    /// retries a bounded number of times.
    Flaky {
        /// Per-completion error probability in `[0, 1]`.
        error_prob: f64,
    },
    /// `bursts` load bursts land on random disks at random times in the
    /// first few seconds of the access.
    LoadBursts {
        /// Number of bursts to schedule.
        bursts: usize,
    },
}

/// A slowdown window longer than any simulated access: "for the whole
/// access" without needing to know the access duration up front.
const WHOLE_ACCESS: SimDuration = SimDuration::from_secs(3600);

/// Latest onset for a staggered fault, in milliseconds. Early enough
/// that every scheme is still mid-flight when the fault lands.
const ONSET_WINDOW_MS: u64 = 500;

impl FaultScenario {
    /// The fault-free scenario.
    pub fn none() -> Self {
        FaultScenario::None
    }

    /// One disk slows down by `factor` for the whole access.
    pub fn one_slow_disk(factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        FaultScenario::OneSlowDisk { factor }
    }

    /// `n` disks fail permanently at staggered times.
    pub fn n_failures(n: usize) -> Self {
        FaultScenario::NFailures { n }
    }

    /// A quarter of the disks become flaky with the given per-request
    /// error probability.
    pub fn flaky(error_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_prob),
            "error probability must be in [0, 1]"
        );
        FaultScenario::Flaky { error_prob }
    }

    /// `bursts` background-load bursts on random disks.
    pub fn load_bursts(bursts: usize) -> Self {
        FaultScenario::LoadBursts { bursts }
    }

    /// True for the fault-free scenario.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultScenario::None)
    }

    /// Short stable name for reports and experiment ids.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::None => "none",
            FaultScenario::OneSlowDisk { .. } => "one_slow_disk",
            FaultScenario::NFailures { .. } => "n_failures",
            FaultScenario::Flaky { .. } => "flaky",
            FaultScenario::LoadBursts { .. } => "load_bursts",
        }
    }
}

/// A concrete, deterministic schedule of fault events for one access.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Events sorted by onset time.
    pub events: Vec<FaultEvent>,
    /// Seed stream the plan was drawn from; consumers fork it for any
    /// randomness a fault needs *while active* (e.g. flaky error
    /// draws), keeping those draws off the disks' own service streams.
    seq: SeedSequence,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Expand `scenario` over an access using `slots` disks. All draws
    /// come from the `"fault-plan"` fork of `seq`, so the plan is a
    /// pure function of (scenario, slots, seed).
    pub fn generate(scenario: &FaultScenario, slots: usize, seq: &SeedSequence) -> Self {
        use rand::Rng;
        let fault_seq = seq.subsequence("faults", 0);
        let mut rng = fault_seq.fork("fault-plan", 0);
        let mut events = Vec::new();
        match *scenario {
            FaultScenario::None => {}
            FaultScenario::OneSlowDisk { factor } => {
                events.push(FaultEvent {
                    at: SimDuration::ZERO,
                    slot: rng.gen_range(0..slots),
                    kind: FaultKind::Slowdown {
                        factor,
                        duration: WHOLE_ACCESS,
                    },
                });
            }
            FaultScenario::NFailures { n } => {
                let mut order: Vec<usize> = (0..slots).collect();
                rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
                for &slot in order.iter().take(n.min(slots)) {
                    events.push(FaultEvent {
                        at: SimDuration::from_millis(rng.gen_range(0..ONSET_WINDOW_MS)),
                        slot,
                        kind: FaultKind::PermanentFailure,
                    });
                }
            }
            FaultScenario::Flaky { error_prob } => {
                let affected = (slots / 4).max(1);
                let mut order: Vec<usize> = (0..slots).collect();
                rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
                for &slot in order.iter().take(affected) {
                    events.push(FaultEvent {
                        at: SimDuration::ZERO,
                        slot,
                        kind: FaultKind::Flaky {
                            error_prob,
                            duration: WHOLE_ACCESS,
                        },
                    });
                }
            }
            FaultScenario::LoadBursts { bursts } => {
                for _ in 0..bursts {
                    events.push(FaultEvent {
                        at: SimDuration::from_millis(rng.gen_range(0..2_000)),
                        slot: rng.gen_range(0..slots),
                        kind: FaultKind::LoadBurst {
                            requests: rng.gen_range(8..32),
                            sectors: 2048,
                        },
                    });
                }
            }
        }
        events.sort_by_key(|e| (e.at, e.slot));
        FaultPlan {
            events,
            seq: fault_seq,
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A fresh RNG for fault-local randomness on `slot` (e.g. flaky
    /// error draws), independent of the plan draws and of every disk's
    /// service stream.
    pub fn fault_rng(&self, slot: usize) -> crate::rng::SimRng {
        self.seq.fork("fault-local", slot as u64)
    }
}

// ---------------------------------------------------------------------------
// Write-path faults
// ---------------------------------------------------------------------------

/// What a write-path fault does to one disk's storage server.
///
/// Read-path faults ([`FaultKind`]) perturb *service times and
/// completions* inside the simulation engine; write-path faults instead
/// hook the framework's storage backend, where the commit protocol's
/// rollback guarantees are what is under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFaultKind {
    /// The server refuses every block write (admission pressure, no
    /// capacity): a rateless writer routes the blocks elsewhere.
    Refuse,
    /// The server accepts `writes` more block writes, then every later
    /// write fails hard (media/controller error mid-generation): the
    /// access must abort and roll back.
    FailAfter {
        /// Block writes accepted before the hard failure.
        writes: u64,
    },
}

/// One write-path fault bound to a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteFault {
    /// The faulted disk (backend index).
    pub disk: usize,
    /// What its server does.
    pub kind: WriteFaultKind,
}

/// A named, parameterized write-path fault shape; expanded to concrete
/// per-disk faults by [`WriteFaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WriteFaultScenario {
    /// No write faults.
    #[default]
    None,
    /// `n` randomly chosen disks refuse block writes outright — the
    /// rateless write must commit with the blocks redirected.
    RefusingDisks {
        /// How many distinct disks refuse.
        n: usize,
    },
    /// One randomly chosen disk fails hard after accepting `after` block
    /// writes — the access must abort, leaving the previous generation
    /// intact and no orphaned new-generation blocks behind.
    MidWriteFailure {
        /// Block writes the unlucky disk accepts before failing.
        after: u64,
    },
    /// Every disk refuses: the write must fail cleanly without storing
    /// anything anywhere.
    AllRefuse,
}

impl WriteFaultScenario {
    /// Short stable name for reports and experiment ids.
    pub fn name(&self) -> &'static str {
        match self {
            WriteFaultScenario::None => "none",
            WriteFaultScenario::RefusingDisks { .. } => "refusing_disks",
            WriteFaultScenario::MidWriteFailure { .. } => "mid_write_failure",
            WriteFaultScenario::AllRefuse => "all_refuse",
        }
    }
}

/// A concrete, deterministic set of write-path faults for one store of
/// `disks` disks. Like [`FaultPlan`], the expansion draws only from a
/// dedicated labelled stream (`"write-faults"`), so arming write faults
/// never perturbs any other randomness in a trial.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteFaultPlan {
    /// The per-disk faults, sorted by disk.
    pub faults: Vec<WriteFault>,
}

impl WriteFaultPlan {
    /// The empty plan (no write faults).
    pub fn empty() -> Self {
        WriteFaultPlan::default()
    }

    /// Expand `scenario` over a store of `disks` disks. The plan is a
    /// pure function of (scenario, disks, seed).
    pub fn generate(scenario: &WriteFaultScenario, disks: usize, seq: &SeedSequence) -> Self {
        use rand::Rng;
        let mut rng = seq.subsequence("write-faults", 0).fork("plan", 0);
        let mut faults = Vec::new();
        match *scenario {
            WriteFaultScenario::None => {}
            WriteFaultScenario::RefusingDisks { n } => {
                let mut order: Vec<usize> = (0..disks).collect();
                rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
                for &disk in order.iter().take(n.min(disks)) {
                    faults.push(WriteFault {
                        disk,
                        kind: WriteFaultKind::Refuse,
                    });
                }
            }
            WriteFaultScenario::MidWriteFailure { after } => {
                faults.push(WriteFault {
                    disk: rng.gen_range(0..disks),
                    kind: WriteFaultKind::FailAfter { writes: after },
                });
            }
            WriteFaultScenario::AllRefuse => {
                for disk in 0..disks {
                    faults.push(WriteFault {
                        disk,
                        kind: WriteFaultKind::Refuse,
                    });
                }
            }
        }
        faults.sort_by_key(|f| f.disk);
        WriteFaultPlan { faults }
    }

    /// True when the plan arms nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Read-path (backend) faults
// ---------------------------------------------------------------------------

/// What a read-path fault does to one disk's storage server.
///
/// These hook the framework's storage backend (like [`WriteFaultKind`]),
/// exercising the self-healing read path: retry of transient errors,
/// checksum detection of corruption, and demotion of torn reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFaultKind {
    /// The next `reads` block reads fail with a transient I/O error
    /// (controller reset, timeout); the block is intact and a retry
    /// succeeds once the budget is spent.
    Transient {
        /// Block reads that error before the disk recovers.
        reads: u64,
    },
    /// The next `reads` block reads return silently corrupted bytes
    /// (bit rot, a misdirected write): only checksum verification can
    /// catch it.
    Corrupt {
        /// Block reads that return flipped bytes.
        reads: u64,
    },
    /// The next `reads` block reads return truncated buffers (a torn
    /// read crossing a crashed sector boundary).
    Torn {
        /// Block reads that come back short.
        reads: u64,
    },
}

/// One read-path fault bound to a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFault {
    /// The faulted disk (backend index).
    pub disk: usize,
    /// What its server does.
    pub kind: ReadFaultKind,
}

/// A named, parameterized read-path fault shape; expanded to concrete
/// per-disk faults by [`ReadFaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReadFaultScenario {
    /// No read faults.
    #[default]
    None,
    /// `n` randomly chosen disks return transient errors for their next
    /// `reads` block reads each — a retrying reader rides it out.
    TransientDisks {
        /// How many distinct disks misbehave.
        n: usize,
        /// Faulty reads per disk before recovery.
        reads: u64,
    },
    /// `n` randomly chosen disks silently corrupt their next `reads`
    /// block reads each — checksums must catch every one.
    CorruptDisks {
        /// How many distinct disks corrupt.
        n: usize,
        /// Corrupted reads per disk.
        reads: u64,
    },
    /// `n` randomly chosen disks tear their next `reads` block reads
    /// each (short buffers).
    TornDisks {
        /// How many distinct disks tear reads.
        n: usize,
        /// Torn reads per disk.
        reads: u64,
    },
    /// A mixed storm: `transient` disks flake, `corrupt` disks rot, and
    /// `torn` disks tear, all distinct, `reads` faulty reads each.
    Mixed {
        /// Disks returning transient errors.
        transient: usize,
        /// Disks returning corrupted bytes.
        corrupt: usize,
        /// Disks returning short buffers.
        torn: usize,
        /// Faulty reads per afflicted disk.
        reads: u64,
    },
}

impl ReadFaultScenario {
    /// Short stable name for reports and experiment ids.
    pub fn name(&self) -> &'static str {
        match self {
            ReadFaultScenario::None => "none",
            ReadFaultScenario::TransientDisks { .. } => "transient_disks",
            ReadFaultScenario::CorruptDisks { .. } => "corrupt_disks",
            ReadFaultScenario::TornDisks { .. } => "torn_disks",
            ReadFaultScenario::Mixed { .. } => "mixed",
        }
    }
}

/// A concrete, deterministic set of read-path faults for one store of
/// `disks` disks. Like [`WriteFaultPlan`], the expansion draws only from
/// a dedicated labelled stream (`"read-faults"`), so arming read faults
/// never perturbs any other randomness in a trial.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadFaultPlan {
    /// The per-disk faults, sorted by disk.
    pub faults: Vec<ReadFault>,
}

impl ReadFaultPlan {
    /// The empty plan (no read faults).
    pub fn empty() -> Self {
        ReadFaultPlan::default()
    }

    /// Expand `scenario` over a store of `disks` disks. The plan is a
    /// pure function of (scenario, disks, seed).
    pub fn generate(scenario: &ReadFaultScenario, disks: usize, seq: &SeedSequence) -> Self {
        let mut rng = seq.subsequence("read-faults", 0).fork("plan", 0);
        let mut order: Vec<usize> = (0..disks).collect();
        rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
        let mut victims = order.into_iter();
        let mut faults = Vec::new();
        let mut take = |n: usize, kind: fn(u64) -> ReadFaultKind, reads: u64| {
            for disk in victims.by_ref().take(n) {
                faults.push(ReadFault {
                    disk,
                    kind: kind(reads),
                });
            }
        };
        match *scenario {
            ReadFaultScenario::None => {}
            ReadFaultScenario::TransientDisks { n, reads } => {
                take(n, |reads| ReadFaultKind::Transient { reads }, reads)
            }
            ReadFaultScenario::CorruptDisks { n, reads } => {
                take(n, |reads| ReadFaultKind::Corrupt { reads }, reads)
            }
            ReadFaultScenario::TornDisks { n, reads } => {
                take(n, |reads| ReadFaultKind::Torn { reads }, reads)
            }
            ReadFaultScenario::Mixed {
                transient,
                corrupt,
                torn,
                reads,
            } => {
                take(transient, |reads| ReadFaultKind::Transient { reads }, reads);
                take(corrupt, |reads| ReadFaultKind::Corrupt { reads }, reads);
                take(torn, |reads| ReadFaultKind::Torn { reads }, reads);
            }
        }
        faults.sort_by_key(|f| f.disk);
        ReadFaultPlan { faults }
    }

    /// True when the plan arms nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Metadata-plane faults
// ---------------------------------------------------------------------------

/// What a metadata-plane fault does to one shard replica.
///
/// Read- and write-path faults perturb *data* disks; metadata faults
/// instead hit the replicated write-ahead logs behind the namespace,
/// where quorum commit and log-replay recovery are what is under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaFaultKind {
    /// The replica stops acknowledging appends and reads (process kill,
    /// network partition). A minority of these per shard must not cost
    /// availability; reads repair it when it returns.
    ReplicaDown,
    /// The replica's *next* log append persists only the first `keep`
    /// bytes of the frame (crash mid-commit): recovery must treat the
    /// torn frame as absent, never surface a half-applied record.
    TornAppend {
        /// Frame bytes that reach the log before the crash.
        keep: usize,
    },
    /// The last `bytes` bytes already in the replica's log are flipped
    /// (bit rot on the tail): CRC framing must truncate, and quorum
    /// read-repair must re-converge the replica.
    CorruptTail {
        /// Trailing log bytes corrupted.
        bytes: usize,
    },
}

/// One metadata fault bound to a (shard, replica) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaFault {
    /// The afflicted shard.
    pub shard: usize,
    /// The replica index within that shard.
    pub replica: usize,
    /// What happens to it.
    pub kind: MetaFaultKind,
}

/// A named, parameterized metadata fault shape; expanded to concrete
/// per-replica faults by [`MetaFaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MetaFaultScenario {
    /// No metadata faults.
    #[default]
    None,
    /// On every shard, `per_replica_losses` randomly chosen replicas go
    /// down — clamped to a strict minority, so quorum (and therefore
    /// every committed file) survives by construction.
    MinorityLoss {
        /// Replicas lost per shard (clamped to < quorum).
        per_replica_losses: usize,
    },
    /// On `shards` randomly chosen shards, one random replica tears its
    /// next append after `keep` bytes (crash mid-commit).
    CrashMidCommit {
        /// Distinct shards whose next commit is torn on one replica.
        shards: usize,
        /// Frame bytes persisted before the crash.
        keep: usize,
    },
    /// On `shards` randomly chosen shards, one random replica has the
    /// last `bytes` bytes of its log bit-flipped.
    TailRot {
        /// Distinct shards with a rotten log tail on one replica.
        shards: usize,
        /// Trailing bytes flipped per afflicted replica.
        bytes: usize,
    },
    /// The combined storm: a strict-minority loss on every shard *plus*
    /// a torn append and a rotten tail, each on one random replica of
    /// every shard (never a downed one) — the worst survivable round.
    Storm {
        /// Replicas lost per shard (clamped to < quorum).
        per_replica_losses: usize,
        /// Frame bytes persisted before each torn crash.
        keep: usize,
        /// Trailing bytes flipped per rotten tail.
        bytes: usize,
    },
}

impl MetaFaultScenario {
    /// Short stable name for reports and experiment ids.
    pub fn name(&self) -> &'static str {
        match self {
            MetaFaultScenario::None => "none",
            MetaFaultScenario::MinorityLoss { .. } => "minority_loss",
            MetaFaultScenario::CrashMidCommit { .. } => "crash_mid_commit",
            MetaFaultScenario::TailRot { .. } => "tail_rot",
            MetaFaultScenario::Storm { .. } => "storm",
        }
    }
}

/// A concrete, deterministic set of metadata-plane faults for a
/// metastore of `shards` shards with `replicas` replicas each. Like the
/// disk-fault plans, the expansion draws only from a dedicated labelled
/// stream (`"meta-faults"`), so arming metadata faults never perturbs
/// any other randomness in a trial; and loss counts are clamped below
/// quorum so a generated plan is always survivable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaFaultPlan {
    /// The per-replica faults, sorted by (shard, replica).
    pub faults: Vec<MetaFault>,
}

impl MetaFaultPlan {
    /// The empty plan (no metadata faults).
    pub fn empty() -> Self {
        MetaFaultPlan::default()
    }

    /// Expand `scenario` over `shards` shards of `replicas` replicas.
    /// The plan is a pure function of (scenario, shards, replicas, seed).
    pub fn generate(
        scenario: &MetaFaultScenario,
        shards: usize,
        replicas: usize,
        seq: &SeedSequence,
    ) -> Self {
        use rand::Rng;
        let mut rng = seq.subsequence("meta-faults", 0).fork("plan", 0);
        // The largest per-shard loss that still leaves a majority: with
        // R replicas quorum is R/2 + 1, so at most R - quorum may fall.
        let minority = replicas.saturating_sub(replicas / 2 + 1);
        let mut faults = Vec::new();
        // `n` distinct replicas of `shard`, avoiding `used`.
        let pick = |rng: &mut crate::rng::SimRng, n: usize, used: &mut Vec<usize>| -> Vec<usize> {
            let mut free: Vec<usize> = (0..replicas).filter(|r| !used.contains(r)).collect();
            rand::seq::SliceRandom::shuffle(&mut free[..], rng);
            let picked: Vec<usize> = free.into_iter().take(n).collect();
            used.extend(picked.iter().copied());
            picked
        };
        let shard_subset = |rng: &mut crate::rng::SimRng, n: usize| -> Vec<usize> {
            let mut order: Vec<usize> = (0..shards).collect();
            rand::seq::SliceRandom::shuffle(&mut order[..], rng);
            order.truncate(n.min(shards));
            order
        };
        match *scenario {
            MetaFaultScenario::None => {}
            MetaFaultScenario::MinorityLoss { per_replica_losses } => {
                for shard in 0..shards {
                    let mut used = Vec::new();
                    for replica in pick(&mut rng, per_replica_losses.min(minority), &mut used) {
                        faults.push(MetaFault {
                            shard,
                            replica,
                            kind: MetaFaultKind::ReplicaDown,
                        });
                    }
                }
            }
            MetaFaultScenario::CrashMidCommit { shards: n, keep } => {
                for shard in shard_subset(&mut rng, n) {
                    faults.push(MetaFault {
                        shard,
                        replica: rng.gen_range(0..replicas),
                        kind: MetaFaultKind::TornAppend { keep },
                    });
                }
            }
            MetaFaultScenario::TailRot { shards: n, bytes } => {
                for shard in shard_subset(&mut rng, n) {
                    faults.push(MetaFault {
                        shard,
                        replica: rng.gen_range(0..replicas),
                        kind: MetaFaultKind::CorruptTail { bytes },
                    });
                }
            }
            MetaFaultScenario::Storm {
                per_replica_losses,
                keep,
                bytes,
            } => {
                for shard in 0..shards {
                    let mut used = Vec::new();
                    for replica in pick(&mut rng, per_replica_losses.min(minority), &mut used) {
                        faults.push(MetaFault {
                            shard,
                            replica,
                            kind: MetaFaultKind::ReplicaDown,
                        });
                    }
                    // Tear and rot live replicas only: a fault armed on
                    // a downed replica would test nothing.
                    for replica in pick(&mut rng, 1, &mut used) {
                        faults.push(MetaFault {
                            shard,
                            replica,
                            kind: MetaFaultKind::TornAppend { keep },
                        });
                    }
                    for replica in pick(&mut rng, 1, &mut used) {
                        faults.push(MetaFault {
                            shard,
                            replica,
                            kind: MetaFaultKind::CorruptTail { bytes },
                        });
                    }
                }
            }
        }
        faults.sort_by_key(|f| (f.shard, f.replica));
        MetaFaultPlan { faults }
    }

    /// True when the plan arms nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Replicas the plan downs on `shard`.
    pub fn downed(&self, shard: usize) -> usize {
        self.faults
            .iter()
            .filter(|f| f.shard == shard && f.kind == MetaFaultKind::ReplicaDown)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> SeedSequence {
        SeedSequence::new(42)
    }

    #[test]
    fn none_is_empty() {
        let p = FaultPlan::generate(&FaultScenario::none(), 16, &seq());
        assert!(p.is_empty());
        assert!(FaultScenario::none().is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = FaultScenario::n_failures(3);
        let a = FaultPlan::generate(&s, 16, &seq());
        let b = FaultPlan::generate(&s, 16, &seq());
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        let s = FaultScenario::one_slow_disk(8.0);
        let slots: Vec<usize> = (0..64)
            .map(|i| FaultPlan::generate(&s, 32, &SeedSequence::new(i)).events[0].slot)
            .collect();
        let distinct: std::collections::HashSet<_> = slots.iter().collect();
        assert!(distinct.len() > 8, "slot choice should vary with seed");
    }

    #[test]
    fn n_failures_picks_distinct_slots() {
        let p = FaultPlan::generate(&FaultScenario::n_failures(8), 8, &seq());
        let distinct: std::collections::HashSet<_> = p.events.iter().map(|e| e.slot).collect();
        assert_eq!(distinct.len(), 8);
        // Requesting more failures than slots saturates rather than
        // panicking or repeating.
        let p = FaultPlan::generate(&FaultScenario::n_failures(99), 4, &seq());
        assert_eq!(p.events.len(), 4);
    }

    #[test]
    fn events_sorted_by_onset() {
        let p = FaultPlan::generate(&FaultScenario::load_bursts(10), 16, &seq());
        assert_eq!(p.events.len(), 10);
        assert!(p.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn flaky_affects_a_quarter() {
        let p = FaultPlan::generate(&FaultScenario::flaky(0.2), 16, &seq());
        assert_eq!(p.events.len(), 4);
        let p = FaultPlan::generate(&FaultScenario::flaky(0.2), 2, &seq());
        assert_eq!(p.events.len(), 1, "at least one disk is affected");
    }

    #[test]
    fn fault_rng_is_per_slot_and_reproducible() {
        use rand::RngCore;
        let p = FaultPlan::generate(&FaultScenario::flaky(0.5), 8, &seq());
        let a = p.fault_rng(0).next_u64();
        let b = p.fault_rng(0).next_u64();
        let c = p.fault_rng(1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultScenario::one_slow_disk(4.0).name(), "one_slow_disk");
        assert_eq!(FaultScenario::flaky(0.1).name(), "flaky");
    }

    #[test]
    fn write_fault_plans_are_deterministic_and_sorted() {
        let s = WriteFaultScenario::RefusingDisks { n: 3 };
        let a = WriteFaultPlan::generate(&s, 8, &seq());
        let b = WriteFaultPlan::generate(&s, 8, &seq());
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 3);
        assert!(a.faults.windows(2).all(|w| w[0].disk < w[1].disk));
        assert!(a
            .faults
            .iter()
            .all(|f| f.kind == WriteFaultKind::Refuse && f.disk < 8));
        // Other seeds pick other victims, eventually.
        let picks: std::collections::HashSet<Vec<usize>> = (0..16)
            .map(|i| {
                WriteFaultPlan::generate(&s, 8, &SeedSequence::new(i))
                    .faults
                    .iter()
                    .map(|f| f.disk)
                    .collect()
            })
            .collect();
        assert!(picks.len() > 4, "victim choice should vary with seed");
    }

    #[test]
    fn write_fault_scenario_shapes() {
        assert!(WriteFaultPlan::generate(&WriteFaultScenario::None, 8, &seq()).is_empty());
        let all = WriteFaultPlan::generate(&WriteFaultScenario::AllRefuse, 4, &seq());
        assert_eq!(all.faults.len(), 4);
        let mid =
            WriteFaultPlan::generate(&WriteFaultScenario::MidWriteFailure { after: 7 }, 8, &seq());
        assert_eq!(mid.faults.len(), 1);
        assert_eq!(mid.faults[0].kind, WriteFaultKind::FailAfter { writes: 7 });
        // Saturates rather than repeating disks.
        let over =
            WriteFaultPlan::generate(&WriteFaultScenario::RefusingDisks { n: 99 }, 4, &seq());
        assert_eq!(over.faults.len(), 4);
        assert_eq!(WriteFaultScenario::AllRefuse.name(), "all_refuse");
        assert_eq!(
            WriteFaultScenario::MidWriteFailure { after: 1 }.name(),
            "mid_write_failure"
        );
    }

    #[test]
    fn read_fault_plans_are_deterministic_and_sorted() {
        let s = ReadFaultScenario::TransientDisks { n: 3, reads: 5 };
        let a = ReadFaultPlan::generate(&s, 8, &seq());
        let b = ReadFaultPlan::generate(&s, 8, &seq());
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 3);
        assert!(a.faults.windows(2).all(|w| w[0].disk < w[1].disk));
        assert!(a
            .faults
            .iter()
            .all(|f| f.kind == ReadFaultKind::Transient { reads: 5 } && f.disk < 8));
        // Other seeds pick other victims, eventually.
        let picks: std::collections::HashSet<Vec<usize>> = (0..16)
            .map(|i| {
                ReadFaultPlan::generate(&s, 8, &SeedSequence::new(i))
                    .faults
                    .iter()
                    .map(|f| f.disk)
                    .collect()
            })
            .collect();
        assert!(picks.len() > 4, "victim choice should vary with seed");
    }

    #[test]
    fn read_fault_scenario_shapes() {
        assert!(ReadFaultPlan::generate(&ReadFaultScenario::None, 8, &seq()).is_empty());
        let c = ReadFaultPlan::generate(
            &ReadFaultScenario::CorruptDisks { n: 2, reads: 1 },
            8,
            &seq(),
        );
        assert_eq!(c.faults.len(), 2);
        assert!(c
            .faults
            .iter()
            .all(|f| f.kind == ReadFaultKind::Corrupt { reads: 1 }));
        let t =
            ReadFaultPlan::generate(&ReadFaultScenario::TornDisks { n: 1, reads: 4 }, 8, &seq());
        assert_eq!(t.faults.len(), 1);
        assert_eq!(t.faults[0].kind, ReadFaultKind::Torn { reads: 4 });
        // Mixed picks distinct victims across classes and saturates.
        let m = ReadFaultPlan::generate(
            &ReadFaultScenario::Mixed {
                transient: 2,
                corrupt: 2,
                torn: 2,
                reads: 3,
            },
            4,
            &seq(),
        );
        assert_eq!(m.faults.len(), 4, "saturates at the disk count");
        let distinct: std::collections::HashSet<_> = m.faults.iter().map(|f| f.disk).collect();
        assert_eq!(distinct.len(), 4, "victims are distinct across classes");
        assert_eq!(ReadFaultScenario::None.name(), "none");
        assert_eq!(
            ReadFaultScenario::Mixed {
                transient: 1,
                corrupt: 1,
                torn: 1,
                reads: 1
            }
            .name(),
            "mixed"
        );
    }

    #[test]
    fn meta_fault_plans_are_deterministic_and_minority_bounded() {
        let s = MetaFaultScenario::MinorityLoss {
            per_replica_losses: 9,
        };
        let a = MetaFaultPlan::generate(&s, 4, 3, &seq());
        let b = MetaFaultPlan::generate(&s, 4, 3, &seq());
        assert_eq!(a, b);
        // 3 replicas -> quorum 2 -> at most 1 loss per shard, however
        // greedy the scenario asked to be.
        for shard in 0..4 {
            assert_eq!(a.downed(shard), 1, "shard {shard} must keep quorum");
        }
        assert!(a
            .faults
            .windows(2)
            .all(|w| (w[0].shard, w[0].replica) < (w[1].shard, w[1].replica)));
        // 5 replicas -> quorum 3 -> up to 2 losses per shard.
        let wide = MetaFaultPlan::generate(&s, 2, 5, &seq());
        for shard in 0..2 {
            assert_eq!(wide.downed(shard), 2);
        }
    }

    #[test]
    fn meta_fault_scenario_shapes() {
        assert!(MetaFaultPlan::generate(&MetaFaultScenario::None, 8, 3, &seq()).is_empty());
        let torn = MetaFaultPlan::generate(
            &MetaFaultScenario::CrashMidCommit { shards: 3, keep: 5 },
            8,
            3,
            &seq(),
        );
        assert_eq!(torn.faults.len(), 3);
        let shards: std::collections::HashSet<usize> =
            torn.faults.iter().map(|f| f.shard).collect();
        assert_eq!(shards.len(), 3, "torn shards must be distinct");
        assert!(torn
            .faults
            .iter()
            .all(|f| f.kind == MetaFaultKind::TornAppend { keep: 5 } && f.replica < 3));
        let rot = MetaFaultPlan::generate(
            &MetaFaultScenario::TailRot {
                shards: 99,
                bytes: 7,
            },
            4,
            3,
            &seq(),
        );
        assert_eq!(rot.faults.len(), 4, "shard subset saturates at the store");
        // Storm: on every shard, 1 down + 1 torn + 1 rotten, all on
        // distinct replicas (with R = 5 there is room for all three).
        let storm = MetaFaultPlan::generate(
            &MetaFaultScenario::Storm {
                per_replica_losses: 1,
                keep: 4,
                bytes: 8,
            },
            2,
            5,
            &seq(),
        );
        for shard in 0..2 {
            let on: Vec<&MetaFault> = storm.faults.iter().filter(|f| f.shard == shard).collect();
            assert_eq!(on.len(), 3);
            let replicas: std::collections::HashSet<usize> = on.iter().map(|f| f.replica).collect();
            assert_eq!(replicas.len(), 3, "storm victims must be distinct replicas");
        }
        assert_eq!(MetaFaultScenario::default().name(), "none");
        assert_eq!(
            MetaFaultScenario::Storm {
                per_replica_losses: 1,
                keep: 0,
                bytes: 1
            }
            .name(),
            "storm"
        );
    }
}
