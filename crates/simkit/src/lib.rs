#![warn(missing_docs)]

//! Discrete-event simulation kit for the RobuSTore reproduction.
//!
//! This crate provides the substrate every simulated component builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock
//!   with exact integer arithmetic, so event ordering is deterministic and
//!   platform-independent.
//! * [`EventQueue`] — a priority queue of timestamped events with stable
//!   FIFO tie-breaking for simultaneous events.
//! * [`rng`] — deterministic per-component random streams derived from a
//!   single master seed, so every experiment is exactly reproducible.
//! * [`faults`] — seeded fault plans (slowdowns, failures, flaky I/O,
//!   load bursts) expanded from named scenarios on a dedicated stream,
//!   so every scheme can be compared under an identical fault schedule.
//! * [`stats`] — online mean/variance accumulation and summaries used by the
//!   evaluation harness (access bandwidth, latency standard deviation, ...).
//! * [`report`] — plain-text table formatting for the experiment binaries.
//! * [`durability`] — predicted MTTDL from a birth–death repair chain,
//!   comparing replication vs RS vs LT at equal storage overhead with
//!   the failure rate calibrated from seeded decay traces.
//!
//! The engine is intentionally minimal: RobuSTore's evaluation (paper
//! Chapter 6) is a closed-loop client/disk simulation, which maps naturally
//! onto a single event queue drained by a scheme-specific coordinator loop
//! rather than onto a general process-oriented framework.

pub mod durability;
pub mod event;
pub mod faults;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use durability::{compare_at_overhead, lambda_from_decay, mttdl_birth_death, MttdlEstimate};
pub use event::EventQueue;
pub use faults::{
    FaultEvent, FaultKind, FaultPlan, FaultScenario, MetaFault, MetaFaultKind, MetaFaultPlan,
    MetaFaultScenario, ReadFault, ReadFaultKind, ReadFaultPlan, ReadFaultScenario, WriteFault,
    WriteFaultKind, WriteFaultPlan, WriteFaultScenario,
};
pub use rng::{SeedSequence, SimRng};
pub use stats::{LogHistogram, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
