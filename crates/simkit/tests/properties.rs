//! Property tests for the simulation kit.

use proptest::prelude::*;
use robustore_simkit::{EventQueue, OnlineStats, SimDuration, SimTime};

proptest! {
    /// Events pop in nondecreasing time order, with FIFO tie-break,
    /// regardless of insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(i);
            }
        }
        let mut seen: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            seen.push(i);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, kept);
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let stats: OnlineStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((stats.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.stdev() - var.sqrt()).abs() <= 1e-5 * (1.0 + var.sqrt()));
        prop_assert_eq!(stats.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(stats.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging arbitrary splits equals the sequential accumulation.
    #[test]
    fn stats_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let cut = split.min(xs.len());
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..cut].iter().copied().collect();
        let right: OnlineStats = xs[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
        prop_assert!((left.stdev() - whole.stdev()).abs() < 1e-7 * (1.0 + whole.stdev()));
    }

    /// Duration arithmetic: sums of parts equal the whole.
    #[test]
    fn duration_addition_is_consistent(parts in proptest::collection::vec(0u64..1_000_000, 1..50)) {
        let total: SimDuration = parts.iter().map(|&p| SimDuration::from_nanos(p)).sum();
        prop_assert_eq!(total.as_nanos(), parts.iter().sum::<u64>());
        let mut t = SimTime::ZERO;
        for &p in &parts {
            t += SimDuration::from_nanos(p);
        }
        prop_assert_eq!(t.since(SimTime::ZERO), total);
    }
}
