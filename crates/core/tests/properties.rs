//! Property tests for the framework crate.

use proptest::prelude::*;
use robustore_core::credentials::{Conditions, CredentialChain, KeyAuthority, Rights};
use robustore_core::{
    AccessMode, AdmissionController, Client, InMemoryBackend, QosOptions, System, SystemConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Client write/read round-trips arbitrary payload sizes exactly
    /// (including non-multiples of the block size).
    #[test]
    fn client_roundtrip_arbitrary_sizes(
        len in 1usize..300_000,
        salt in any::<u8>(),
        redundancy in 1.0f64..4.0,
    ) {
        let sys = System::new(
            InMemoryBackend::new((0..6).map(|i| 10e6 + i as f64 * 8e6).collect()),
            SystemConfig { block_bytes: 8 << 10, ..Default::default() },
        );
        let user = sys.register_user();
        let client = Client::connect(&sys, user);
        let data: Vec<u8> = (0..len).map(|i| ((i as u64 * 31 + salt as u64) % 256) as u8).collect();
        let mut h = client
            .open("f", AccessMode::Write, QosOptions::best_effort().with_redundancy(redundancy))
            .unwrap();
        client.write(&mut h, &data).unwrap();
        client.close(h).unwrap();
        let h = client.open("f", AccessMode::Read, QosOptions::best_effort()).unwrap();
        prop_assert_eq!(client.read(&h).unwrap(), data);
        client.close(h).unwrap();
    }

    /// A chain grants a right iff every link grants it (intersection
    /// semantics), for arbitrary per-link rights.
    #[test]
    fn chain_rights_are_intersections(
        grants in proptest::collection::vec(0u8..8, 1..5),
        needed in 0u8..8,
    ) {
        fn rights(bits: u8) -> Rights {
            let mut r = Rights::NONE;
            if bits & 1 != 0 { r = r | Rights::R; }
            if bits & 2 != 0 { r = r | Rights::W; }
            if bits & 4 != 0 { r = r | Rights::X; }
            r
        }
        let mut ka = KeyAuthority::new();
        let mut keys = vec![ka.generate()];
        for _ in 0..grants.len() {
            keys.push(ka.generate());
        }
        let links: Vec<_> = grants
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                ka.issue(
                    keys[i],
                    keys[i + 1],
                    Conditions {
                        app_domain: "RobuSTore".into(),
                        handle: 7,
                        rights: rights(g),
                        valid_from: 0,
                        valid_until: 100,
                    },
                )
                .unwrap()
            })
            .collect();
        let chain = CredentialChain(links);
        let requester = *keys.last().unwrap();
        let effective = grants.iter().fold(7u8, |acc, &g| acc & g);
        let ok = ka
            .validate_chain(&chain, keys[0], requester, rights(needed), 7, "RobuSTore", 50)
            .is_ok();
        prop_assert_eq!(ok, effective & needed == needed, "grants {:?} needed {}", grants, needed);
    }

    /// Checksum verification never passes on mutated bytes: any single
    /// byte change (however small — one bit), any truncation, and any
    /// extension of a block changes its CRC32C. This is the property the
    /// read path's integrity gate rests on.
    #[test]
    fn checksum_never_verifies_mutated_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        pos in any::<usize>(),
        flip in 1u8..=255,
        cut in any::<usize>(),
    ) {
        use robustore_core::crc32c;
        let digest = crc32c(&data);
        // Determinism: the digest is a pure function of the bytes.
        prop_assert_eq!(crc32c(&data), digest);
        // Any byte flip is caught (CRC32C detects all 1-bit and 2-bit
        // errors, and `flip != 0` guarantees the byte really changed).
        let mut flipped = data.clone();
        flipped[pos % data.len()] ^= flip;
        prop_assert_ne!(crc32c(&flipped), digest);
        // Any truncation is caught (a torn read).
        let keep = cut % data.len();
        prop_assert_ne!(crc32c(&data[..keep]), digest);
        // Appending a zero byte is caught too.
        let mut longer = data.clone();
        longer.push(0);
        prop_assert_ne!(crc32c(&longer), digest);
    }

    /// Admission controller never exceeds capacity and conserves slots
    /// through arbitrary request/release sequences.
    #[test]
    fn admission_conserves_capacity(
        capacity in 1usize..8,
        ops in proptest::collection::vec((any::<bool>(), 0u64..12), 1..200),
    ) {
        let mut a = AdmissionController::new(capacity);
        let mut active = std::collections::HashSet::new();
        for (is_request, id) in ops {
            if is_request {
                let granted = a.request(id);
                if granted {
                    active.insert(id);
                }
                prop_assert_eq!(granted, active.contains(&id));
            } else {
                let released = a.release(id);
                prop_assert_eq!(released, active.remove(&id));
            }
            prop_assert_eq!(a.in_use(), active.len());
            prop_assert!(a.in_use() <= capacity);
        }
    }
}
