//! Layout planning and access scheduling (§5.3).
//!
//! The planner turns a QoS request plus the metadata server's disk
//! registry into an access plan:
//!
//! * **Disk count** (§5.3.1): at least target-bandwidth ÷ average disk
//!   bandwidth ("if the average remote disk bandwidth is 20 MBps … we
//!   need about 64 disks to saturate a 10 Gbps client").
//! * **Disk selection** (§5.3.1): lightly-loaded disks first, preferring
//!   free space, while *mixing* availability classes rather than taking
//!   only the most-available disks.
//! * **Redundancy** (§5.3.2): D = (1+ε)·(peak disk bandwidth / average
//!   disk bandwidth) − 1, the ratio that leaves every disk enough blocks
//!   to stream for the whole read.

use robustore_schemes::{AdaptiveReadPolicy, DiskLoadMap, WaveSchedule, WaveSlot};

use crate::error::StoreError;
use crate::metadata::DiskInfo;
use crate::qos::QosOptions;

/// How the client schedules speculative block requests on a read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadPolicy {
    /// The paper's 2007 policy: request every stored block up front in
    /// nominal arrival order, cancel leftovers on decode. Kept as the
    /// differential oracle — byte-identical data, maximal disk pressure.
    Static,
    /// Queue-aware staged waves sized from the decoder's expected need
    /// and ordered by live per-disk completion estimates.
    Adaptive(AdaptiveReadPolicy),
}

impl Default for ReadPolicy {
    fn default() -> Self {
        ReadPolicy::Adaptive(AdaptiveReadPolicy::default())
    }
}

impl ReadPolicy {
    /// The default adaptive policy.
    pub fn adaptive() -> Self {
        Self::default()
    }

    /// Build the submission schedule for one access: `slots` describe the
    /// file's layout, `k` is the decoder's block need, `load` the live
    /// ring telemetry (empty on the blocking path). Static policy — and
    /// adaptive with no telemetry — yield the request-everything schedule
    /// in nominal arrival order.
    pub fn schedule(&self, slots: &[WaveSlot], k: usize, load: &DiskLoadMap) -> WaveSchedule {
        match self {
            ReadPolicy::Static => AdaptiveReadPolicy::static_schedule(slots),
            ReadPolicy::Adaptive(policy) => policy.schedule(slots, k, load),
        }
    }
}

/// The output of planning: which disks, how much redundancy.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Selected disk ids, in scheduling order.
    pub disks: Vec<usize>,
    /// Degree of data redundancy D.
    pub redundancy: f64,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct LayoutPlanner {
    /// Expected LT reception overhead ε (≈0.5 for the default parameters).
    pub reception_overhead: f64,
    /// Default client bandwidth target when QoS does not set one
    /// (10 Gb/s).
    pub default_target_bandwidth: f64,
    /// Disks with load above this are considered heavily loaded and
    /// avoided while enough lighter disks exist.
    pub load_threshold: f64,
    /// Bounds on planned redundancy.
    pub min_redundancy: f64,
    /// Upper bound on planned redundancy.
    pub max_redundancy: f64,
}

impl Default for LayoutPlanner {
    fn default() -> Self {
        LayoutPlanner {
            reception_overhead: 0.5,
            default_target_bandwidth: 1.25e9,
            load_threshold: 0.7,
            min_redundancy: 1.0,
            max_redundancy: 9.0,
        }
    }
}

impl LayoutPlanner {
    /// Produce a plan for an access over `disks` satisfying `qos`.
    pub fn plan(&self, qos: &QosOptions, disks: &[DiskInfo]) -> Result<Plan, StoreError> {
        qos.validate().map_err(StoreError::AccessDenied)?;
        if disks.is_empty() {
            return Err(StoreError::InsufficientDisks { got: 0, need: 1 });
        }
        // Pinned layout: the plan is a pure function of the request — no
        // load or usage reads, so concurrent accesses always plan the
        // same disks regardless of interleaving.
        if let Some(pinned) = &qos.pinned_disks {
            if let Some(&bad) = pinned.iter().find(|&&d| d >= disks.len()) {
                return Err(StoreError::MissingBlock {
                    disk: bad,
                    block: 0,
                });
            }
            let redundancy = qos
                .redundancy
                .unwrap_or_else(|| self.redundancy_for(disks, pinned));
            return Ok(Plan {
                disks: pinned.clone(),
                redundancy,
            });
        }
        let avg_bw = disks.iter().map(|d| d.expected_bandwidth).sum::<f64>() / disks.len() as f64;
        let target = qos
            .target_bandwidth
            .unwrap_or(self.default_target_bandwidth);
        let wanted = qos
            .num_disks
            .unwrap_or(((target / avg_bw).ceil() as usize).max(1));
        let count = wanted.min(disks.len());

        let selected = self.select(disks, count);
        if selected.len() < count.min(2).min(disks.len()) {
            return Err(StoreError::InsufficientDisks {
                got: selected.len(),
                need: count,
            });
        }

        let redundancy = qos
            .redundancy
            .unwrap_or_else(|| self.redundancy_for(disks, &selected));

        Ok(Plan {
            disks: selected,
            redundancy,
        })
    }

    /// §5.3.2 redundancy sizing over a chosen selection:
    /// D = (1+ε)·(peak/average) − 1, clamped to the configured bounds.
    fn redundancy_for(&self, disks: &[DiskInfo], selected: &[usize]) -> f64 {
        let sel_avg = selected
            .iter()
            .map(|&i| disks[i].expected_bandwidth)
            .sum::<f64>()
            / selected.len() as f64;
        let peak = selected
            .iter()
            .map(|&i| disks[i].expected_bandwidth)
            .fold(0.0f64, f64::max);
        ((1.0 + self.reception_overhead) * peak / sel_avg - 1.0)
            .clamp(self.min_redundancy, self.max_redundancy)
    }

    /// §5.3.1 selection: score by (light load, free space), then
    /// interleave high- and low-availability candidates so failures don't
    /// correlate.
    fn select(&self, disks: &[DiskInfo], count: usize) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..disks.len()).collect();
        // Lightly loaded first; free space breaks ties (descending).
        candidates.sort_by(|&a, &b| {
            let da = &disks[a];
            let db = &disks[b];
            let la = (da.load > self.load_threshold) as u8;
            let lb = (db.load > self.load_threshold) as u8;
            la.cmp(&lb)
                .then(da.load.partial_cmp(&db.load).expect("finite load"))
                .then(db.free_bytes().cmp(&da.free_bytes()))
                .then(a.cmp(&b))
        });
        let pool = &candidates[..candidates.len()];
        // Mix availability classes: split the scored pool at the median
        // availability and interleave.
        let median = {
            let mut av: Vec<f64> = pool.iter().map(|&i| disks[i].availability).collect();
            av.sort_by(|x, y| x.partial_cmp(y).expect("finite availability"));
            av[av.len() / 2]
        };
        let (high, low): (Vec<usize>, Vec<usize>) =
            pool.iter().partition(|&&i| disks[i].availability >= median);
        let mut out = Vec::with_capacity(count);
        let mut hi = high.into_iter();
        let mut lo = low.into_iter();
        while out.len() < count {
            match (hi.next(), lo.next()) {
                (Some(h), Some(l)) => {
                    out.push(h);
                    if out.len() < count {
                        out.push(l);
                    }
                }
                (Some(h), None) => out.push(h),
                (None, Some(l)) => out.push(l),
                (None, None) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(id: usize, bw: f64, load: f64, avail: f64) -> DiskInfo {
        DiskInfo {
            id,
            capacity_bytes: 1 << 40,
            used_bytes: 0,
            expected_bandwidth: bw,
            load,
            availability: avail,
        }
    }

    fn pool() -> Vec<DiskInfo> {
        (0..16)
            .map(|i| {
                disk(
                    i,
                    10e6 + (i as f64) * 5e6,
                    (i % 4) as f64 * 0.25,
                    if i % 2 == 0 { 0.999 } else { 0.9 },
                )
            })
            .collect()
    }

    #[test]
    fn disk_count_follows_target_bandwidth() {
        let p = LayoutPlanner::default();
        // avg bw = 47.5 MB/s; 475 MB/s target → 10 disks.
        let plan = p
            .plan(
                &QosOptions::best_effort().with_target_bandwidth(475e6),
                &pool(),
            )
            .unwrap();
        assert_eq!(plan.disks.len(), 10);
    }

    #[test]
    fn explicit_disk_count_wins() {
        let p = LayoutPlanner::default();
        let plan = p
            .plan(&QosOptions::best_effort().with_num_disks(5), &pool())
            .unwrap();
        assert_eq!(plan.disks.len(), 5);
    }

    #[test]
    fn count_clamped_to_pool() {
        let p = LayoutPlanner::default();
        let plan = p.plan(&QosOptions::best_effort(), &pool()).unwrap();
        assert_eq!(plan.disks.len(), 16, "10Gb/s target wants more than 16");
    }

    #[test]
    fn lightly_loaded_disks_preferred() {
        let p = LayoutPlanner::default();
        let mut disks = pool();
        // Make disk 3 idle and disk 0 saturated.
        disks[3].load = 0.0;
        disks[0].load = 0.95;
        let plan = p
            .plan(&QosOptions::best_effort().with_num_disks(8), &disks)
            .unwrap();
        assert!(plan.disks.contains(&3));
        assert!(
            !plan.disks.contains(&0),
            "saturated disk picked over idle ones: {:?}",
            plan.disks
        );
    }

    #[test]
    fn availability_classes_are_mixed() {
        let p = LayoutPlanner::default();
        let plan = p
            .plan(&QosOptions::best_effort().with_num_disks(8), &pool())
            .unwrap();
        let high = plan
            .disks
            .iter()
            .filter(|&&i| pool()[i].availability >= 0.999)
            .count();
        assert!(
            (2..=6).contains(&high),
            "selection should mix availability classes, high={high}"
        );
    }

    #[test]
    fn redundancy_from_peak_over_average() {
        let p = LayoutPlanner::default();
        // Two speeds: avg 30, peak 55 → D = 1.5·(55/32.5)−1 ≈ 1.54.
        let disks: Vec<DiskInfo> = (0..8)
            .map(|i| disk(i, if i < 4 { 10e6 } else { 55e6 }, 0.0, 0.99))
            .collect();
        let plan = p
            .plan(&QosOptions::best_effort().with_num_disks(8), &disks)
            .unwrap();
        let expected = 1.5 * 55.0 / 32.5 - 1.0;
        assert!(
            (plan.redundancy - expected).abs() < 1e-9,
            "got {}, expected {expected}",
            plan.redundancy
        );
    }

    #[test]
    fn redundancy_clamped_and_overridable() {
        let p = LayoutPlanner::default();
        // Homogeneous speeds → formula gives 0.5, clamped to min 1.0.
        let disks: Vec<DiskInfo> = (0..4).map(|i| disk(i, 20e6, 0.0, 0.99)).collect();
        let plan = p
            .plan(&QosOptions::best_effort().with_num_disks(4), &disks)
            .unwrap();
        assert_eq!(plan.redundancy, 1.0);
        let plan = p
            .plan(
                &QosOptions::best_effort()
                    .with_num_disks(4)
                    .with_redundancy(3.0),
                &disks,
            )
            .unwrap();
        assert_eq!(plan.redundancy, 3.0);
    }

    #[test]
    fn pinned_disks_bypass_dynamic_selection() {
        let p = LayoutPlanner::default();
        let mut disks = pool();
        // Saturate a pinned disk: dynamic selection would avoid it, the
        // pin keeps it — the plan must not depend on live load.
        disks[2].load = 0.95;
        let plan = p
            .plan(
                &QosOptions::best_effort().with_pinned_disks(vec![2, 5, 7]),
                &disks,
            )
            .unwrap();
        assert_eq!(plan.disks, vec![2, 5, 7], "pin order preserved");
        // Redundancy still sized from the pinned selection's spread.
        let sel: Vec<f64> = [2usize, 5, 7]
            .iter()
            .map(|&i| disks[i].expected_bandwidth)
            .collect();
        let avg = sel.iter().sum::<f64>() / 3.0;
        let peak = sel.iter().fold(0.0f64, |a, &b| a.max(b));
        let expected = (1.5 * peak / avg - 1.0).clamp(1.0, 9.0);
        assert!((plan.redundancy - expected).abs() < 1e-9);
        // Out-of-range pins error instead of planning nonsense.
        assert!(p
            .plan(
                &QosOptions::best_effort().with_pinned_disks(vec![99]),
                &disks
            )
            .is_err());
    }

    #[test]
    fn empty_pool_errors() {
        let p = LayoutPlanner::default();
        assert!(matches!(
            p.plan(&QosOptions::best_effort(), &[]),
            Err(StoreError::InsufficientDisks { .. })
        ));
    }
}
