//! The metadata server (§4.2).
//!
//! Maintains *data information* (name, size, location, coding algorithm
//! and parameters, owner, locks) and *storage-server information*
//! (capacity, expected performance, recent load, availability). Clients
//! query it on open, and register data structure and location on
//! write/close. The implementation is the centralised variant the paper
//! recommends for moderate scale ("a well-designed metadata server can
//! support a large-scale system").

use std::collections::{BTreeMap, BTreeSet, HashMap};

use robustore_erasure::LtParams;

use crate::credentials::PublicKey;
use crate::error::StoreError;
use crate::locks::LockTable;

/// How a file is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Shared read.
    Read,
    /// Exclusive write (create or replace/update).
    Write,
}

/// Storage-server information kept per disk.
#[derive(Debug, Clone)]
pub struct DiskInfo {
    /// Disk id (backend index).
    pub id: usize,
    /// Raw capacity, bytes.
    pub capacity_bytes: u64,
    /// Bytes in use (updated on writes).
    pub used_bytes: u64,
    /// Expected sustained bandwidth, bytes/second.
    pub expected_bandwidth: f64,
    /// Recent load in [0, 1] (0 = idle).
    pub load: f64,
    /// Availability estimate in [0, 1] (§5.3.1 recommends mixing classes).
    pub availability: f64,
}

impl DiskInfo {
    /// Free capacity, bytes.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes)
    }
}

/// Erasure-coding description stored with each file; enough for any
/// client to regenerate the identical coding graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CodingSpec {
    /// Original block count K.
    pub k: usize,
    /// Coded block count N.
    pub n: usize,
    /// Block size, bytes.
    pub block_bytes: u64,
    /// LT parameters.
    pub params: LtParams,
    /// Graph seed.
    pub seed: u64,
}

/// Per-file metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// File name (namespace key).
    pub name: String,
    /// Metadata-server-assigned id; block keys derive from it.
    pub file_id: u64,
    /// Logical size in bytes (unpadded).
    pub size_bytes: u64,
    /// Coding description.
    pub coding: CodingSpec,
    /// Layout: for each used disk, the coded-block ids it stores
    /// (block key = [`gen_key`]).
    pub layout: Vec<(usize, Vec<u32>)>,
    /// Coded-block ids currently stored under the *odd* generation key.
    ///
    /// Overwrites and updates are copy-on-write: the new generation of a
    /// coded block lands under the opposite-parity key of the old one, the
    /// metadata commit flips the recorded parity atomically, and only then
    /// is the old key garbage-collected. Since at most two generations of
    /// a block ever coexist, one parity bit per block suffices.
    pub odd_keys: BTreeSet<u32>,
    /// CRC32C digest of each stored coded block's bytes, keyed by coded
    /// id ([`crate::integrity::crc32c`]). Verified on every block read;
    /// a mismatch demotes the block to missing. Checksums are over the
    /// *coded* bytes, so they are generation-independent (both parity
    /// keys of a block hold identical content when intact). An empty map
    /// marks a legacy (pre-integrity) file: its blocks read as
    /// `unverified` until a scrub populates the digests.
    pub checksums: BTreeMap<u32, u32>,
    /// Owner identity.
    pub owner: PublicKey,
    /// Bumped on every committed write/update.
    pub version: u64,
}

/// Backend block key of coded block `coded` of file `file_id`, in the
/// generation of parity `odd`. The two generation keys of a block differ
/// only in bit 32, and keys of distinct files never collide.
pub fn gen_key(file_id: u64, coded: u32, odd: bool) -> u64 {
    (file_id << 33) | ((odd as u64) << 32) | coded as u64
}

impl FileMeta {
    /// Backend block key of coded block `coded_id` in the *committed*
    /// generation.
    pub fn block_key(&self, coded_id: u32) -> u64 {
        gen_key(self.file_id, coded_id, self.odd_keys.contains(&coded_id))
    }

    /// Total coded blocks across the layout.
    pub fn stored_blocks(&self) -> usize {
        self.layout.iter().map(|(_, b)| b.len()).sum()
    }
}

/// The metadata server.
#[derive(Debug, Default)]
pub struct MetadataServer {
    files: HashMap<String, FileMeta>,
    disks: Vec<DiskInfo>,
    locks: LockTable,
    next_file_id: u64,
}

impl MetadataServer {
    /// An empty metadata server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a storage server/disk (done when servers join, §4.2).
    pub fn register_disk(&mut self, info: DiskInfo) {
        assert_eq!(info.id, self.disks.len(), "register disks in id order");
        self.disks.push(info);
    }

    /// Current disk registry snapshot.
    pub fn disks(&self) -> &[DiskInfo] {
        &self.disks
    }

    /// Update dynamic information for a disk (load, usage) — fed by client
    /// accesses and periodic queries (§4.2).
    pub fn update_disk(&mut self, id: usize, used_bytes: u64, load: f64) {
        let d = &mut self.disks[id];
        d.used_bytes = used_bytes;
        d.load = load.clamp(0.0, 1.0);
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Acquire the lock for `mode` and return the file's metadata
    /// (`None` metadata for a write to a new file). A stale lock left by
    /// a crashed holder (see [`crate::locks::LockTable`]) is reclaimed
    /// instead of conflicting.
    pub fn open(&mut self, name: &str, mode: AccessMode) -> Result<Option<FileMeta>, StoreError> {
        if mode == AccessMode::Read && !self.files.contains_key(name) {
            return Err(StoreError::NotFound(name.to_string()));
        }
        self.locks.acquire(name, mode)?;
        Ok(self.files.get(name).cloned())
    }

    /// Release the lock taken by `open`.
    pub fn close(&mut self, name: &str, mode: AccessMode) {
        self.locks.release(name, mode);
    }

    /// Advance the stale-lock reclaim epoch (a supervising heartbeat
    /// round). Locks whose holders have not touched them for the lease
    /// length become reclaimable by the next conflicting `open`.
    pub fn begin_lock_epoch(&mut self) -> u64 {
        self.locks.begin_epoch()
    }

    /// Locks reclaimed from presumed-crashed holders so far.
    pub fn locks_reclaimed(&self) -> u64 {
        self.locks.reclaimed()
    }

    /// Override the stale-lock lease length in epochs (minimum 1).
    pub fn set_lock_lease_epochs(&mut self, lease: u64) {
        self.locks.set_lease_epochs(lease);
    }

    /// Try to upgrade a sole-reader lock on `name` to the writer lock
    /// (read-repair wants to commit an improved layout discovered during
    /// a read). Succeeds only when the caller is the *only* reader; with
    /// other readers present, or no read lock held, it returns `false`
    /// and the lock is untouched. Pair with [`MetadataServer::downgrade`].
    pub fn try_upgrade(&mut self, name: &str) -> bool {
        self.locks.try_upgrade(name)
    }

    /// Downgrade the writer lock on `name` back to a single-reader lock,
    /// undoing [`MetadataServer::try_upgrade`].
    pub fn downgrade(&mut self, name: &str) {
        self.locks.downgrade(name)
    }

    /// Allocate a file id for a new file.
    pub fn allocate_file_id(&mut self) -> u64 {
        self.next_file_id += 1;
        self.next_file_id
    }

    /// Commit metadata after a write/update (the client "registers the
    /// data structure and location", §4.3.2). Requires the writer lock.
    pub fn commit(&mut self, meta: FileMeta) -> Result<(), StoreError> {
        if !self.locks.holds_writer(&meta.name) {
            return Err(StoreError::StaleHandle);
        }
        self.files.insert(meta.name.clone(), meta);
        Ok(())
    }

    /// Remove a file's metadata (requires the writer lock).
    pub fn remove(&mut self, name: &str) -> Result<FileMeta, StoreError> {
        if !self.locks.holds_writer(name) {
            return Err(StoreError::StaleHandle);
        }
        self.files
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    /// Look up without locking (status queries).
    pub fn stat(&self, name: &str) -> Option<&FileMeta> {
        self.files.get(name)
    }

    /// All known file names (directory listing).
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.keys().cloned().collect();
        names.sort();
        names
    }

    /// Bootstrap: insert metadata restored from persistent storage,
    /// bypassing locks (used when reopening a durable store). Keeps the
    /// file-id counter ahead of every restored id.
    pub fn restore(&mut self, meta: FileMeta) {
        self.next_file_id = self.next_file_id.max(meta.file_id);
        self.files.insert(meta.name.clone(), meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(id: usize) -> DiskInfo {
        DiskInfo {
            id,
            capacity_bytes: 1 << 40,
            used_bytes: 0,
            expected_bandwidth: 20e6,
            load: 0.0,
            availability: 0.99,
        }
    }

    fn meta(name: &str, file_id: u64) -> FileMeta {
        FileMeta {
            name: name.into(),
            file_id,
            size_bytes: 1 << 20,
            coding: CodingSpec {
                k: 16,
                n: 64,
                block_bytes: 64 << 10,
                params: LtParams::default(),
                seed: 1,
            },
            layout: vec![(0, vec![0, 1]), (1, vec![2, 3])],
            odd_keys: BTreeSet::new(),
            checksums: BTreeMap::new(),
            owner: 42,
            version: 1,
        }
    }

    #[test]
    fn registry_and_update() {
        let mut m = MetadataServer::new();
        m.register_disk(disk(0));
        m.register_disk(disk(1));
        m.update_disk(1, 100, 0.5);
        assert_eq!(m.disks()[1].used_bytes, 100);
        assert_eq!(m.disks()[1].load, 0.5);
        assert_eq!(m.disks()[0].free_bytes(), 1 << 40);
    }

    #[test]
    fn read_of_missing_file_fails() {
        let mut m = MetadataServer::new();
        assert!(matches!(
            m.open("nope", AccessMode::Read),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn write_then_read_lifecycle() {
        let mut m = MetadataServer::new();
        assert!(m.open("f", AccessMode::Write).unwrap().is_none());
        let id = m.allocate_file_id();
        m.commit(meta("f", id)).unwrap();
        m.close("f", AccessMode::Write);

        let got = m.open("f", AccessMode::Read).unwrap().unwrap();
        assert_eq!(got.file_id, id);
        assert_eq!(got.stored_blocks(), 4);
        m.close("f", AccessMode::Read);
    }

    #[test]
    fn lock_semantics() {
        let mut m = MetadataServer::new();
        m.open("f", AccessMode::Write).unwrap();
        m.commit(meta("f", 1)).unwrap();
        m.close("f", AccessMode::Write);

        // Multiple readers OK.
        m.open("f", AccessMode::Read).unwrap();
        m.open("f", AccessMode::Read).unwrap();
        // Writer blocked while readers hold.
        assert!(matches!(
            m.open("f", AccessMode::Write),
            Err(StoreError::LockConflict(_))
        ));
        m.close("f", AccessMode::Read);
        m.close("f", AccessMode::Read);
        // Now writer proceeds; readers blocked.
        m.open("f", AccessMode::Write).unwrap();
        assert!(matches!(
            m.open("f", AccessMode::Read),
            Err(StoreError::LockConflict(_))
        ));
        m.close("f", AccessMode::Write);
    }

    #[test]
    fn commit_requires_writer_lock() {
        let mut m = MetadataServer::new();
        assert!(matches!(
            m.commit(meta("f", 1)),
            Err(StoreError::StaleHandle)
        ));
    }

    #[test]
    fn block_keys_are_distinct_per_file() {
        let a = meta("a", 1);
        let b = meta("b", 2);
        assert_ne!(a.block_key(0), b.block_key(0));
        assert_eq!(a.block_key(5), (1 << 33) | 5);
    }

    #[test]
    fn generation_keys_differ_only_in_parity() {
        let mut m = meta("a", 3);
        let even = m.block_key(7);
        m.odd_keys.insert(7);
        let odd = m.block_key(7);
        assert_ne!(even, odd);
        assert_eq!(even ^ odd, 1 << 32, "parity flips exactly bit 32");
        assert_eq!(even, gen_key(3, 7, false));
        assert_eq!(odd, gen_key(3, 7, true));
        assert_eq!(m.block_key(8), gen_key(3, 8, false), "other ids untouched");
    }

    #[test]
    fn upgrade_requires_sole_reader() {
        let mut m = MetadataServer::new();
        m.open("f", AccessMode::Write).unwrap();
        m.commit(meta("f", 1)).unwrap();
        m.close("f", AccessMode::Write);

        // Two readers: no upgrade possible.
        m.open("f", AccessMode::Read).unwrap();
        m.open("f", AccessMode::Read).unwrap();
        assert!(!m.try_upgrade("f"));
        m.close("f", AccessMode::Read);

        // Sole reader: upgrade, commit, downgrade, then a balanced
        // read-close still works.
        assert!(m.try_upgrade("f"));
        assert!(matches!(
            m.open("f", AccessMode::Read),
            Err(StoreError::LockConflict(_))
        ));
        let mut upd = meta("f", 1);
        upd.version = 2;
        m.commit(upd).unwrap();
        m.downgrade("f");
        m.open("f", AccessMode::Read).unwrap();
        m.close("f", AccessMode::Read);
        m.close("f", AccessMode::Read);
        assert_eq!(m.stat("f").unwrap().version, 2);

        // No lock at all: upgrade refused.
        assert!(!m.try_upgrade("f"));
        // Writer lock: upgrade refused (already exclusive).
        m.open("f", AccessMode::Write).unwrap();
        assert!(!m.try_upgrade("f"));
        m.close("f", AccessMode::Write);
    }

    #[test]
    fn crashed_writer_lock_is_reclaimed_after_lease() {
        // Regression: a caller that opened for Write and then crashed
        // (never closed) used to wedge the file forever. With the epoch
        // lease the orphaned lock is reclaimed once it lags the lease.
        let mut m = MetadataServer::new();
        m.open("f", AccessMode::Write).unwrap();
        m.commit(meta("f", 1)).unwrap();
        // Caller crashes here: no close("f", Write).

        // Fresh writer in the same epoch: still blocked (lock is live).
        assert!(matches!(
            m.open("f", AccessMode::Write),
            Err(StoreError::LockConflict(_))
        ));
        m.begin_lock_epoch();
        assert!(matches!(
            m.open("f", AccessMode::Write),
            Err(StoreError::LockConflict(_))
        ));
        m.begin_lock_epoch();
        // Two epochs of silence: presumed crashed, reclaimed.
        m.open("f", AccessMode::Write).unwrap();
        assert_eq!(m.locks_reclaimed(), 1);
        let mut upd = meta("f", 1);
        upd.version = 2;
        m.commit(upd).unwrap();
        m.close("f", AccessMode::Write);
        assert_eq!(m.stat("f").unwrap().version, 2);
    }

    #[test]
    #[should_panic(expected = "downgrade without writer lock")]
    fn downgrade_without_writer_panics() {
        let mut m = MetadataServer::new();
        m.downgrade("f");
    }

    #[test]
    #[should_panic(expected = "unbalanced close")]
    fn unbalanced_close_panics() {
        let mut m = MetadataServer::new();
        m.close("f", AccessMode::Read);
    }
}
