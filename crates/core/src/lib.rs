#![warn(missing_docs)]

//! The RobuSTore distributed-filesystem framework (Chapter 4).
//!
//! This crate realises the system framework of Figure 4-3: **clients**
//! perform metadata access, layout planning, encoding/decoding, and
//! speculative access; a **metadata server** tracks data and
//! storage-server information and file locks; **storage servers** store
//! erasure-coded blocks behind per-server admission control.
//!
//! * [`client`] — the access interface of §4.3: `open` / `read` / `write`
//!   / `update` / `close`, with speculative access and request
//!   cancellation, over a pluggable [`backend::StorageBackend`].
//! * [`metadata`] — the metadata server: file metadata (location, coding
//!   algorithm and parameters, owner), storage-server registry, and
//!   reader/writer file locks.
//! * [`planner`] — the layout planner and access scheduler (§5.3): disk
//!   selection by load/space/availability, disk-count and redundancy
//!   sizing.
//! * [`admission`] — capacity-based admission control (§5.4).
//! * [`credentials`] — credential-chain access control (Appendix C).
//! * [`qos`] — the QoS options of the `open` call (Appendix B).
//! * [`backend`] — storage-server data plane; an in-memory implementation
//!   with per-disk speeds stands in for remote filers.
//! * [`sharded`] — the sharded submission layer: per-disk locks, routing
//!   by disk id, and group commit, so concurrent accesses to different
//!   disks proceed in parallel (the per-disk-queue regime of §5).
//! * [`ring`] — the async per-disk submission/completion ring: one worker
//!   per disk services queued ops, coalescing writes across accesses into
//!   one group-commit dispatch, and speculative reads are cancelled in
//!   the queue once decode succeeds (`SystemConfig::io_ring`).
//! * [`chaos`] — a fault-injecting backend wrapper driven by seeded
//!   write- and read-fault plans, for crash-consistency and
//!   degraded-read testing.
//! * [`integrity`] — CRC32C block checksums: every coded block is
//!   digested at write time and verified on every read, demoting silent
//!   corruption to a missing block the redundancy absorbs.
//! * [`scrub`] — background scrubbing: sweep files, verify every stored
//!   block, and restore each file to its full redundancy target.
//! * [`metastore`] — the durable metadata plane: the namespace
//!   hash-sharded across WAL-backed shards, each replicated with
//!   majority-quorum commits, crash recovery with torn-tail truncation
//!   and read-repair, and snapshot+compaction to bound replay
//!   (`SystemConfig::metastore`; the in-memory server remains the
//!   differential oracle).
//! * [`locks`] — reader/writer file locks with epoch-based stale-lock
//!   reclaim, shared by both metadata planes.
//! * [`repair`] — the prioritised, rate-limited repair service over the
//!   scrubber: a risk queue ordering files most-at-risk-first (weighted
//!   by disk health), a token-bucket MB/s budget on repair I/O, a
//!   background scheduling class on ring submissions, and load-aware
//!   re-placement.
//!
//! Everything is deterministic and synchronous: the crate models the
//! *control* architecture with real coding and real data movement, while
//! the timing behaviour of the architecture is quantified separately by
//! `robustore-schemes`.
//!
//! # Example: store and retrieve an object
//!
//! ```
//! use robustore_core::{
//!     AccessMode, Client, InMemoryBackend, QosOptions, System, SystemConfig,
//! };
//!
//! let system = System::new(
//!     InMemoryBackend::new((0..8).map(|i| 10e6 + i as f64 * 5e6).collect()),
//!     SystemConfig { block_bytes: 16 << 10, ..Default::default() },
//! );
//! let client = Client::connect(&system, system.register_user());
//!
//! let payload = vec![0xAB; 100_000];
//! let mut h = client.open(
//!     "demo",
//!     AccessMode::Write,
//!     QosOptions::best_effort().with_redundancy(3.0),
//! )?;
//! client.write(&mut h, &payload)?;
//! client.close(h)?;
//!
//! let h = client.open("demo", AccessMode::Read, QosOptions::best_effort())?;
//! assert_eq!(client.read(&h)?, payload);
//! client.close(h)?;
//! # Ok::<(), robustore_core::StoreError>(())
//! ```

pub mod admission;
pub mod backend;
pub mod chaos;
pub mod client;
pub mod credentials;
pub mod error;
pub mod file_backend;
pub mod integrity;
pub mod locks;
pub mod metadata;
pub mod metastore;
pub mod planner;
pub mod qos;
pub mod repair;
pub mod ring;
pub mod scrub;
pub mod sharded;

pub use admission::{AdmissionController, PriorityAdmissionController, PriorityDecision};
pub use backend::{DiskShard, InMemoryBackend, RefusedWrite, StorageBackend};
pub use chaos::{ChaosBackend, FaultSwitch};
pub use client::{
    default_encode_threads, default_group_commit, default_pipeline_depth, Client, FileHandle,
    ReadReport, ReadRetry, System, SystemConfig, UpdateReport, WriteReport,
};
pub use credentials::{Credential, CredentialChain, KeyAuthority, PublicKey, Rights};
pub use error::StoreError;
pub use file_backend::FileBackend;
pub use integrity::crc32c;
pub use locks::LockTable;
pub use metadata::{gen_key, AccessMode, CodingSpec, DiskInfo, FileMeta, MetadataServer};
pub use metastore::{MemReplica, MetaPlane, MetaShard, Metastore, MetastoreConfig, RecoveryReport};
pub use planner::{LayoutPlanner, ReadPolicy};
// The wave-policy vocabulary lives in `robustore-schemes` (pure
// bookkeeping, like the RRAID-A planner); re-exported here because
// `SystemConfig::read_policy` and `IoRing::load_map` speak it.
pub use qos::QosOptions;
pub use repair::{
    health_weight, RepairRunReport, RepairService, RiskEntry, ScrubOptions, ScrubTickReport,
    TokenBucket,
};
pub use ring::{Completion, CompletionKind, IoRing, Priority, RingConfig, SubmitOp, WriteOutcome};
pub use robustore_schemes::{AdaptiveReadPolicy, DiskLoad, DiskLoadMap, WaveSchedule, WaveSlot};
pub use scrub::{ScrubReport, Scrubber, SweepReport};
pub use sharded::ShardedBackend;
