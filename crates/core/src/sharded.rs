//! Sharded backend dispatch: per-disk locks and group commit.
//!
//! RobuSTore's premise is that erasure-coded accesses fan out over many
//! *independent* disks, so the client must not serialise them behind one
//! backend-wide lock. [`ShardedBackend`] is the submission layer that
//! makes the independence real: it splits a [`StorageBackend`] into
//! per-disk [`DiskShard`]s (via [`StorageBackend::try_shard`]), puts each
//! shard behind its own mutex, and routes every `write_block` /
//! `read_block_into` / `delete_block` by disk id. Two accesses touching
//! different disks — or different blocks of the same access — only
//! contend when they land on the same disk at the same instant, which is
//! exactly the per-disk-queue regime the paper's analysis models.
//!
//! Backends that cannot shard (`try_shard() == None`) fall back to
//! `Whole` mode: one mutex around the whole backend, taken per block
//! operation. That is also the configuration knob
//! (`SystemConfig::sharded = false`) the differential tests use as the
//! single-lock oracle — by construction both modes issue the identical
//! per-disk operation sequences, so committed state must match.
//!
//! Group commit rides on the same seam: [`ShardedBackend::commit_batch`]
//! hands a run of consecutive same-disk writes to the shard in one lock
//! acquisition ([`DiskShard::commit_batch`]), amortising the per-dispatch
//! cost (lock traffic here; a queue flush or fsync on a real filer). The
//! batch contract keeps failure semantics identical to unbatched writes:
//! entries are processed in order and the batch stops at the first hard
//! fault, so the commit protocol's rollback sees the same world either
//! way.

use parking_lot::Mutex;
use robustore_simkit::SeedSequence;

use crate::backend::{DiskShard, RefusedWrite, StorageBackend};
use crate::error::StoreError;

enum Mode {
    /// One mutex per disk; operations route by disk id.
    Sharded(Vec<Mutex<Box<dyn DiskShard>>>),
    /// Fallback: one mutex around the whole backend.
    Whole(Mutex<Box<dyn StorageBackend + Send>>),
}

/// The submission layer over a (possibly sharded) storage backend.
///
/// All methods take `&self`: locking is internal and per-operation, so
/// concurrent client accesses interleave at block granularity instead of
/// excluding each other for whole accesses. Per-disk nominal speeds are
/// cached at construction (they are static), so layout planning reads
/// them without touching any lock.
pub struct ShardedBackend {
    mode: Mode,
    speeds: Vec<f64>,
}

impl ShardedBackend {
    /// Wrap `backend`, sharding it when `sharded` is true and the backend
    /// supports it ([`StorageBackend::try_shard`]); otherwise the whole
    /// backend sits behind a single lock.
    pub fn new(mut backend: Box<dyn StorageBackend + Send>, sharded: bool) -> Self {
        let speeds: Vec<f64> = (0..backend.num_disks())
            .map(|d| backend.disk_speed(d))
            .collect();
        let mode = if sharded {
            match backend.try_shard() {
                Some(shards) => {
                    assert_eq!(shards.len(), speeds.len(), "one shard per disk");
                    Mode::Sharded(shards.into_iter().map(Mutex::new).collect())
                }
                None => Mode::Whole(Mutex::new(backend)),
            }
        } else {
            Mode::Whole(Mutex::new(backend))
        };
        ShardedBackend { mode, speeds }
    }

    /// Whether dispatch is per-disk (true) or behind one big lock.
    pub fn is_sharded(&self) -> bool {
        matches!(self.mode, Mode::Sharded(_))
    }

    /// Number of disks.
    pub fn num_disks(&self) -> usize {
        self.speeds.len()
    }

    /// Nominal bandwidth of a disk, bytes/second (lock-free: cached).
    pub fn disk_speed(&self, disk: usize) -> f64 {
        self.speeds[disk]
    }

    /// Store `data` as block `block` of disk `disk`.
    pub fn write_block(&self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        match &self.mode {
            Mode::Sharded(shards) => match shards.get(disk) {
                Some(shard) => shard.lock().write_block(block, data),
                None => Err(RefusedWrite::new(
                    StoreError::MissingBlock { disk, block },
                    data,
                )),
            },
            Mode::Whole(b) => b.lock().write_block(disk, block, data),
        }
    }

    /// Group commit: write a batch of consecutive same-disk blocks under
    /// one lock acquisition. Stops at the first hard fault (the result
    /// vector may be shorter than the batch); refusals are per-entry.
    pub fn commit_batch(
        &self,
        disk: usize,
        batch: Vec<(u64, Vec<u8>)>,
    ) -> Vec<Result<(), RefusedWrite>> {
        match &self.mode {
            Mode::Sharded(shards) => match shards.get(disk) {
                Some(shard) => shard.lock().commit_batch(batch),
                None => batch
                    .into_iter()
                    .map(|(block, data)| {
                        Err(RefusedWrite::new(
                            StoreError::MissingBlock { disk, block },
                            data,
                        ))
                    })
                    .collect(),
            },
            Mode::Whole(b) => b.lock().commit_batch(disk, batch),
        }
    }

    /// Fetch block `block` of disk `disk` into `buf`.
    pub fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        match &self.mode {
            Mode::Sharded(shards) => shards
                .get(disk)
                .ok_or(StoreError::MissingBlock { disk, block })?
                .lock()
                .read_block_into(block, buf),
            Mode::Whole(b) => b.lock().read_block_into(disk, block, buf),
        }
    }

    /// Fetch a block with the shared bounded-retry policy: transient
    /// faults retry up to `max_attempts` total attempts, calling
    /// `backoff(attempt)` before each retry (the caller supplies the
    /// sleep — plain exponential on the ring workers, seeded jitter on
    /// the blocking path, nothing during scrub). A successful read is
    /// counted against the disk here, so the retry accounting and the
    /// per-disk read counters cannot drift between the two paths.
    /// Returns the final result and the number of retries performed;
    /// exhausted retries surface the last `TransientIo` error.
    pub fn read_block_retry(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
        max_attempts: u32,
        mut backoff: impl FnMut(u32),
    ) -> (Result<(), StoreError>, u64) {
        let max_attempts = max_attempts.max(1);
        let mut attempt = 0u32;
        let mut retries = 0u64;
        let result = loop {
            match self.read_block_into(disk, block, buf) {
                Ok(()) => {
                    self.count_read(disk);
                    break Ok(());
                }
                Err(err @ StoreError::TransientIo { .. }) => {
                    attempt += 1;
                    if attempt >= max_attempts {
                        break Err(err);
                    }
                    retries += 1;
                    backoff(attempt);
                }
                Err(err) => break Err(err),
            }
        };
        (result, retries)
    }

    /// Presence probe: does `disk` currently hold a readable copy of
    /// `block`? Not a read — counters and injected-fault budgets are
    /// untouched (see [`DiskShard::has_block`]).
    pub fn has_block(&self, disk: usize, block: u64) -> bool {
        match &self.mode {
            Mode::Sharded(shards) => shards.get(disk).is_some_and(|s| s.lock().has_block(block)),
            Mode::Whole(b) => b.lock().has_block(disk, block),
        }
    }

    /// Remove a block.
    pub fn delete_block(&self, disk: usize, block: u64) -> Result<(), StoreError> {
        match &self.mode {
            Mode::Sharded(shards) => shards
                .get(disk)
                .ok_or(StoreError::MissingBlock { disk, block })?
                .lock()
                .delete_block(block),
            Mode::Whole(b) => b.lock().delete_block(disk, block),
        }
    }

    /// Bytes currently stored on a disk.
    pub fn disk_used(&self, disk: usize) -> u64 {
        match &self.mode {
            Mode::Sharded(shards) => shards.get(disk).map_or(0, |s| s.lock().used()),
            Mode::Whole(b) => b.lock().disk_used(disk),
        }
    }

    /// Account one block read on `disk`.
    pub fn count_read(&self, disk: usize) {
        match &self.mode {
            Mode::Sharded(shards) => {
                if let Some(shard) = shards.get(disk) {
                    shard.lock().count_read();
                }
            }
            Mode::Whole(b) => b.lock().count_read(),
        }
    }

    /// Blocks read so far, summed across disks.
    pub fn reads(&self) -> u64 {
        match &self.mode {
            Mode::Sharded(shards) => shards.iter().map(|s| s.lock().reads()).sum(),
            Mode::Whole(b) => b.lock().reads(),
        }
    }

    /// Blocks written so far, summed across disks.
    pub fn writes(&self) -> u64 {
        match &self.mode {
            Mode::Sharded(shards) => shards.iter().map(|s| s.lock().writes()).sum(),
            Mode::Whole(b) => b.lock().writes(),
        }
    }

    /// Failure injection: take a disk offline or bring it back.
    pub fn set_offline(&self, disk: usize, offline: bool) {
        match &self.mode {
            Mode::Sharded(shards) => {
                if let Some(shard) = shards.get(disk) {
                    shard.lock().set_offline(offline);
                }
            }
            Mode::Whole(b) => b.lock().set_offline(disk, offline),
        }
    }

    /// Fault injection: seeded random block loss on one disk.
    pub fn drop_random_blocks(&self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        match &self.mode {
            Mode::Sharded(shards) => shards
                .get(disk)
                .map_or_else(Vec::new, |s| s.lock().drop_random_blocks(fraction, seq)),
            Mode::Whole(b) => b.lock().drop_random_blocks(disk, fraction, seq),
        }
    }

    /// Fault injection: seeded at-rest bit rot on one disk.
    pub fn corrupt_random_blocks(
        &self,
        disk: usize,
        fraction: f64,
        seq: &SeedSequence,
    ) -> Vec<u64> {
        match &self.mode {
            Mode::Sharded(shards) => shards
                .get(disk)
                .map_or_else(Vec::new, |s| s.lock().corrupt_random_blocks(fraction, seq)),
            Mode::Whole(b) => b.lock().corrupt_random_blocks(disk, fraction, seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;

    fn sharded(n: usize) -> ShardedBackend {
        ShardedBackend::new(Box::new(InMemoryBackend::uniform(n, 10e6)), true)
    }

    fn whole(n: usize) -> ShardedBackend {
        ShardedBackend::new(Box::new(InMemoryBackend::uniform(n, 10e6)), false)
    }

    #[test]
    fn routes_by_disk_in_both_modes() {
        for b in [sharded(3), whole(3)] {
            b.write_block(0, 1, vec![1; 4]).unwrap();
            b.write_block(2, 9, vec![2; 8]).unwrap();
            let mut buf = Vec::new();
            b.read_block_into(2, 9, &mut buf).unwrap();
            assert_eq!(buf, vec![2; 8]);
            assert_eq!(b.disk_used(0), 4);
            assert_eq!(b.disk_used(1), 0);
            assert_eq!(b.disk_used(2), 8);
            assert_eq!(b.writes(), 2);
            b.delete_block(0, 1).unwrap();
            assert_eq!(b.disk_used(0), 0);
            assert!(matches!(
                b.read_block_into(0, 1, &mut buf),
                Err(StoreError::MissingBlock { .. })
            ));
        }
    }

    #[test]
    fn sharding_takes_when_supported() {
        assert!(sharded(2).is_sharded());
        assert!(!whole(2).is_sharded(), "sharded=false forces one lock");
        assert_eq!(sharded(4).num_disks(), 4);
        assert_eq!(sharded(2).disk_speed(1), 10e6);
    }

    #[test]
    fn invalid_disks_refuse_gracefully() {
        let b = sharded(1);
        assert!(b.write_block(7, 0, vec![0]).is_err());
        let mut buf = Vec::new();
        assert!(b.read_block_into(7, 0, &mut buf).is_err());
        assert!(b.delete_block(7, 0).is_err());
        assert_eq!(b.disk_used(7), 0);
        let results = b.commit_batch(7, vec![(0, vec![1]), (1, vec![2])]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_err()));
    }

    #[test]
    fn commit_batch_matches_sequential_writes() {
        for b in [sharded(2), whole(2)] {
            let results = b.commit_batch(1, vec![(10, vec![1; 3]), (11, vec![2; 5])]);
            assert_eq!(results.len(), 2);
            assert!(results.iter().all(|r| r.is_ok()));
            assert_eq!(b.disk_used(1), 8);
            let mut buf = Vec::new();
            b.read_block_into(1, 11, &mut buf).unwrap();
            assert_eq!(buf, vec![2; 5]);
        }
    }

    #[test]
    fn offline_shard_refuses_like_whole() {
        for b in [sharded(2), whole(2)] {
            b.set_offline(0, true);
            assert!(b.write_block(0, 1, vec![1]).is_err());
            b.write_block(1, 1, vec![1]).unwrap();
            b.set_offline(0, false);
            b.write_block(0, 1, vec![1]).unwrap();
        }
    }

    #[test]
    fn count_read_sums_across_shards() {
        let b = sharded(3);
        b.count_read(0);
        b.count_read(2);
        b.count_read(2);
        assert_eq!(b.reads(), 3);
    }

    #[test]
    fn seeded_faults_match_whole_backend() {
        // The shard forks the same per-disk rng streams as the unsharded
        // backend, so fault injection picks identical victims.
        let load = |b: &ShardedBackend| {
            for key in 0..64u64 {
                b.write_block(0, key, vec![key as u8; 16]).unwrap();
            }
        };
        let seq = SeedSequence::new(11);
        let (a, b) = (sharded(2), whole(2));
        load(&a);
        load(&b);
        assert_eq!(
            a.drop_random_blocks(0, 0.3, &seq),
            b.drop_random_blocks(0, 0.3, &seq)
        );
        assert_eq!(
            a.corrupt_random_blocks(0, 0.4, &seq),
            b.corrupt_random_blocks(0, 0.4, &seq)
        );
    }
}
