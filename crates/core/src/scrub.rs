//! Background scrubbing: proactive verification and redundancy repair.
//!
//! A read only heals the damage it happens to trip over; the scrubber
//! hunts. [`Scrubber::sweep`] walks every file the metadata server knows
//! about and runs [`crate::Client::scrub`] on each: read *all* stored
//! blocks (no early cancel), verify checksums, decode, re-encode whatever
//! is missing or corrupt, and re-place it on the least-loaded disks —
//! restoring each file to its full target of N coded blocks before latent
//! faults accumulate past the code's decodability margin.
//!
//! Scrubbing is also the upgrade path for legacy metadata: a file written
//! before checksums existed comes out of a scrub with a complete digest
//! map, so every later read verifies end to end.

use crate::client::Client;
use crate::error::StoreError;
use crate::repair::ScrubOptions;

/// What one per-file scrub pass found and fixed.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// File name.
    pub file: String,
    /// N — the coded-block count the file is restored towards.
    pub blocks_target: usize,
    /// Stored blocks that read back and passed their recorded checksum.
    pub blocks_verified: usize,
    /// Stored blocks that read back but had no recorded checksum (legacy
    /// metadata); audited against a re-encode and given digests.
    pub blocks_unverified: usize,
    /// Stored blocks whose bytes failed verification (silent corruption).
    pub blocks_corrupt: usize,
    /// Stored blocks that would not read back at all (lost sectors,
    /// offline disks, spent retry budgets).
    pub blocks_missing: usize,
    /// Blocks re-encoded from the decoded data and re-placed on disk.
    pub blocks_restored: usize,
    /// Blocks the committed layout stores after the pass (≤ target; less
    /// only when disks refused restore writes).
    pub blocks_stored_after: usize,
    /// Checksum entries the pass added to the file's metadata (legacy
    /// upgrade plus restored blocks).
    pub checksums_added: usize,
}

/// Sweeps a whole store, file by file.
pub struct Scrubber<'a> {
    client: &'a Client,
}

/// Result of a store-wide sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-file outcomes for files that scrubbed cleanly.
    pub scrubbed: Vec<ScrubReport>,
    /// Files the scrubber could not repair (typically: damage already
    /// past the code's decodability margin), with the error.
    pub failed: Vec<(String, StoreError)>,
    /// Files that vanished between the listing and their scrub (a
    /// concurrent delete) or were lock-busy under a concurrent writer.
    /// Transient conditions, not damage — they are *not* failures:
    /// retrying a ghost forever would wedge the sweep, and a busy file
    /// is simply revisited by the next sweep.
    pub skipped: Vec<String>,
}

impl SweepReport {
    /// Total blocks restored across the sweep.
    pub fn blocks_restored(&self) -> usize {
        self.scrubbed.iter().map(|r| r.blocks_restored).sum()
    }
}

impl<'a> Scrubber<'a> {
    /// A scrubber acting with `client`'s identity (it can only scrub
    /// files that identity may open for writing).
    pub fn new(client: &'a Client) -> Self {
        Scrubber { client }
    }

    /// Scrub every file in the store, continuing past per-file failures —
    /// one undecodable file must not stop the sweep from saving the rest.
    pub fn sweep(&self) -> SweepReport {
        self.sweep_with(&ScrubOptions::default())
    }

    /// [`Scrubber::sweep`] with repair-service controls (throttle,
    /// background class, load-aware placement) threaded into every
    /// per-file scrub.
    pub fn sweep_with(&self, opts: &ScrubOptions<'_>) -> SweepReport {
        self.sweep_names(&self.client.system().list_files(), opts)
    }

    /// Sweep a caller-chosen set of files (e.g. a repair service's risk
    /// queue). A file deleted between listing and scrub is recorded in
    /// [`SweepReport::skipped`], not treated as a failure.
    pub fn sweep_names(&self, names: &[String], opts: &ScrubOptions<'_>) -> SweepReport {
        let mut report = SweepReport::default();
        for name in names {
            match self.client.scrub_with(name, opts) {
                Ok(r) => report.scrubbed.push(r),
                Err(StoreError::NotFound(_)) | Err(StoreError::LockConflict(_)) => {
                    report.skipped.push(name.clone())
                }
                Err(e) => report.failed.push((name.clone(), e)),
            }
        }
        report
    }
}
