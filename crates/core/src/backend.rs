//! Storage-server data plane.
//!
//! The framework's clients speak to storage servers at block granularity
//! (§4.2: "Storage Servers provide data storage at block level"). The
//! [`StorageBackend`] trait abstracts that data plane; the in-memory
//! implementation stands in for the remote filers, with a per-disk
//! *speed* used to emulate the arrival order speculative reads exploit
//! and counters for the bytes a cancellation saves.

use std::collections::HashMap;

use robustore_simkit::rng::uniform01;
use robustore_simkit::SeedSequence;

use crate::error::StoreError;

/// A refused or failed block write: the error plus the owned payload,
/// handed back so the caller can redirect the *same bytes* to another
/// disk (the rateless routing of §4.1.1) without re-encoding, or recycle
/// the allocation. The buffer is only consumed by a write that succeeds.
#[derive(Debug)]
pub struct RefusedWrite {
    /// Why the write did not happen.
    pub error: StoreError,
    /// The unconsumed payload, exactly as submitted.
    pub data: Vec<u8>,
}

impl RefusedWrite {
    /// Bundle an error with the returned payload.
    pub fn new(error: StoreError, data: Vec<u8>) -> Self {
        RefusedWrite { error, data }
    }
}

impl From<RefusedWrite> for StoreError {
    fn from(r: RefusedWrite) -> Self {
        r.error
    }
}

/// One disk's slice of a sharded backend: the same block-level
/// operations as [`StorageBackend`], scoped to a single disk so every
/// shard can sit behind its own lock and accesses to *different* disks
/// proceed concurrently (see `crate::sharded::ShardedBackend`, which
/// routes by disk id).
///
/// A shard knows its global disk id ([`DiskShard::disk_id`]) so wrappers
/// keyed by disk — fault switches, shared counters — keep working after
/// the split.
pub trait DiskShard: Send {
    /// The global disk id this shard serves.
    fn disk_id(&self) -> usize;

    /// Store `data` under key `block`. On failure the buffer comes back
    /// inside [`RefusedWrite`], exactly as in
    /// [`StorageBackend::write_block`].
    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite>;

    /// Group commit: write `batch` in submission order under one dispatch
    /// (one lock acquisition, one simulated queue flush), returning one
    /// result per processed entry.
    ///
    /// The default loops [`DiskShard::write_block`] and **stops at the
    /// first hard fault** (any error other than the refusal shape
    /// [`StoreError::MissingBlock`]), so the returned vector may be
    /// shorter than the batch — unprocessed tail entries were never
    /// attempted, exactly as if they had been submitted one at a time
    /// after an aborting fault. Refusals are per-entry and do not stop
    /// the batch.
    fn commit_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Result<(), RefusedWrite>> {
        let mut out = Vec::with_capacity(batch.len());
        for (block, data) in batch {
            let result = self.write_block(block, data);
            let hard =
                matches!(&result, Err(rw) if !matches!(rw.error, StoreError::MissingBlock { .. }));
            out.push(result);
            if hard {
                break;
            }
        }
        out
    }

    /// Fetch block `block` into a caller-provided buffer.
    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError>;

    /// Presence probe: does this shard currently hold a readable copy of
    /// `block`? Cheap risk assessment for the repair service — it must
    /// not count as a read or consume injected-fault budgets (fault
    /// wrappers delegate straight to the wrapped store). The default
    /// attempts a full read into scratch, which is correct but not cheap;
    /// stores with an index should override it.
    fn has_block(&self, block: u64) -> bool {
        let mut scratch = Vec::new();
        self.read_block_into(block, &mut scratch).is_ok()
    }

    /// Remove a block.
    fn delete_block(&mut self, block: u64) -> Result<(), StoreError>;

    /// Nominal bandwidth, bytes/second.
    fn speed(&self) -> f64;

    /// Bytes currently stored.
    fn used(&self) -> u64;

    /// Account one block read (mirrors [`StorageBackend::count_read`]).
    fn count_read(&mut self) {}

    /// Blocks read through this shard so far.
    fn reads(&self) -> u64 {
        0
    }

    /// Blocks written through this shard so far.
    fn writes(&self) -> u64 {
        0
    }

    /// Failure injection: take the disk offline or bring it back.
    fn set_offline(&mut self, _offline: bool) {}

    /// Fault injection: lose stored blocks with probability `fraction`
    /// (see [`StorageBackend::drop_random_blocks`]; same seeded streams,
    /// so a sharded backend loses the same victims as an unsharded one).
    fn drop_random_blocks(&mut self, _fraction: f64, _seq: &SeedSequence) -> Vec<u64> {
        Vec::new()
    }

    /// Fault injection: flip one byte in stored blocks with probability
    /// `fraction` (see [`StorageBackend::corrupt_random_blocks`]).
    fn corrupt_random_blocks(&mut self, _fraction: f64, _seq: &SeedSequence) -> Vec<u64> {
        Vec::new()
    }
}

/// Block-granular storage under the client.
pub trait StorageBackend {
    /// Number of disks in the system.
    fn num_disks(&self) -> usize;

    /// Store `data` as block `block` of disk `disk`. On failure the
    /// buffer comes back inside [`RefusedWrite`] — ownership transfers to
    /// the backend only on success.
    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite>;

    /// Fetch block `block` of disk `disk`.
    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError>;

    /// Fetch block `block` of disk `disk` into a caller-provided buffer
    /// (e.g. one recycled from a `BlockPool`), avoiding a fresh
    /// allocation per read. The buffer is resized to the block's length.
    /// The default delegates to [`StorageBackend::read_block`]; backends
    /// that can copy in place should override it.
    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        *buf = self.read_block(disk, block)?;
        Ok(())
    }

    /// Group commit: write `batch` to `disk` in submission order under
    /// one dispatch. Same contract as [`DiskShard::commit_batch`]: the
    /// default loops [`StorageBackend::write_block`] and stops at the
    /// first hard (non-refusal) fault, so the result vector may be
    /// shorter than the batch.
    fn commit_batch(
        &mut self,
        disk: usize,
        batch: Vec<(u64, Vec<u8>)>,
    ) -> Vec<Result<(), RefusedWrite>> {
        let mut out = Vec::with_capacity(batch.len());
        for (block, data) in batch {
            let result = self.write_block(disk, block, data);
            let hard =
                matches!(&result, Err(rw) if !matches!(rw.error, StoreError::MissingBlock { .. }));
            out.push(result);
            if hard {
                break;
            }
        }
        out
    }

    /// Split this backend into independent per-disk shards, consuming its
    /// guts: each [`DiskShard`] owns one disk's state and can be locked
    /// separately, so accesses touching different disks stop serialising
    /// on one big lock. Returns `None` when the backend cannot shard (the
    /// system then falls back to a single lock around the whole backend).
    /// After a successful split the husk must not be used for I/O.
    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        None
    }

    /// Presence probe: same contract as [`DiskShard::has_block`], scoped
    /// by disk id.
    fn has_block(&self, disk: usize, block: u64) -> bool {
        let mut scratch = Vec::new();
        self.read_block_into(disk, block, &mut scratch).is_ok()
    }

    /// Remove a block (updates delete obsolete coded blocks, §4.3.4).
    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError>;

    /// Nominal bandwidth of a disk, bytes/second — what the metadata
    /// server reports as "expected performance".
    fn disk_speed(&self, disk: usize) -> f64;

    /// Bytes currently stored on a disk.
    fn disk_used(&self, disk: usize) -> u64;

    /// Account one block read (reads go through `&self`, so the client
    /// reports them explicitly).
    fn count_read(&mut self) {}

    /// Blocks read so far (speculative-access accounting).
    fn reads(&self) -> u64 {
        0
    }

    /// Blocks written so far.
    fn writes(&self) -> u64 {
        0
    }

    /// Failure injection: take a disk offline or bring it back. Backends
    /// without failure support may ignore this.
    fn set_offline(&mut self, _disk: usize, _offline: bool) {}

    /// Fault injection: silently lose each stored block of `disk` with
    /// probability `fraction` (latent sector errors rather than a whole
    /// outage), deterministically from `seq`. Returns the lost block
    /// keys; backends without loss support lose nothing.
    fn drop_random_blocks(
        &mut self,
        _disk: usize,
        _fraction: f64,
        _seq: &SeedSequence,
    ) -> Vec<u64> {
        Vec::new()
    }

    /// Fault injection: silently flip one byte in each stored block of
    /// `disk` with probability `fraction` (at-rest bit rot — the block
    /// still reads, but with wrong bytes only checksum verification can
    /// catch), deterministically from `seq`. Returns the corrupted block
    /// keys in ascending order; backends without corruption support
    /// corrupt nothing.
    fn corrupt_random_blocks(
        &mut self,
        _disk: usize,
        _fraction: f64,
        _seq: &SeedSequence,
    ) -> Vec<u64> {
        Vec::new()
    }
}

/// In-memory backend: one block map per disk plus a nominal speed.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    disks: Vec<DiskStore>,
    /// Blocks read (speculative access may read more than needed).
    reads: u64,
    /// Blocks written.
    writes: u64,
}

#[derive(Debug, Default)]
struct DiskStore {
    blocks: HashMap<u64, Vec<u8>>,
    speed: f64,
    used: u64,
    offline: bool,
}

impl DiskStore {
    /// `disk` is the store's global id — used only for error values and
    /// the seeded fault streams, so shard and whole-backend behaviour
    /// stay bit-identical.
    fn write(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        if self.offline {
            return Err(RefusedWrite::new(
                StoreError::MissingBlock { disk, block },
                data,
            ));
        }
        self.used += data.len() as u64;
        if let Some(old) = self.blocks.insert(block, data) {
            self.used -= old.len() as u64;
        }
        Ok(())
    }

    fn has(&self, block: u64) -> bool {
        !self.offline && self.blocks.contains_key(&block)
    }

    fn read_into(&self, disk: usize, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        let data = if self.offline {
            None
        } else {
            self.blocks.get(&block)
        }
        .ok_or(StoreError::MissingBlock { disk, block })?;
        buf.clear();
        buf.extend_from_slice(data);
        Ok(())
    }

    fn delete(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        match self.blocks.remove(&block) {
            Some(old) => {
                self.used -= old.len() as u64;
                Ok(())
            }
            None => Err(StoreError::MissingBlock { disk, block }),
        }
    }

    fn drop_random(&mut self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in 0..=1");
        let mut rng = seq.fork("block-loss", disk as u64);
        let mut keys: Vec<u64> = self.blocks.keys().copied().collect();
        keys.sort_unstable(); // HashMap order is not deterministic; draws must be
        let mut lost = Vec::new();
        for key in keys {
            if uniform01(&mut rng) < fraction {
                let data = self.blocks.remove(&key).expect("key just listed");
                self.used -= data.len() as u64;
                lost.push(key);
            }
        }
        lost
    }

    fn corrupt_random(&mut self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in 0..=1");
        let mut rng = seq.fork("bit-rot", disk as u64);
        let mut keys: Vec<u64> = self.blocks.keys().copied().collect();
        keys.sort_unstable();
        let mut rotted = Vec::new();
        for key in keys {
            if uniform01(&mut rng) < fraction {
                let data = self.blocks.get_mut(&key).expect("key just listed");
                if !data.is_empty() {
                    let pos = (uniform01(&mut rng) * data.len() as f64) as usize;
                    let last = data.len() - 1;
                    data[pos.min(last)] ^= 0x40;
                    rotted.push(key);
                }
            }
        }
        rotted
    }
}

/// One in-memory disk split out of an [`InMemoryBackend`] by
/// [`StorageBackend::try_shard`].
#[derive(Debug)]
struct InMemoryShard {
    disk: usize,
    store: DiskStore,
    reads: u64,
    writes: u64,
}

impl DiskShard for InMemoryShard {
    fn disk_id(&self) -> usize {
        self.disk
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.store.write(self.disk, block, data)?;
        self.writes += 1;
        Ok(())
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        self.store.read_into(self.disk, block, buf)
    }

    fn has_block(&self, block: u64) -> bool {
        self.store.has(block)
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        self.store.delete(self.disk, block)
    }

    fn speed(&self) -> f64 {
        self.store.speed
    }

    fn used(&self) -> u64 {
        self.store.used
    }

    fn count_read(&mut self) {
        self.reads += 1;
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    fn set_offline(&mut self, offline: bool) {
        self.store.offline = offline;
    }

    fn drop_random_blocks(&mut self, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.store.drop_random(self.disk, fraction, seq)
    }

    fn corrupt_random_blocks(&mut self, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.store.corrupt_random(self.disk, fraction, seq)
    }
}

impl InMemoryBackend {
    /// A backend with the given per-disk nominal speeds (bytes/second).
    pub fn new(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "need at least one disk");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        InMemoryBackend {
            disks: speeds
                .into_iter()
                .map(|speed| DiskStore {
                    blocks: HashMap::new(),
                    speed,
                    used: 0,
                    offline: false,
                })
                .collect(),
            reads: 0,
            writes: 0,
        }
    }

    /// A uniform backend of `n` disks at `speed` bytes/second.
    pub fn uniform(n: usize, speed: f64) -> Self {
        InMemoryBackend::new(vec![speed; n])
    }

    /// Whether a disk is currently offline.
    pub fn is_offline(&self, disk: usize) -> bool {
        self.disks.get(disk).is_some_and(|d| d.offline)
    }
}

impl StorageBackend for InMemoryBackend {
    fn num_disks(&self) -> usize {
        self.disks.len()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        let Some(d) = self.disks.get_mut(disk) else {
            return Err(RefusedWrite::new(
                StoreError::MissingBlock { disk, block },
                data,
            ));
        };
        d.write(disk, block, data)?;
        self.writes += 1;
        Ok(())
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        let mut buf = Vec::new();
        self.read_block_into(disk, block, &mut buf)?;
        Ok(buf)
    }

    /// Copies into `buf` in place — no allocation when its capacity
    /// already covers the block (the pooled-buffer fast path).
    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        self.disks
            .get(disk)
            .ok_or(StoreError::MissingBlock { disk, block })?
            .read_into(disk, block, buf)
    }

    fn has_block(&self, disk: usize, block: u64) -> bool {
        self.disks.get(disk).is_some_and(|d| d.has(block))
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.disks
            .get_mut(disk)
            .ok_or(StoreError::MissingBlock { disk, block })?
            .delete(disk, block)
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        Some(
            self.disks
                .drain(..)
                .enumerate()
                .map(|(disk, store)| {
                    Box::new(InMemoryShard {
                        disk,
                        store,
                        reads: 0,
                        writes: 0,
                    }) as Box<dyn DiskShard>
                })
                .collect(),
        )
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.disks[disk].speed
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.disks[disk].used
    }

    fn count_read(&mut self) {
        self.reads += 1;
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    /// Stored blocks survive an outage; only I/O is refused.
    fn set_offline(&mut self, disk: usize, offline: bool) {
        self.disks[disk].offline = offline;
    }

    /// Reads of a lost block report [`StoreError::MissingBlock`], which
    /// the client's degraded-read path skips over. The victims depend
    /// only on the disk's contents, `fraction`, and `seq` (drawn from
    /// the dedicated `"block-loss"` stream); lost keys come back in
    /// ascending order.
    fn drop_random_blocks(&mut self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.disks[disk].drop_random(disk, fraction, seq)
    }

    /// Bit rot: victims keep their length and keep reading successfully,
    /// but one byte is flipped — indistinguishable from a good block
    /// without the stored checksum. Victims depend only on the disk's
    /// contents, `fraction`, and `seq` (dedicated `"bit-rot"` stream).
    fn corrupt_random_blocks(
        &mut self,
        disk: usize,
        fraction: f64,
        seq: &SeedSequence,
    ) -> Vec<u64> {
        self.disks[disk].corrupt_random(disk, fraction, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_roundtrip() {
        let mut b = InMemoryBackend::uniform(2, 10e6);
        b.write_block(0, 7, vec![1, 2, 3]).unwrap();
        assert_eq!(b.read_block(0, 7).unwrap(), vec![1, 2, 3]);
        assert_eq!(b.disk_used(0), 3);
        b.delete_block(0, 7).unwrap();
        assert!(matches!(
            b.read_block(0, 7),
            Err(StoreError::MissingBlock { .. })
        ));
        assert_eq!(b.disk_used(0), 0);
    }

    #[test]
    fn overwrite_adjusts_usage() {
        let mut b = InMemoryBackend::uniform(1, 10e6);
        b.write_block(0, 1, vec![0; 100]).unwrap();
        b.write_block(0, 1, vec![0; 40]).unwrap();
        assert_eq!(b.disk_used(0), 40);
        assert_eq!(b.writes(), 2);
    }

    #[test]
    fn read_into_reuses_capacity() {
        let mut b = InMemoryBackend::uniform(1, 10e6);
        b.write_block(0, 3, vec![9, 8, 7]).unwrap();
        let mut buf = Vec::with_capacity(16);
        let ptr = buf.as_ptr();
        b.read_block_into(0, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![9, 8, 7]);
        assert_eq!(buf.as_ptr(), ptr, "capacity sufficed; no reallocation");
        assert!(matches!(
            b.read_block_into(0, 99, &mut buf),
            Err(StoreError::MissingBlock { .. })
        ));
    }

    #[test]
    fn invalid_disk_errors() {
        let mut b = InMemoryBackend::uniform(1, 10e6);
        assert!(b.write_block(5, 0, vec![]).is_err());
        assert!(b.read_block(5, 0).is_err());
        assert!(b.delete_block(0, 99).is_err());
    }

    #[test]
    fn speeds_vary() {
        let b = InMemoryBackend::new(vec![1e6, 50e6]);
        assert_eq!(b.disk_speed(0), 1e6);
        assert_eq!(b.disk_speed(1), 50e6);
        assert_eq!(b.num_disks(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        InMemoryBackend::new(vec![0.0]);
    }

    fn loaded_backend() -> InMemoryBackend {
        let mut b = InMemoryBackend::uniform(2, 10e6);
        for key in 0..64 {
            b.write_block(0, key, vec![key as u8; 16]).unwrap();
        }
        b
    }

    #[test]
    fn block_loss_is_deterministic() {
        let seq = SeedSequence::new(11);
        let lost_a = loaded_backend().drop_random_blocks(0, 0.3, &seq);
        let lost_b = loaded_backend().drop_random_blocks(0, 0.3, &seq);
        assert_eq!(lost_a, lost_b);
        assert!(!lost_a.is_empty() && lost_a.len() < 64, "p=0.3 over 64");
        assert!(lost_a.windows(2).all(|w| w[0] < w[1]), "ascending keys");
        let other_seed = loaded_backend().drop_random_blocks(0, 0.3, &SeedSequence::new(12));
        assert_ne!(lost_a, other_seed);
    }

    #[test]
    fn lost_blocks_read_as_missing_and_free_space() {
        let mut b = loaded_backend();
        let used_before = b.disk_used(0);
        let lost = b.drop_random_blocks(0, 0.5, &SeedSequence::new(7));
        assert_eq!(b.disk_used(0), used_before - 16 * lost.len() as u64);
        for &key in &lost {
            assert!(matches!(
                b.read_block(0, key),
                Err(StoreError::MissingBlock { .. })
            ));
        }
        // Untouched disk and fraction edge cases.
        assert!(b
            .drop_random_blocks(1, 0.5, &SeedSequence::new(7))
            .is_empty());
        assert!(loaded_backend()
            .drop_random_blocks(0, 0.0, &SeedSequence::new(7))
            .is_empty());
        assert_eq!(
            loaded_backend()
                .drop_random_blocks(0, 1.0, &SeedSequence::new(7))
                .len(),
            64
        );
    }

    #[test]
    fn bit_rot_is_deterministic_and_silent() {
        let seq = SeedSequence::new(21);
        let rot_a = loaded_backend().corrupt_random_blocks(0, 0.3, &seq);
        let rot_b = loaded_backend().corrupt_random_blocks(0, 0.3, &seq);
        assert_eq!(rot_a, rot_b);
        assert!(!rot_a.is_empty() && rot_a.len() < 64);
        assert!(rot_a.windows(2).all(|w| w[0] < w[1]), "ascending keys");

        let mut b = loaded_backend();
        let used_before = b.disk_used(0);
        let rotted = b.corrupt_random_blocks(0, 0.3, &seq);
        // Silent: same usage, same length, reads still succeed — but the
        // bytes differ from the originals.
        assert_eq!(b.disk_used(0), used_before);
        for &key in &rotted {
            let data = b.read_block(0, key).unwrap();
            assert_eq!(data.len(), 16);
            assert_ne!(data, vec![key as u8; 16], "block {key} not corrupted");
        }
        // Non-victims are untouched.
        for key in (0..64).filter(|k| !rotted.contains(k)) {
            assert_eq!(b.read_block(0, key).unwrap(), vec![key as u8; 16]);
        }
        assert_ne!(
            rot_a,
            loaded_backend().corrupt_random_blocks(0, 0.3, &SeedSequence::new(22))
        );
    }
}
