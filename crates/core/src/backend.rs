//! Storage-server data plane.
//!
//! The framework's clients speak to storage servers at block granularity
//! (§4.2: "Storage Servers provide data storage at block level"). The
//! [`StorageBackend`] trait abstracts that data plane; the in-memory
//! implementation stands in for the remote filers, with a per-disk
//! *speed* used to emulate the arrival order speculative reads exploit
//! and counters for the bytes a cancellation saves.

use std::collections::HashMap;

use robustore_simkit::rng::uniform01;
use robustore_simkit::SeedSequence;

use crate::error::StoreError;

/// A refused or failed block write: the error plus the owned payload,
/// handed back so the caller can redirect the *same bytes* to another
/// disk (the rateless routing of §4.1.1) without re-encoding, or recycle
/// the allocation. The buffer is only consumed by a write that succeeds.
#[derive(Debug)]
pub struct RefusedWrite {
    /// Why the write did not happen.
    pub error: StoreError,
    /// The unconsumed payload, exactly as submitted.
    pub data: Vec<u8>,
}

impl RefusedWrite {
    /// Bundle an error with the returned payload.
    pub fn new(error: StoreError, data: Vec<u8>) -> Self {
        RefusedWrite { error, data }
    }
}

impl From<RefusedWrite> for StoreError {
    fn from(r: RefusedWrite) -> Self {
        r.error
    }
}

/// Block-granular storage under the client.
pub trait StorageBackend {
    /// Number of disks in the system.
    fn num_disks(&self) -> usize;

    /// Store `data` as block `block` of disk `disk`. On failure the
    /// buffer comes back inside [`RefusedWrite`] — ownership transfers to
    /// the backend only on success.
    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite>;

    /// Fetch block `block` of disk `disk`.
    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError>;

    /// Fetch block `block` of disk `disk` into a caller-provided buffer
    /// (e.g. one recycled from a `BlockPool`), avoiding a fresh
    /// allocation per read. The buffer is resized to the block's length.
    /// The default delegates to [`StorageBackend::read_block`]; backends
    /// that can copy in place should override it.
    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        *buf = self.read_block(disk, block)?;
        Ok(())
    }

    /// Remove a block (updates delete obsolete coded blocks, §4.3.4).
    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError>;

    /// Nominal bandwidth of a disk, bytes/second — what the metadata
    /// server reports as "expected performance".
    fn disk_speed(&self, disk: usize) -> f64;

    /// Bytes currently stored on a disk.
    fn disk_used(&self, disk: usize) -> u64;

    /// Account one block read (reads go through `&self`, so the client
    /// reports them explicitly).
    fn count_read(&mut self) {}

    /// Blocks read so far (speculative-access accounting).
    fn reads(&self) -> u64 {
        0
    }

    /// Blocks written so far.
    fn writes(&self) -> u64 {
        0
    }

    /// Failure injection: take a disk offline or bring it back. Backends
    /// without failure support may ignore this.
    fn set_offline(&mut self, _disk: usize, _offline: bool) {}

    /// Fault injection: silently lose each stored block of `disk` with
    /// probability `fraction` (latent sector errors rather than a whole
    /// outage), deterministically from `seq`. Returns the lost block
    /// keys; backends without loss support lose nothing.
    fn drop_random_blocks(
        &mut self,
        _disk: usize,
        _fraction: f64,
        _seq: &SeedSequence,
    ) -> Vec<u64> {
        Vec::new()
    }

    /// Fault injection: silently flip one byte in each stored block of
    /// `disk` with probability `fraction` (at-rest bit rot — the block
    /// still reads, but with wrong bytes only checksum verification can
    /// catch), deterministically from `seq`. Returns the corrupted block
    /// keys in ascending order; backends without corruption support
    /// corrupt nothing.
    fn corrupt_random_blocks(
        &mut self,
        _disk: usize,
        _fraction: f64,
        _seq: &SeedSequence,
    ) -> Vec<u64> {
        Vec::new()
    }
}

/// In-memory backend: one block map per disk plus a nominal speed.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    disks: Vec<DiskStore>,
    /// Blocks read (speculative access may read more than needed).
    reads: u64,
    /// Blocks written.
    writes: u64,
}

#[derive(Debug, Default)]
struct DiskStore {
    blocks: HashMap<u64, Vec<u8>>,
    speed: f64,
    used: u64,
    offline: bool,
}

impl InMemoryBackend {
    /// A backend with the given per-disk nominal speeds (bytes/second).
    pub fn new(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "need at least one disk");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        InMemoryBackend {
            disks: speeds
                .into_iter()
                .map(|speed| DiskStore {
                    blocks: HashMap::new(),
                    speed,
                    used: 0,
                    offline: false,
                })
                .collect(),
            reads: 0,
            writes: 0,
        }
    }

    /// A uniform backend of `n` disks at `speed` bytes/second.
    pub fn uniform(n: usize, speed: f64) -> Self {
        InMemoryBackend::new(vec![speed; n])
    }

    /// Whether a disk is currently offline.
    pub fn is_offline(&self, disk: usize) -> bool {
        self.disks.get(disk).is_some_and(|d| d.offline)
    }
}

impl StorageBackend for InMemoryBackend {
    fn num_disks(&self) -> usize {
        self.disks.len()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        let Some(d) = self.disks.get_mut(disk) else {
            return Err(RefusedWrite::new(
                StoreError::MissingBlock { disk, block },
                data,
            ));
        };
        if d.offline {
            return Err(RefusedWrite::new(
                StoreError::MissingBlock { disk, block },
                data,
            ));
        }
        d.used += data.len() as u64;
        if let Some(old) = d.blocks.insert(block, data) {
            d.used -= old.len() as u64;
        }
        self.writes += 1;
        Ok(())
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        self.disks
            .get(disk)
            .filter(|d| !d.offline)
            .and_then(|d| d.blocks.get(&block))
            .cloned()
            .ok_or(StoreError::MissingBlock { disk, block })
    }

    /// Copies into `buf` in place — no allocation when its capacity
    /// already covers the block (the pooled-buffer fast path).
    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let data = self
            .disks
            .get(disk)
            .filter(|d| !d.offline)
            .and_then(|d| d.blocks.get(&block))
            .ok_or(StoreError::MissingBlock { disk, block })?;
        buf.clear();
        buf.extend_from_slice(data);
        Ok(())
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        let d = self
            .disks
            .get_mut(disk)
            .ok_or(StoreError::MissingBlock { disk, block })?;
        match d.blocks.remove(&block) {
            Some(old) => {
                d.used -= old.len() as u64;
                Ok(())
            }
            None => Err(StoreError::MissingBlock { disk, block }),
        }
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.disks[disk].speed
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.disks[disk].used
    }

    fn count_read(&mut self) {
        self.reads += 1;
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    /// Stored blocks survive an outage; only I/O is refused.
    fn set_offline(&mut self, disk: usize, offline: bool) {
        self.disks[disk].offline = offline;
    }

    /// Reads of a lost block report [`StoreError::MissingBlock`], which
    /// the client's degraded-read path skips over. The victims depend
    /// only on the disk's contents, `fraction`, and `seq` (drawn from
    /// the dedicated `"block-loss"` stream); lost keys come back in
    /// ascending order.
    fn drop_random_blocks(&mut self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in 0..=1");
        let d = &mut self.disks[disk];
        let mut rng = seq.fork("block-loss", disk as u64);
        let mut keys: Vec<u64> = d.blocks.keys().copied().collect();
        keys.sort_unstable(); // HashMap order is not deterministic; draws must be
        let mut lost = Vec::new();
        for key in keys {
            if uniform01(&mut rng) < fraction {
                let data = d.blocks.remove(&key).expect("key just listed");
                d.used -= data.len() as u64;
                lost.push(key);
            }
        }
        lost
    }

    /// Bit rot: victims keep their length and keep reading successfully,
    /// but one byte is flipped — indistinguishable from a good block
    /// without the stored checksum. Victims depend only on the disk's
    /// contents, `fraction`, and `seq` (dedicated `"bit-rot"` stream).
    fn corrupt_random_blocks(
        &mut self,
        disk: usize,
        fraction: f64,
        seq: &SeedSequence,
    ) -> Vec<u64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in 0..=1");
        let d = &mut self.disks[disk];
        let mut rng = seq.fork("bit-rot", disk as u64);
        let mut keys: Vec<u64> = d.blocks.keys().copied().collect();
        keys.sort_unstable();
        let mut rotted = Vec::new();
        for key in keys {
            if uniform01(&mut rng) < fraction {
                let data = d.blocks.get_mut(&key).expect("key just listed");
                if !data.is_empty() {
                    let pos = (uniform01(&mut rng) * data.len() as f64) as usize;
                    let last = data.len() - 1;
                    data[pos.min(last)] ^= 0x40;
                    rotted.push(key);
                }
            }
        }
        rotted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_roundtrip() {
        let mut b = InMemoryBackend::uniform(2, 10e6);
        b.write_block(0, 7, vec![1, 2, 3]).unwrap();
        assert_eq!(b.read_block(0, 7).unwrap(), vec![1, 2, 3]);
        assert_eq!(b.disk_used(0), 3);
        b.delete_block(0, 7).unwrap();
        assert!(matches!(
            b.read_block(0, 7),
            Err(StoreError::MissingBlock { .. })
        ));
        assert_eq!(b.disk_used(0), 0);
    }

    #[test]
    fn overwrite_adjusts_usage() {
        let mut b = InMemoryBackend::uniform(1, 10e6);
        b.write_block(0, 1, vec![0; 100]).unwrap();
        b.write_block(0, 1, vec![0; 40]).unwrap();
        assert_eq!(b.disk_used(0), 40);
        assert_eq!(b.writes(), 2);
    }

    #[test]
    fn read_into_reuses_capacity() {
        let mut b = InMemoryBackend::uniform(1, 10e6);
        b.write_block(0, 3, vec![9, 8, 7]).unwrap();
        let mut buf = Vec::with_capacity(16);
        let ptr = buf.as_ptr();
        b.read_block_into(0, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![9, 8, 7]);
        assert_eq!(buf.as_ptr(), ptr, "capacity sufficed; no reallocation");
        assert!(matches!(
            b.read_block_into(0, 99, &mut buf),
            Err(StoreError::MissingBlock { .. })
        ));
    }

    #[test]
    fn invalid_disk_errors() {
        let mut b = InMemoryBackend::uniform(1, 10e6);
        assert!(b.write_block(5, 0, vec![]).is_err());
        assert!(b.read_block(5, 0).is_err());
        assert!(b.delete_block(0, 99).is_err());
    }

    #[test]
    fn speeds_vary() {
        let b = InMemoryBackend::new(vec![1e6, 50e6]);
        assert_eq!(b.disk_speed(0), 1e6);
        assert_eq!(b.disk_speed(1), 50e6);
        assert_eq!(b.num_disks(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        InMemoryBackend::new(vec![0.0]);
    }

    fn loaded_backend() -> InMemoryBackend {
        let mut b = InMemoryBackend::uniform(2, 10e6);
        for key in 0..64 {
            b.write_block(0, key, vec![key as u8; 16]).unwrap();
        }
        b
    }

    #[test]
    fn block_loss_is_deterministic() {
        let seq = SeedSequence::new(11);
        let lost_a = loaded_backend().drop_random_blocks(0, 0.3, &seq);
        let lost_b = loaded_backend().drop_random_blocks(0, 0.3, &seq);
        assert_eq!(lost_a, lost_b);
        assert!(!lost_a.is_empty() && lost_a.len() < 64, "p=0.3 over 64");
        assert!(lost_a.windows(2).all(|w| w[0] < w[1]), "ascending keys");
        let other_seed = loaded_backend().drop_random_blocks(0, 0.3, &SeedSequence::new(12));
        assert_ne!(lost_a, other_seed);
    }

    #[test]
    fn lost_blocks_read_as_missing_and_free_space() {
        let mut b = loaded_backend();
        let used_before = b.disk_used(0);
        let lost = b.drop_random_blocks(0, 0.5, &SeedSequence::new(7));
        assert_eq!(b.disk_used(0), used_before - 16 * lost.len() as u64);
        for &key in &lost {
            assert!(matches!(
                b.read_block(0, key),
                Err(StoreError::MissingBlock { .. })
            ));
        }
        // Untouched disk and fraction edge cases.
        assert!(b
            .drop_random_blocks(1, 0.5, &SeedSequence::new(7))
            .is_empty());
        assert!(loaded_backend()
            .drop_random_blocks(0, 0.0, &SeedSequence::new(7))
            .is_empty());
        assert_eq!(
            loaded_backend()
                .drop_random_blocks(0, 1.0, &SeedSequence::new(7))
                .len(),
            64
        );
    }

    #[test]
    fn bit_rot_is_deterministic_and_silent() {
        let seq = SeedSequence::new(21);
        let rot_a = loaded_backend().corrupt_random_blocks(0, 0.3, &seq);
        let rot_b = loaded_backend().corrupt_random_blocks(0, 0.3, &seq);
        assert_eq!(rot_a, rot_b);
        assert!(!rot_a.is_empty() && rot_a.len() < 64);
        assert!(rot_a.windows(2).all(|w| w[0] < w[1]), "ascending keys");

        let mut b = loaded_backend();
        let used_before = b.disk_used(0);
        let rotted = b.corrupt_random_blocks(0, 0.3, &seq);
        // Silent: same usage, same length, reads still succeed — but the
        // bytes differ from the originals.
        assert_eq!(b.disk_used(0), used_before);
        for &key in &rotted {
            let data = b.read_block(0, key).unwrap();
            assert_eq!(data.len(), 16);
            assert_ne!(data, vec![key as u8; 16], "block {key} not corrupted");
        }
        // Non-victims are untouched.
        for key in (0..64).filter(|k| !rotted.contains(k)) {
            assert_eq!(b.read_block(0, key).unwrap(), vec![key as u8; 16]);
        }
        assert_ne!(
            rot_a,
            loaded_backend().corrupt_random_blocks(0, 0.3, &SeedSequence::new(22))
        );
    }
}
