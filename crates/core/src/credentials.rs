//! Credential-chain access control (Appendix C).
//!
//! In a federated multi-domain system, centralised ACLs do not scale; the
//! paper's Appendix C describes a capability mechanism where the resource
//! owner issues a signed credential to a user, who can further delegate by
//! appending a link — the two-level chain of Figure C-1. Verification
//! needs no third party: each link's authorizer must be the previous
//! link's licensee, every signature must verify, and the effective rights
//! are the intersection of all links' conditions.
//!
//! **Substitution note:** real deployments sign with PKI. No cryptography
//! crates are available offline, so signatures here are keyed tags issued
//! and checked by a [`KeyAuthority`] that plays the role of the key
//! infrastructure. The *chain structure and checking logic* — what
//! Appendix C actually specifies — is implemented faithfully.

use std::collections::HashMap;

/// An identity's public key (opaque handle in this model).
pub type PublicKey = u64;

/// Access rights, combinable: `Rights::R | Rights::W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rights(u8);

impl Rights {
    /// Read.
    pub const R: Rights = Rights(0b001);
    /// Write.
    pub const W: Rights = Rights(0b010);
    /// Execute.
    pub const X: Rights = Rights(0b100);
    /// All rights ("RWX" in the Appendix C example credentials).
    pub const RWX: Rights = Rights(0b111);
    /// No rights.
    pub const NONE: Rights = Rights(0);

    /// Whether all of `needed` are granted.
    pub fn allows(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Intersection of two grants.
    pub fn intersect(self, other: Rights) -> Rights {
        Rights(self.0 & other.0)
    }
}

impl std::ops::BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

/// The conditions of one credential link (the Appendix C fields:
/// app_domain, HANDLE, rights, validity window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conditions {
    /// Application domain ("RobuSTore" in the examples).
    pub app_domain: String,
    /// Resource handle the credential covers.
    pub handle: u64,
    /// Granted rights.
    pub rights: Rights,
    /// Validity window in logical time, inclusive.
    pub valid_from: u64,
    /// End of validity window, inclusive.
    pub valid_until: u64,
}

/// One signed delegation link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Who grants.
    pub authorizer: PublicKey,
    /// Who receives the capability.
    pub licensee: PublicKey,
    /// What is granted, on what, for how long.
    pub conditions: Conditions,
    /// Authorizer's signature over (authorizer, licensee, conditions).
    pub signature: u64,
}

/// A delegation chain, root first.
#[derive(Debug, Clone, Default)]
pub struct CredentialChain(pub Vec<Credential>);

fn fnv(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc ^ 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn credential_digest(authorizer: PublicKey, licensee: PublicKey, c: &Conditions) -> u64 {
    let mut h = fnv(0, &authorizer.to_le_bytes());
    h = fnv(h, &licensee.to_le_bytes());
    h = fnv(h, c.app_domain.as_bytes());
    h = fnv(h, &c.handle.to_le_bytes());
    h = fnv(h, &[c.rights.0]);
    h = fnv(h, &c.valid_from.to_le_bytes());
    h = fnv(h, &c.valid_until.to_le_bytes());
    h
}

/// Key registry standing in for the PKI: generates keypairs, signs, and
/// verifies.
#[derive(Debug, Default)]
pub struct KeyAuthority {
    secrets: HashMap<PublicKey, u64>,
    next: u64,
}

impl KeyAuthority {
    /// Empty authority.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generate a keypair and return the public half.
    pub fn generate(&mut self) -> PublicKey {
        self.next += 1;
        let secret = self
            .next
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ 0xA5A5_5A5A_DEAD_BEEF;
        let public = fnv(0, &secret.to_le_bytes());
        self.secrets.insert(public, secret);
        public
    }

    /// Issue a signed credential from `authorizer` (whose secret must be
    /// known to this authority) to `licensee`.
    pub fn issue(
        &self,
        authorizer: PublicKey,
        licensee: PublicKey,
        conditions: Conditions,
    ) -> Result<Credential, String> {
        let secret = self
            .secrets
            .get(&authorizer)
            .ok_or_else(|| "unknown authorizer key".to_string())?;
        let digest = credential_digest(authorizer, licensee, &conditions);
        let signature = fnv(digest, &secret.to_le_bytes());
        Ok(Credential {
            authorizer,
            licensee,
            conditions,
            signature,
        })
    }

    /// Verify one credential's signature.
    pub fn verify(&self, cred: &Credential) -> bool {
        match self.secrets.get(&cred.authorizer) {
            Some(secret) => {
                let digest = credential_digest(cred.authorizer, cred.licensee, &cred.conditions);
                fnv(digest, &secret.to_le_bytes()) == cred.signature
            }
            None => false,
        }
    }

    /// Validate a full chain: rooted at `root`, ending at `requester`,
    /// every signature good, links properly nested, and the intersected
    /// conditions granting `needed` on `handle` in `domain` at `now`.
    #[allow(clippy::too_many_arguments)]
    pub fn validate_chain(
        &self,
        chain: &CredentialChain,
        root: PublicKey,
        requester: PublicKey,
        needed: Rights,
        handle: u64,
        domain: &str,
        now: u64,
    ) -> Result<(), String> {
        let links = &chain.0;
        if links.is_empty() {
            return Err("empty credential chain".into());
        }
        if links[0].authorizer != root {
            return Err("chain not rooted at the resource owner".into());
        }
        if links.last().expect("non-empty").licensee != requester {
            return Err("chain does not end at the requester".into());
        }
        let mut effective = Rights::RWX;
        let mut prev_licensee = None;
        for (i, link) in links.iter().enumerate() {
            if !self.verify(link) {
                return Err(format!("bad signature on link {i}"));
            }
            if let Some(prev) = prev_licensee {
                if link.authorizer != prev {
                    return Err(format!("link {i} not authorized by previous licensee"));
                }
            }
            let c = &link.conditions;
            if c.app_domain != domain {
                return Err(format!("link {i} is for domain {:?}", c.app_domain));
            }
            if c.handle != handle {
                return Err(format!("link {i} covers a different handle"));
            }
            if now < c.valid_from || now > c.valid_until {
                return Err(format!("link {i} expired or not yet valid"));
            }
            effective = effective.intersect(c.rights);
            prev_licensee = Some(link.licensee);
        }
        if !effective.allows(needed) {
            return Err("chain does not grant the required rights".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conds(rights: Rights) -> Conditions {
        Conditions {
            app_domain: "RobuSTore".into(),
            handle: 666_240,
            rights,
            valid_from: 0,
            valid_until: 1_000,
        }
    }

    /// The two-level chain of Figure C-1: admin → Alice → Bob.
    fn two_level() -> (
        KeyAuthority,
        PublicKey,
        PublicKey,
        PublicKey,
        CredentialChain,
    ) {
        let mut ka = KeyAuthority::new();
        let admin = ka.generate();
        let alice = ka.generate();
        let bob = ka.generate();
        let l1 = ka.issue(admin, alice, conds(Rights::RWX)).unwrap();
        let l2 = ka.issue(alice, bob, conds(Rights::R | Rights::W)).unwrap();
        (ka, admin, alice, bob, CredentialChain(vec![l1, l2]))
    }

    #[test]
    fn valid_two_level_chain() {
        let (ka, admin, _alice, bob, chain) = two_level();
        ka.validate_chain(&chain, admin, bob, Rights::R, 666_240, "RobuSTore", 500)
            .unwrap();
        ka.validate_chain(&chain, admin, bob, Rights::W, 666_240, "RobuSTore", 500)
            .unwrap();
    }

    #[test]
    fn rights_intersect_across_links() {
        // Alice delegated only R|W, so X is not available to Bob even
        // though the root link grants RWX.
        let (ka, admin, _alice, bob, chain) = two_level();
        assert!(ka
            .validate_chain(&chain, admin, bob, Rights::X, 666_240, "RobuSTore", 500)
            .is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let (ka, admin, _alice, bob, mut chain) = two_level();
        chain.0[1].conditions.rights = Rights::RWX; // escalate without re-signing
        assert!(ka
            .validate_chain(&chain, admin, bob, Rights::X, 666_240, "RobuSTore", 500)
            .is_err());
    }

    #[test]
    fn wrong_root_or_requester_rejected() {
        let (ka, _admin, alice, bob, chain) = two_level();
        assert!(ka
            .validate_chain(&chain, alice, bob, Rights::R, 666_240, "RobuSTore", 500)
            .is_err());
        assert!(ka
            .validate_chain(&chain, _admin, alice, Rights::R, 666_240, "RobuSTore", 500)
            .is_err());
    }

    #[test]
    fn broken_delegation_link_rejected() {
        let mut ka = KeyAuthority::new();
        let admin = ka.generate();
        let alice = ka.generate();
        let bob = ka.generate();
        let carol = ka.generate();
        let l1 = ka.issue(admin, alice, conds(Rights::RWX)).unwrap();
        // Carol, not Alice, signs the second link.
        let l2 = ka.issue(carol, bob, conds(Rights::R)).unwrap();
        let chain = CredentialChain(vec![l1, l2]);
        assert!(ka
            .validate_chain(&chain, admin, bob, Rights::R, 666_240, "RobuSTore", 500)
            .is_err());
    }

    #[test]
    fn expiry_and_domain_and_handle_checked() {
        let (ka, admin, _alice, bob, chain) = two_level();
        assert!(ka
            .validate_chain(&chain, admin, bob, Rights::R, 666_240, "RobuSTore", 2_000)
            .is_err());
        assert!(ka
            .validate_chain(&chain, admin, bob, Rights::R, 666_240, "OtherApp", 500)
            .is_err());
        assert!(ka
            .validate_chain(&chain, admin, bob, Rights::R, 1, "RobuSTore", 500)
            .is_err());
    }

    #[test]
    fn empty_chain_rejected() {
        let ka = KeyAuthority::new();
        assert!(ka
            .validate_chain(&CredentialChain::default(), 1, 2, Rights::R, 0, "d", 0)
            .is_err());
    }

    #[test]
    fn rights_algebra() {
        let rw = Rights::R | Rights::W;
        assert!(rw.allows(Rights::R));
        assert!(!rw.allows(Rights::X));
        assert_eq!(rw.intersect(Rights::W | Rights::X), Rights::W);
        assert!(Rights::RWX.allows(rw));
        assert!(!Rights::NONE.allows(Rights::R));
    }
}
