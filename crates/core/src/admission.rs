//! Capacity-based admission control (§5.4).
//!
//! Each storage server grants access through an admission controller:
//! "with CAC, new flows are indiscriminately admitted until capacity is
//! exhausted (First Come First Admitted). New flows are not admitted until
//! capacity is available." Capacity here is concurrent large accesses —
//! the paper's point is that interleaving many large streams on one
//! rotating disk destroys total throughput, so the controller bounds
//! concurrency rather than bytes.

use std::collections::HashSet;

/// First-come-first-admitted controller for one storage server.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    capacity: usize,
    active: HashSet<u64>,
    admitted_total: u64,
    refused_total: u64,
}

impl AdmissionController {
    /// A controller admitting at most `capacity` concurrent accesses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        AdmissionController {
            capacity,
            active: HashSet::new(),
            admitted_total: 0,
            refused_total: 0,
        }
    }

    /// Request admission for `access`. Idempotent for an already-admitted
    /// access. Returns whether the access may proceed.
    pub fn request(&mut self, access: u64) -> bool {
        if self.active.contains(&access) {
            return true;
        }
        if self.active.len() < self.capacity {
            self.active.insert(access);
            self.admitted_total += 1;
            true
        } else {
            self.refused_total += 1;
            false
        }
    }

    /// Release a previously admitted access; `false` if it was not active.
    pub fn release(&mut self, access: u64) -> bool {
        self.active.remove(&access)
    }

    /// Currently admitted accesses.
    pub fn in_use(&self) -> usize {
        self.active.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime admissions.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Lifetime refusals.
    pub fn refused_total(&self) -> u64 {
        self.refused_total
    }

    /// Load estimate in [0, 1] for the metadata server's registry.
    pub fn load(&self) -> f64 {
        self.active.len() as f64 / self.capacity as f64
    }
}

/// Outcome of a priority-based admission request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityDecision {
    /// Admitted into a free slot.
    Admitted,
    /// Admitted by preempting the listed lower-priority accesses; the
    /// caller must abort or re-queue them.
    AdmittedWithPreemption(Vec<u64>),
    /// Refused: full, and nothing active has lower priority.
    Refused,
}

/// Priority-based admission control — the PAC alternative §5.4 describes
/// and defers to future work: "priority-based admission control allows
/// some requests to preempt others based on priority settings".
///
/// Higher numeric priority wins. A new request preempts the lowest-
/// priority active access if (and only if) that access has *strictly*
/// lower priority; ties behave like CAC (first come, first admitted).
#[derive(Debug, Clone)]
pub struct PriorityAdmissionController {
    capacity: usize,
    active: std::collections::HashMap<u64, u8>,
    admitted_total: u64,
    refused_total: u64,
    preempted_total: u64,
}

impl PriorityAdmissionController {
    /// A controller admitting at most `capacity` concurrent accesses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        PriorityAdmissionController {
            capacity,
            active: std::collections::HashMap::new(),
            admitted_total: 0,
            refused_total: 0,
            preempted_total: 0,
        }
    }

    /// Request admission at `priority`. Idempotent for active accesses
    /// (the stored priority is kept).
    pub fn request(&mut self, access: u64, priority: u8) -> PriorityDecision {
        if self.active.contains_key(&access) {
            return PriorityDecision::Admitted;
        }
        if self.active.len() < self.capacity {
            self.active.insert(access, priority);
            self.admitted_total += 1;
            return PriorityDecision::Admitted;
        }
        // Find the lowest-priority victim strictly below the newcomer.
        let victim = self
            .active
            .iter()
            .filter(|(_, &p)| p < priority)
            .min_by_key(|(id, &p)| (p, **id))
            .map(|(&id, _)| id);
        match victim {
            Some(v) => {
                self.active.remove(&v);
                self.active.insert(access, priority);
                self.admitted_total += 1;
                self.preempted_total += 1;
                PriorityDecision::AdmittedWithPreemption(vec![v])
            }
            None => {
                self.refused_total += 1;
                PriorityDecision::Refused
            }
        }
    }

    /// Release an active access; `false` if it was not active (possibly
    /// already preempted).
    pub fn release(&mut self, access: u64) -> bool {
        self.active.remove(&access).is_some()
    }

    /// Currently admitted accesses.
    pub fn in_use(&self) -> usize {
        self.active.len()
    }

    /// Lifetime preemptions performed.
    pub fn preempted_total(&self) -> u64 {
        self.preempted_total
    }

    /// Lifetime refusals.
    pub fn refused_total(&self) -> u64 {
        self.refused_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_capacity() {
        let mut a = AdmissionController::new(2);
        assert!(a.request(1));
        assert!(a.request(2));
        assert!(!a.request(3), "capacity exhausted");
        assert_eq!(a.in_use(), 2);
        assert_eq!(a.refused_total(), 1);
    }

    #[test]
    fn release_frees_a_slot_fcfa() {
        let mut a = AdmissionController::new(1);
        assert!(a.request(1));
        assert!(!a.request(2));
        assert!(a.release(1));
        assert!(a.request(2), "slot reusable after release");
        assert!(!a.release(1), "double release is a no-op");
    }

    #[test]
    fn request_is_idempotent() {
        let mut a = AdmissionController::new(1);
        assert!(a.request(7));
        assert!(a.request(7));
        assert_eq!(a.in_use(), 1);
        assert_eq!(a.admitted_total(), 1);
    }

    #[test]
    fn load_reflects_occupancy() {
        let mut a = AdmissionController::new(4);
        a.request(1);
        a.request(2);
        assert!((a.load() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        AdmissionController::new(0);
    }

    #[test]
    fn priority_preempts_strictly_lower() {
        let mut a = PriorityAdmissionController::new(2);
        assert_eq!(a.request(1, 1), PriorityDecision::Admitted);
        assert_eq!(a.request(2, 3), PriorityDecision::Admitted);
        // Full. Priority 5 preempts the lowest (access 1, priority 1).
        assert_eq!(
            a.request(3, 5),
            PriorityDecision::AdmittedWithPreemption(vec![1])
        );
        assert_eq!(a.in_use(), 2);
        assert_eq!(a.preempted_total(), 1);
        // Equal priority does not preempt.
        assert_eq!(a.request(4, 3), PriorityDecision::Refused);
        // Lower priority is refused outright.
        assert_eq!(a.request(5, 1), PriorityDecision::Refused);
        assert_eq!(a.refused_total(), 2);
    }

    #[test]
    fn priority_victim_is_the_lowest() {
        let mut a = PriorityAdmissionController::new(3);
        a.request(10, 4);
        a.request(11, 2);
        a.request(12, 6);
        assert_eq!(
            a.request(13, 7),
            PriorityDecision::AdmittedWithPreemption(vec![11])
        );
    }

    #[test]
    fn priority_release_and_idempotence() {
        let mut a = PriorityAdmissionController::new(1);
        assert_eq!(a.request(1, 2), PriorityDecision::Admitted);
        assert_eq!(a.request(1, 2), PriorityDecision::Admitted, "idempotent");
        assert!(a.release(1));
        assert!(!a.release(1));
        assert_eq!(a.request(2, 0), PriorityDecision::Admitted);
    }

    #[test]
    fn preempted_access_cannot_release() {
        let mut a = PriorityAdmissionController::new(1);
        a.request(1, 1);
        assert_eq!(
            a.request(2, 9),
            PriorityDecision::AdmittedWithPreemption(vec![1])
        );
        assert!(!a.release(1), "victim already evicted");
        assert!(a.release(2));
    }
}
