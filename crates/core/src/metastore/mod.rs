//! The durable, replicated metadata plane.
//!
//! The paper's erasure-coded data path survives disk loss, corruption,
//! and decay, but the seed architecture kept every [`FileMeta`] in one
//! in-memory map — a process crash lost the entire namespace. This
//! module is the durable trunk: the namespace is **hash-sharded** by
//! file-name key across [`MetaShard`]s, each shard is an append-only
//! **write-ahead log** of CRC32C-framed records replicated across R
//! devices with **majority-quorum** acknowledgement on commit, and
//! recovery replays the log (truncating torn tails), elects the
//! longest-prefix replica, and **read-repairs** the rest. Periodic
//! snapshot+compaction bounds replay time; a chunked durable file-id
//! floor makes allocation crash-safe. See [`shard`] for the quorum and
//! recovery rules, [`wal`] for framing and replica devices, [`record`]
//! for the record codec.
//!
//! [`Metastore`] fronts the shards with the same open/commit/close
//! surface as the in-memory [`MetadataServer`], which stays available
//! behind [`MetaPlane`] as the differential oracle
//! (`SystemConfig::metastore: None`). File locks are volatile by
//! design — recovery reclaims them all conservatively (a pre-crash
//! handle's commits are refused anyway) — and the disk registry is
//! volatile with logged usage hints.

pub mod record;
pub mod shard;
pub mod wal;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use crate::error::StoreError;
use crate::locks::LockTable;
use crate::metadata::{AccessMode, DiskInfo, FileMeta, MetadataServer};

use record::MetaRecord;
pub use shard::{MetaShard, RecoveryReport};
pub use wal::{FileReplica, MemReplica, ReplicaStore};

/// File ids are made durable in chunks of this size: one `IdFloor`
/// record burns the next chunk, so a crash can never reissue an id
/// whose orphaned blocks may still sit on a backend disk.
pub const ID_CHUNK: u64 = 1024;

/// Configuration of the durable metadata plane.
#[derive(Debug, Clone, PartialEq)]
pub struct MetastoreConfig {
    /// Number of namespace shards (hash of the file name selects one).
    pub shards: usize,
    /// Replicas per shard; commits need a majority of acks.
    pub replicas: usize,
    /// Baseline records between snapshots; the effective trigger is
    /// `max(snapshot_every, shard image size)` so compaction amortises
    /// to O(1) per record at any namespace size.
    pub snapshot_every: usize,
    /// Root directory for file-backed replicas
    /// (`<dir>/shard-<s>/replica-<r>/`). `None` keeps replicas in
    /// memory — still quorum-replicated and chaos-injectable, the
    /// default for tests and simulation.
    pub dir: Option<PathBuf>,
    /// Stale-lock lease length in epochs (see [`crate::locks`]).
    pub lock_lease_epochs: u64,
}

impl Default for MetastoreConfig {
    fn default() -> Self {
        MetastoreConfig {
            shards: 8,
            replicas: 3,
            snapshot_every: 1024,
            dir: None,
            lock_lease_epochs: crate::locks::DEFAULT_LOCK_LEASE_EPOCHS,
        }
    }
}

/// FNV-1a over the file name; stable across runs so a name always lands
/// on the same shard.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The durable metadata plane: sharded, WAL-backed, quorum-replicated.
pub struct Metastore {
    config: MetastoreConfig,
    shards: Vec<MetaShard>,
    /// Chaos handles onto the in-memory replica devices, indexed
    /// `[shard][replica]`. Empty when file-backed.
    mem_replicas: Vec<Vec<MemReplica>>,
    disks: Vec<DiskInfo>,
    locks: LockTable,
    /// Last issued file id (volatile cursor; the durable floor is ahead
    /// of it).
    next_file_id: u64,
    /// Ids `<= id_floor` are durably burned.
    id_floor: u64,
}

impl Metastore {
    /// Stand up the plane and run initial recovery (a boot over
    /// existing durable replicas loads their state; fresh replicas
    /// recover to empty).
    pub fn new(config: MetastoreConfig) -> Result<Self, StoreError> {
        let shards_n = config.shards.max(1);
        let replicas_n = config.replicas.max(1);
        let mut shards = Vec::with_capacity(shards_n);
        let mut mem_replicas = Vec::new();
        for s in 0..shards_n {
            let mut stores: Vec<Arc<dyn ReplicaStore>> = Vec::with_capacity(replicas_n);
            match &config.dir {
                Some(dir) => {
                    for r in 0..replicas_n {
                        let path = dir.join(format!("shard-{s}")).join(format!("replica-{r}"));
                        stores.push(Arc::new(FileReplica::open(path)?));
                    }
                }
                None => {
                    let mems: Vec<MemReplica> = (0..replicas_n)
                        .map(|r| MemReplica::new(format!("shard-{s}/replica-{r}")))
                        .collect();
                    stores.extend(
                        mems.iter()
                            .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>),
                    );
                    mem_replicas.push(mems);
                }
            }
            shards.push(MetaShard::new(s, stores, config.snapshot_every));
        }
        let mut locks = LockTable::new();
        locks.set_lease_epochs(config.lock_lease_epochs);
        let mut store = Metastore {
            config,
            shards,
            mem_replicas,
            disks: Vec::new(),
            locks,
            next_file_id: 0,
            id_floor: 0,
        };
        store.recover()?;
        Ok(store)
    }

    /// The configuration this plane was built with.
    pub fn config(&self) -> &MetastoreConfig {
        &self.config
    }

    /// Which shard owns `name`.
    pub fn shard_of(&self, name: &str) -> usize {
        (name_hash(name) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replicas per shard.
    pub fn replica_count(&self) -> usize {
        self.config.replicas.max(1)
    }

    /// Chaos handle onto an in-memory replica device (`None` when
    /// file-backed or out of range). Tests use this to take replicas
    /// down, tear appends, and rot log tails.
    pub fn mem_replica(&self, shard: usize, replica: usize) -> Option<&MemReplica> {
        self.mem_replicas.get(shard)?.get(replica)
    }

    /// Register a storage server/disk. The registry is volatile —
    /// servers re-register when they join after a restart — but usage
    /// updates are logged as hints (see [`Metastore::update_disk`]).
    pub fn register_disk(&mut self, info: DiskInfo) {
        assert_eq!(info.id, self.disks.len(), "register disks in id order");
        self.disks.push(info);
    }

    /// Current disk registry snapshot.
    pub fn disks(&self) -> &[DiskInfo] {
        &self.disks
    }

    /// Update dynamic information for a disk. The registry update is
    /// authoritative; a `DiskUpdate` record is logged **best-effort**
    /// (spread across shards by disk id) so recovery can re-seed usage
    /// without a full backend survey — losing the hint must never fail
    /// a data write that already committed.
    pub fn update_disk(&mut self, id: usize, used_bytes: u64, load: f64) {
        let d = &mut self.disks[id];
        d.used_bytes = used_bytes;
        d.load = load.clamp(0.0, 1.0);
        let s = id % self.shards.len();
        let _ = self.shards[s].commit_record(MetaRecord::DiskUpdate {
            id,
            used_bytes,
            load: load.clamp(0.0, 1.0),
        });
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        let s = self.shard_of(name);
        self.shards[s].image().contains_key(name)
    }

    /// Acquire the lock for `mode` and return the file's metadata
    /// (`None` for a write to a new file). Stale locks from crashed
    /// holders are reclaimed (see [`crate::locks`]).
    pub fn open(&mut self, name: &str, mode: AccessMode) -> Result<Option<FileMeta>, StoreError> {
        let s = self.shard_of(name);
        if mode == AccessMode::Read && !self.shards[s].image().contains_key(name) {
            return Err(StoreError::NotFound(name.to_string()));
        }
        self.locks.acquire(name, mode)?;
        Ok(self.shards[s].image().get(name).cloned())
    }

    /// Release the lock taken by [`Metastore::open`].
    pub fn close(&mut self, name: &str, mode: AccessMode) {
        self.locks.release(name, mode);
    }

    /// Advance the stale-lock reclaim epoch.
    pub fn begin_lock_epoch(&mut self) -> u64 {
        self.locks.begin_epoch()
    }

    /// Locks reclaimed from presumed-crashed holders so far (recovery's
    /// conservative clear counts).
    pub fn locks_reclaimed(&self) -> u64 {
        self.locks.reclaimed()
    }

    /// Try to upgrade a sole-reader lock to the writer lock
    /// (read-repair's commit window).
    pub fn try_upgrade(&mut self, name: &str) -> bool {
        self.locks.try_upgrade(name)
    }

    /// Downgrade the writer lock back to a single reader.
    pub fn downgrade(&mut self, name: &str) {
        self.locks.downgrade(name)
    }

    /// Raise the durable id floor to at least `floor` (one `IdFloor`
    /// record on shard 0).
    fn ensure_id_floor(&mut self, floor: u64) -> Result<(), StoreError> {
        if floor <= self.id_floor {
            return Ok(());
        }
        self.shards[0].commit_record(MetaRecord::IdFloor(floor))?;
        self.id_floor = floor;
        Ok(())
    }

    /// Allocate a file id for a new file. Ids are burned durably in
    /// [`ID_CHUNK`]-sized chunks: at most one log record per chunk, and
    /// a crash-recovered plane resumes past the whole burned chunk —
    /// an id handed to a writer that crashed pre-commit is never
    /// reissued (its orphaned blocks can be swept, not collided with).
    pub fn allocate_file_id(&mut self) -> Result<u64, StoreError> {
        if self.next_file_id + 1 > self.id_floor {
            self.ensure_id_floor(self.next_file_id + ID_CHUNK)?;
        }
        self.next_file_id += 1;
        Ok(self.next_file_id)
    }

    /// Commit metadata after a write/update: requires the writer lock,
    /// then appends one atomic `Commit` record under quorum. On
    /// [`StoreError::MetaQuorumLost`] the namespace is unchanged and
    /// the caller's write is not committed.
    pub fn commit(&mut self, meta: FileMeta) -> Result<(), StoreError> {
        if !self.locks.holds_writer(&meta.name) {
            return Err(StoreError::StaleHandle);
        }
        let s = self.shard_of(&meta.name);
        self.shards[s].commit_record(MetaRecord::Commit(meta))
    }

    /// Remove a file (requires the writer lock); one `Remove` record
    /// under quorum.
    pub fn remove(&mut self, name: &str) -> Result<FileMeta, StoreError> {
        if !self.locks.holds_writer(name) {
            return Err(StoreError::StaleHandle);
        }
        let s = self.shard_of(name);
        let old = self.shards[s]
            .image()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        self.shards[s].commit_record(MetaRecord::Remove(name.to_string()))?;
        Ok(old)
    }

    /// Look up without locking (status queries).
    pub fn stat(&self, name: &str) -> Option<&FileMeta> {
        let s = self.shard_of(name);
        self.shards[s].image().get(name)
    }

    /// All known file names, sorted (directory listing across shards).
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.image().keys().cloned())
            .collect();
        names.sort();
        names
    }

    /// Bootstrap: insert metadata restored from external storage (e.g.
    /// sidecar files), bypassing locks, and keep the durable id floor
    /// ahead of the restored id.
    pub fn restore(&mut self, meta: FileMeta) -> Result<(), StoreError> {
        self.next_file_id = self.next_file_id.max(meta.file_id);
        if meta.file_id > self.id_floor {
            self.ensure_id_floor(meta.file_id + ID_CHUNK)?;
        }
        let s = self.shard_of(&meta.name);
        self.shards[s].commit_record(MetaRecord::Commit(meta))
    }

    /// Rebuild every shard from its replicas: replay logs (torn tails
    /// truncated), elect winners, read-repair laggards; clear all locks
    /// conservatively and resume id allocation past the durable floor.
    /// This is both the boot path and the crash-recovery path — callers
    /// simulate a crash by discarding the in-memory plane and calling
    /// this on a fresh one over the same replicas.
    pub fn recover(&mut self) -> Result<Vec<RecoveryReport>, StoreError> {
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            reports.push(shard.recover()?);
        }
        self.locks.clear();
        // Resume allocation past the durable floor, and past any
        // restored id the floor might predate (belt and braces).
        let max_file_id = self
            .shards
            .iter()
            .flat_map(|s| s.image().values().map(|m| m.file_id))
            .max()
            .unwrap_or(0);
        self.id_floor = self.shards.iter().map(|s| s.id_floor()).max().unwrap_or(0);
        self.next_file_id = self.id_floor.max(max_file_id);
        // Re-seed the volatile disk registry from logged hints.
        let mut hints: HashMap<usize, (u64, f64)> = HashMap::new();
        for shard in &self.shards {
            for (&id, &hint) in shard.disk_updates() {
                hints.insert(id, hint);
            }
        }
        for d in &mut self.disks {
            if let Some(&(used, load)) = hints.get(&d.id) {
                d.used_bytes = used;
                d.load = load.clamp(0.0, 1.0);
            }
        }
        Ok(reports)
    }

    /// Simulate a process crash: drop every piece of volatile state
    /// (images, locks, id cursor) and recover from the replicas alone.
    /// Returns the per-shard recovery reports.
    pub fn crash_and_recover(&mut self) -> Result<Vec<RecoveryReport>, StoreError> {
        let snapshot_every = self.config.snapshot_every;
        let replicas: Vec<Vec<Arc<dyn ReplicaStore>>> = match &self.config.dir {
            Some(dir) => {
                let mut all = Vec::with_capacity(self.shards.len());
                for s in 0..self.shards.len() {
                    let mut stores: Vec<Arc<dyn ReplicaStore>> = Vec::new();
                    for r in 0..self.replica_count() {
                        let path = dir.join(format!("shard-{s}")).join(format!("replica-{r}"));
                        stores.push(Arc::new(FileReplica::open(path)?));
                    }
                    all.push(stores);
                }
                all
            }
            None => self
                .mem_replicas
                .iter()
                .map(|mems| {
                    mems.iter()
                        .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                        .collect()
                })
                .collect(),
        };
        self.shards = replicas
            .into_iter()
            .enumerate()
            .map(|(s, stores)| MetaShard::new(s, stores, snapshot_every))
            .collect();
        self.next_file_id = 0;
        self.id_floor = 0;
        self.recover()
    }

    /// Force snapshot+compaction on every shard (tests and maintenance
    /// windows).
    pub fn compact_all(&mut self) {
        for shard in &mut self.shards {
            shard.compact();
        }
    }

    /// Total files across all shard images.
    pub fn file_count(&self) -> usize {
        self.shards.iter().map(|s| s.image().len()).sum()
    }
}

/// The metadata plane behind `System`: the durable [`Metastore`]
/// (default) or the in-memory [`MetadataServer`] kept as the
/// differential oracle. Both expose the same lock/commit surface;
/// dispatch is a plain match so call sites read identically.
pub enum MetaPlane {
    /// In-memory oracle plane (`SystemConfig::metastore: None`).
    Memory(MetadataServer),
    /// Durable WAL-backed plane.
    Durable(Box<Metastore>),
}

impl MetaPlane {
    /// Register a storage server/disk.
    pub fn register_disk(&mut self, info: DiskInfo) {
        match self {
            MetaPlane::Memory(m) => m.register_disk(info),
            MetaPlane::Durable(m) => m.register_disk(info),
        }
    }

    /// Current disk registry snapshot.
    pub fn disks(&self) -> &[DiskInfo] {
        match self {
            MetaPlane::Memory(m) => m.disks(),
            MetaPlane::Durable(m) => m.disks(),
        }
    }

    /// Update dynamic information for a disk.
    pub fn update_disk(&mut self, id: usize, used_bytes: u64, load: f64) {
        match self {
            MetaPlane::Memory(m) => m.update_disk(id, used_bytes, load),
            MetaPlane::Durable(m) => m.update_disk(id, used_bytes, load),
        }
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        match self {
            MetaPlane::Memory(m) => m.exists(name),
            MetaPlane::Durable(m) => m.exists(name),
        }
    }

    /// Acquire the lock for `mode` and return the file's metadata.
    pub fn open(&mut self, name: &str, mode: AccessMode) -> Result<Option<FileMeta>, StoreError> {
        match self {
            MetaPlane::Memory(m) => m.open(name, mode),
            MetaPlane::Durable(m) => m.open(name, mode),
        }
    }

    /// Release the lock taken by `open`.
    pub fn close(&mut self, name: &str, mode: AccessMode) {
        match self {
            MetaPlane::Memory(m) => m.close(name, mode),
            MetaPlane::Durable(m) => m.close(name, mode),
        }
    }

    /// Advance the stale-lock reclaim epoch.
    pub fn begin_lock_epoch(&mut self) -> u64 {
        match self {
            MetaPlane::Memory(m) => m.begin_lock_epoch(),
            MetaPlane::Durable(m) => m.begin_lock_epoch(),
        }
    }

    /// Locks reclaimed from presumed-crashed holders so far.
    pub fn locks_reclaimed(&self) -> u64 {
        match self {
            MetaPlane::Memory(m) => m.locks_reclaimed(),
            MetaPlane::Durable(m) => m.locks_reclaimed(),
        }
    }

    /// Try to upgrade a sole-reader lock to the writer lock.
    pub fn try_upgrade(&mut self, name: &str) -> bool {
        match self {
            MetaPlane::Memory(m) => m.try_upgrade(name),
            MetaPlane::Durable(m) => m.try_upgrade(name),
        }
    }

    /// Downgrade the writer lock back to a single reader.
    pub fn downgrade(&mut self, name: &str) {
        match self {
            MetaPlane::Memory(m) => m.downgrade(name),
            MetaPlane::Durable(m) => m.downgrade(name),
        }
    }

    /// Allocate a file id for a new file. Only the durable plane can
    /// fail (quorum loss on the id-floor record).
    pub fn allocate_file_id(&mut self) -> Result<u64, StoreError> {
        match self {
            MetaPlane::Memory(m) => Ok(m.allocate_file_id()),
            MetaPlane::Durable(m) => m.allocate_file_id(),
        }
    }

    /// Commit metadata after a write/update (requires the writer lock).
    pub fn commit(&mut self, meta: FileMeta) -> Result<(), StoreError> {
        match self {
            MetaPlane::Memory(m) => m.commit(meta),
            MetaPlane::Durable(m) => m.commit(meta),
        }
    }

    /// Remove a file's metadata (requires the writer lock).
    pub fn remove(&mut self, name: &str) -> Result<FileMeta, StoreError> {
        match self {
            MetaPlane::Memory(m) => m.remove(name),
            MetaPlane::Durable(m) => m.remove(name),
        }
    }

    /// Look up without locking.
    pub fn stat(&self, name: &str) -> Option<&FileMeta> {
        match self {
            MetaPlane::Memory(m) => m.stat(name),
            MetaPlane::Durable(m) => m.stat(name),
        }
    }

    /// All known file names, sorted.
    pub fn list(&self) -> Vec<String> {
        match self {
            MetaPlane::Memory(m) => m.list(),
            MetaPlane::Durable(m) => m.list(),
        }
    }

    /// Bootstrap-restore metadata, bypassing locks.
    pub fn restore(&mut self, meta: FileMeta) -> Result<(), StoreError> {
        match self {
            MetaPlane::Memory(m) => {
                m.restore(meta);
                Ok(())
            }
            MetaPlane::Durable(m) => m.restore(meta),
        }
    }

    /// The durable plane, if this is one (chaos hooks, recovery).
    pub fn as_durable_mut(&mut self) -> Option<&mut Metastore> {
        match self {
            MetaPlane::Memory(_) => None,
            MetaPlane::Durable(m) => Some(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::{BTreeMap, BTreeSet};

    use robustore_erasure::LtParams;

    use super::*;
    use crate::metadata::CodingSpec;

    fn meta(name: &str, file_id: u64, version: u64) -> FileMeta {
        FileMeta {
            name: name.into(),
            file_id,
            size_bytes: 4096,
            coding: CodingSpec {
                k: 4,
                n: 12,
                block_bytes: 1024,
                params: LtParams::default(),
                seed: 7,
            },
            layout: vec![(0, vec![0, 1, 2])],
            odd_keys: BTreeSet::new(),
            checksums: BTreeMap::new(),
            owner: 1,
            version,
        }
    }

    fn small() -> Metastore {
        Metastore::new(MetastoreConfig {
            shards: 4,
            replicas: 3,
            snapshot_every: 64,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn lifecycle_mirrors_memory_plane() {
        let mut m = small();
        assert!(m.open("f", AccessMode::Write).unwrap().is_none());
        let id = m.allocate_file_id().unwrap();
        m.commit(meta("f", id, 1)).unwrap();
        m.close("f", AccessMode::Write);
        let got = m.open("f", AccessMode::Read).unwrap().unwrap();
        assert_eq!(got.file_id, id);
        m.close("f", AccessMode::Read);
        assert_eq!(m.list(), vec!["f".to_string()]);
        assert!(m.exists("f"));
        assert_eq!(m.stat("f").unwrap().version, 1);
    }

    #[test]
    fn commit_requires_writer_lock() {
        let mut m = small();
        assert!(matches!(
            m.commit(meta("f", 1, 1)),
            Err(StoreError::StaleHandle)
        ));
    }

    #[test]
    fn namespace_survives_crash() {
        let mut m = small();
        for i in 0..50u64 {
            let name = format!("file-{i}");
            m.open(&name, AccessMode::Write).unwrap();
            let id = m.allocate_file_id().unwrap();
            m.commit(meta(&name, id, 1)).unwrap();
            m.close(&name, AccessMode::Write);
        }
        let before = m.list();
        let reports = m.crash_and_recover().unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(m.list(), before, "zero files lost across the crash");
    }

    #[test]
    fn ids_never_reissued_across_crash() {
        let mut m = small();
        m.open("f", AccessMode::Write).unwrap();
        let id = m.allocate_file_id().unwrap();
        m.commit(meta("f", id, 1)).unwrap();
        // Crash with the lock held and more ids handed out but
        // uncommitted.
        let orphan1 = m.allocate_file_id().unwrap();
        let orphan2 = m.allocate_file_id().unwrap();
        m.crash_and_recover().unwrap();
        // Lock was reclaimed conservatively.
        m.open("f", AccessMode::Write).unwrap();
        let fresh = m.allocate_file_id().unwrap();
        assert!(
            fresh > orphan1 && fresh > orphan2,
            "burned ids {orphan1},{orphan2} must not be reissued (got {fresh})"
        );
    }

    #[test]
    fn locks_cleared_on_recovery() {
        let mut m = small();
        m.open("wedged", AccessMode::Write).unwrap();
        m.crash_and_recover().unwrap();
        assert!(m.locks_reclaimed() >= 1);
        m.open("wedged", AccessMode::Write).unwrap();
    }

    #[test]
    fn quorum_loss_fails_commit_without_corruption() {
        let mut m = small();
        m.open("f", AccessMode::Write).unwrap();
        let id = m.allocate_file_id().unwrap();
        let shard = m.shard_of("f");
        // Take a majority of the owning shard's replicas down.
        m.mem_replica(shard, 0).unwrap().set_down(true);
        m.mem_replica(shard, 1).unwrap().set_down(true);
        assert!(matches!(
            m.commit(meta("f", id, 1)),
            Err(StoreError::MetaQuorumLost { .. })
        ));
        assert!(!m.exists("f"));
        // Revive and retry: the plane heals.
        m.mem_replica(shard, 0).unwrap().set_down(false);
        m.mem_replica(shard, 1).unwrap().set_down(false);
        m.commit(meta("f", id, 1)).unwrap();
        assert!(m.exists("f"));
    }

    #[test]
    fn disk_hints_reseed_registry_after_crash() {
        let mut m = small();
        m.register_disk(DiskInfo {
            id: 0,
            capacity_bytes: 1 << 30,
            used_bytes: 0,
            expected_bandwidth: 10e6,
            load: 0.0,
            availability: 0.99,
        });
        m.update_disk(0, 12_345, 0.5);
        m.crash_and_recover().unwrap();
        // Registry is volatile: the system re-registers disks at boot;
        // here the same object still has them, and the logged hint
        // restores usage.
        assert_eq!(m.disks()[0].used_bytes, 12_345);
        assert!((m.disks()[0].load - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sharding_is_stable_and_spread() {
        let m = small();
        let mut used = BTreeSet::new();
        for i in 0..64 {
            let name = format!("file-{i}");
            let s = m.shard_of(&name);
            assert_eq!(s, m.shard_of(&name), "stable");
            used.insert(s);
        }
        assert!(used.len() >= 3, "64 names should touch most of 4 shards");
    }

    #[test]
    fn file_backed_plane_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "rbst-metastore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = MetastoreConfig {
            shards: 2,
            replicas: 3,
            snapshot_every: 8,
            dir: Some(dir.clone()),
            ..Default::default()
        };
        {
            let mut m = Metastore::new(config.clone()).unwrap();
            for i in 0..20u64 {
                let name = format!("durable-{i}");
                m.open(&name, AccessMode::Write).unwrap();
                let id = m.allocate_file_id().unwrap();
                m.commit(meta(&name, id, 1)).unwrap();
                m.close(&name, AccessMode::Write);
            }
            // Process "crashes" here: no clean shutdown.
        }
        let m = Metastore::new(config).unwrap();
        assert_eq!(m.file_count(), 20, "namespace survived process restart");
        assert!(m.exists("durable-19"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
