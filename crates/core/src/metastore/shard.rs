//! One metadata shard: a replicated, snapshotting, crash-recoverable
//! log of [`MetaRecord`]s and the namespace image it materialises.
//!
//! ## Quorum rules
//!
//! A shard owns `R` replicas and requires `⌈(R+1)/2⌉` acknowledged
//! appends for a commit to succeed. On fewer acks the in-memory image
//! is left untouched and the caller gets
//! [`StoreError::MetaQuorumLost`] — the write did *not* happen. The
//! LSN of the failed attempt is burned (never reissued), because a
//! minority of replicas may have durably persisted the record; reusing
//! the LSN for a different record would let two distinct records claim
//! the same slot. A burned record on a surviving minority replica can
//! resurface as committed at the next recovery if that replica wins the
//! election — exactly the semantics of a write that was in flight at
//! the crash, and the caller was told it failed *to reach quorum*, not
//! that it was annihilated.
//!
//! ## Recovery invariants
//!
//! [`MetaShard::recover`] requires a majority of replicas readable.
//! Per replica it loads the snapshot (if any), replays the log's clean
//! prefix (stopping at the first torn/corrupt frame — WAL framing), and
//! skips records already folded into the snapshot (LSN-gated idempotent
//! replay). The replica with the highest `(applied_lsn, record_count)`
//! wins; its state becomes the shard image, and every readable replica
//! is read-repaired to it (snapshot install + log truncate), which also
//! discards torn tails. Because every record is complete — a `Commit`
//! carries the file's entire new metadata — any replayed prefix is a
//! consistent namespace: each file wholly pre- or wholly post- any
//! given commit, never torn.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::error::StoreError;
use crate::metadata::FileMeta;

use super::record::{decode_record, decode_snapshot, encode_record, encode_snapshot, MetaRecord};
use super::wal::{frame, scan_frames, ReplicaStore};

/// What one shard recovery did (surfaced in chaos tests and
/// `xp metadata` output).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Shard index.
    pub shard: usize,
    /// Replicas that were readable.
    pub replicas_available: usize,
    /// Replicas whose state diverged from the winner and were repaired.
    pub replicas_repaired: usize,
    /// Bytes of torn/corrupt log tail discarded across replicas.
    pub torn_bytes_dropped: u64,
    /// Log records replayed on the winning replica (post-snapshot).
    pub records_replayed: usize,
    /// The shard's LSN after recovery.
    pub applied_lsn: u64,
    /// Files in the shard image after recovery.
    pub files: usize,
}

/// Per-replica state reconstructed during recovery.
struct Candidate {
    files: HashMap<String, FileMeta>,
    disk_updates: BTreeMap<usize, (u64, f64)>,
    applied_lsn: u64,
    id_floor: u64,
    records: usize,
    /// Bytes of log tail that failed framing or decoding.
    torn_bytes: u64,
}

/// A metadata shard.
pub struct MetaShard {
    id: usize,
    replicas: Vec<Arc<dyn ReplicaStore>>,
    quorum: usize,
    image: HashMap<String, FileMeta>,
    /// Latest disk-update record per disk id (volatile hint; see
    /// [`MetaShard::disk_updates`]).
    disk_updates: BTreeMap<usize, (u64, f64)>,
    /// LSN of the last *attempted* record (applied or burned).
    next_lsn: u64,
    /// Highest id floor this shard has logged/replayed.
    id_floor: u64,
    records_since_snapshot: usize,
    snapshot_every: usize,
}

impl MetaShard {
    /// A fresh shard over `replicas` (majority quorum).
    pub fn new(id: usize, replicas: Vec<Arc<dyn ReplicaStore>>, snapshot_every: usize) -> Self {
        assert!(!replicas.is_empty(), "shard needs at least one replica");
        let quorum = replicas.len() / 2 + 1;
        MetaShard {
            id,
            replicas,
            quorum,
            image: HashMap::new(),
            disk_updates: BTreeMap::new(),
            next_lsn: 0,
            id_floor: 0,
            records_since_snapshot: 0,
            snapshot_every: snapshot_every.max(1),
        }
    }

    /// Shard index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Acks required for a commit.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// The materialised namespace image (hash-ordered: point lookups
    /// stay O(1) with one or two cache misses however large the
    /// namespace grows; listings sort at the caller).
    pub fn image(&self) -> &HashMap<String, FileMeta> {
        &self.image
    }

    /// Highest durable file-id floor seen by this shard.
    pub fn id_floor(&self) -> u64 {
        self.id_floor
    }

    /// Latest `(used_bytes, load)` per disk id from replayed
    /// disk-update records — a best-effort hint for re-seeding the
    /// volatile disk registry after recovery.
    pub fn disk_updates(&self) -> &BTreeMap<usize, (u64, f64)> {
        &self.disk_updates
    }

    fn apply(
        image: &mut HashMap<String, FileMeta>,
        disk_updates: &mut BTreeMap<usize, (u64, f64)>,
        id_floor: &mut u64,
        rec: MetaRecord,
    ) {
        match rec {
            MetaRecord::Commit(meta) => {
                image.insert(meta.name.clone(), meta);
            }
            MetaRecord::Remove(name) => {
                image.remove(&name);
            }
            MetaRecord::DiskUpdate {
                id,
                used_bytes,
                load,
            } => {
                disk_updates.insert(id, (used_bytes, load));
            }
            MetaRecord::IdFloor(floor) => {
                *id_floor = (*id_floor).max(floor);
            }
        }
    }

    /// Durably commit `rec`: append the framed record to every replica,
    /// require majority acks, then apply it to the image. On quorum
    /// loss the image is unchanged and the LSN burned (see module docs).
    pub fn commit_record(&mut self, rec: MetaRecord) -> Result<(), StoreError> {
        let lsn = self.next_lsn + 1;
        self.next_lsn = lsn;
        let bytes = frame(&encode_record(lsn, &rec));
        let mut acks = 0usize;
        for r in &self.replicas {
            if r.append_log(&bytes).is_ok() {
                acks += 1;
            }
        }
        if acks < self.quorum {
            return Err(StoreError::MetaQuorumLost {
                shard: self.id,
                acks,
                need: self.quorum,
            });
        }
        Self::apply(
            &mut self.image,
            &mut self.disk_updates,
            &mut self.id_floor,
            rec,
        );
        self.records_since_snapshot += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Snapshot + truncate when the log has outgrown the image. The
    /// trigger is `max(snapshot_every, image_size)` records since the
    /// last snapshot: at small namespaces it compacts every
    /// `snapshot_every` records, at large ones the snapshot cost
    /// (O(image)) amortises to O(1) per record — per-op latency stays
    /// flat as the file count grows.
    fn maybe_compact(&mut self) {
        if self.records_since_snapshot < self.snapshot_every.max(self.image.len()) {
            return;
        }
        self.compact();
    }

    /// Force a snapshot+truncate on every reachable replica. A replica
    /// that fails mid-compaction keeps its old snapshot and log —
    /// replay is LSN-gated, so an already-snapshotted record lingering
    /// in a log is skipped, never double-applied.
    pub fn compact(&mut self) {
        let snap = Arc::new(encode_snapshot(self.next_lsn, self.id_floor, &self.image));
        for r in &self.replicas {
            if r.install_snapshot(snap.clone()).is_ok() {
                let _ = r.truncate_log(0);
            }
        }
        self.records_since_snapshot = 0;
    }

    /// Reconstruct one replica's state. `None` if the replica is
    /// unreadable (down).
    fn read_candidate(&self, replica: &Arc<dyn ReplicaStore>) -> Option<Candidate> {
        let snap_bytes = replica.read_snapshot().ok()?;
        let log = replica.read_log().ok()?;
        let mut files = HashMap::new();
        let mut disk_updates = BTreeMap::new();
        let mut applied_lsn = 0u64;
        let mut id_floor = 0u64;
        // A malformed snapshot (torn install on a crashed pre-rename
        // filesystem, chaos corruption) is treated as absent: the log
        // may still be complete, and read-repair will reinstall.
        if let Some((lsn, floor, metas)) = snap_bytes.as_deref().and_then(|b| decode_snapshot(b)) {
            applied_lsn = lsn;
            id_floor = floor;
            for m in metas {
                files.insert(m.name.clone(), m);
            }
        }
        let (payloads, clean_prefix) = scan_frames(&log);
        let mut torn_bytes = (log.len() - clean_prefix) as u64;
        let mut records = 0usize;
        for payload in payloads {
            let Some((lsn, rec)) = decode_record(payload) else {
                // Framing passed but the payload is malformed: treat as
                // the start of a bad tail and stop, like a torn frame.
                torn_bytes += (super::wal::FRAME_HEADER + payload.len()) as u64;
                break;
            };
            if lsn <= applied_lsn {
                continue; // already folded into the snapshot
            }
            Self::apply(&mut files, &mut disk_updates, &mut id_floor, rec);
            applied_lsn = lsn;
            records += 1;
        }
        Some(Candidate {
            files,
            disk_updates,
            applied_lsn,
            id_floor,
            records,
            torn_bytes,
        })
    }

    /// Rebuild the shard image from its replicas after a crash (or on
    /// first boot over durable replicas). Requires a readable majority;
    /// see the module docs for the election and read-repair rules.
    pub fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let candidates: Vec<(usize, Option<Candidate>)> = self
            .replicas
            .iter()
            .map(|r| self.read_candidate(r))
            .enumerate()
            .collect();
        let available = candidates.iter().filter(|(_, c)| c.is_some()).count();
        if available < self.quorum {
            return Err(StoreError::MetaQuorumLost {
                shard: self.id,
                acks: available,
                need: self.quorum,
            });
        }
        // Election: highest (applied_lsn, record_count), lowest index
        // breaking ties — deterministic across recoveries.
        let winner_idx = candidates
            .iter()
            .filter_map(|(i, c)| c.as_ref().map(|c| (c.applied_lsn, c.records, *i)))
            .max_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(b.2.cmp(&a.2)))
            .map(|(_, _, i)| i)
            .expect("available >= quorum >= 1");
        let torn_bytes_dropped: u64 = candidates
            .iter()
            .filter_map(|(_, c)| c.as_ref().map(|c| c.torn_bytes))
            .sum();
        let mut repaired = 0usize;
        let winner = candidates
            .into_iter()
            .find_map(|(i, c)| (i == winner_idx).then_some(c).flatten())
            .expect("winner candidate present");

        self.image = winner.files;
        self.disk_updates = winner.disk_updates;
        self.next_lsn = winner.applied_lsn;
        self.id_floor = winner.id_floor;
        self.records_since_snapshot = 0;

        // Read-repair: install the winner state everywhere reachable
        // and drop every log — laggards converge, torn tails vanish.
        let snap = Arc::new(encode_snapshot(self.next_lsn, self.id_floor, &self.image));
        for (i, r) in self.replicas.iter().enumerate() {
            if r.install_snapshot(snap.clone()).is_ok() {
                let _ = r.truncate_log(0);
                if i != winner_idx {
                    repaired += 1;
                }
            }
        }

        Ok(RecoveryReport {
            shard: self.id,
            replicas_available: available,
            replicas_repaired: repaired,
            torn_bytes_dropped,
            records_replayed: winner.records,
            applied_lsn: self.next_lsn,
            files: self.image.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use std::collections::{BTreeMap, BTreeSet};

    use robustore_erasure::LtParams;

    use super::super::wal::MemReplica;
    use super::*;
    use crate::metadata::CodingSpec;

    fn meta(name: &str, version: u64) -> FileMeta {
        FileMeta {
            name: name.into(),
            file_id: 1,
            size_bytes: 4096,
            coding: CodingSpec {
                k: 4,
                n: 12,
                block_bytes: 1024,
                params: LtParams::default(),
                seed: 7,
            },
            layout: vec![(0, vec![0, 1, 2])],
            odd_keys: BTreeSet::new(),
            checksums: BTreeMap::new(),
            owner: 1,
            version,
        }
    }

    fn shard_with(n: usize, snapshot_every: usize) -> (MetaShard, Vec<MemReplica>) {
        let mems: Vec<MemReplica> = (0..n).map(|i| MemReplica::new(format!("r{i}"))).collect();
        let replicas: Vec<Arc<dyn ReplicaStore>> = mems
            .iter()
            .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
            .collect();
        (MetaShard::new(0, replicas, snapshot_every), mems)
    }

    #[test]
    fn commit_survives_minority_down() {
        let (mut s, mems) = shard_with(3, 1024);
        mems[2].set_down(true);
        s.commit_record(MetaRecord::Commit(meta("f", 1))).unwrap();
        assert_eq!(s.image().len(), 1);
    }

    #[test]
    fn commit_fails_on_majority_down_and_image_unchanged() {
        let (mut s, mems) = shard_with(3, 1024);
        mems[1].set_down(true);
        mems[2].set_down(true);
        let err = s
            .commit_record(MetaRecord::Commit(meta("f", 1)))
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::MetaQuorumLost {
                acks: 1,
                need: 2,
                ..
            }
        ));
        assert!(s.image().is_empty());
        // The burned LSN is never reissued: revive the cluster and
        // commit — recovery must not confuse the two records.
        mems[1].set_down(false);
        mems[2].set_down(false);
        s.commit_record(MetaRecord::Commit(meta("g", 1))).unwrap();
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            1024,
        );
        let report = fresh.recover().unwrap();
        // Replica 0 holds both the burned record (lsn 1) and the real
        // one (lsn 2) and wins the election: the burned record
        // resurfaces as committed — documented in-flight-write
        // semantics, and the namespace is consistent.
        assert_eq!(report.applied_lsn, 2);
        assert!(fresh.image().contains_key("g"));
    }

    #[test]
    fn recovery_replays_and_truncates_torn_tail() {
        let (mut s, mems) = shard_with(3, 1024);
        for v in 1..=5 {
            s.commit_record(MetaRecord::Commit(meta("f", v))).unwrap();
        }
        // Corrupt one replica's tail: its candidate stops early.
        mems[0].corrupt_tail(4);
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            1024,
        );
        let report = fresh.recover().unwrap();
        assert_eq!(report.replicas_available, 3);
        assert!(report.torn_bytes_dropped >= 4);
        assert_eq!(fresh.image()["f"].version, 5, "healthy replicas win");
        // All replicas converged: recover again, nothing torn.
        let mut again = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            1024,
        );
        let r2 = again.recover().unwrap();
        assert_eq!(r2.torn_bytes_dropped, 0);
        assert_eq!(again.image()["f"].version, 5);
    }

    #[test]
    fn snapshot_bounds_replay() {
        let (mut s, mems) = shard_with(3, 4);
        for v in 1..=20 {
            s.commit_record(MetaRecord::Commit(meta("f", v))).unwrap();
        }
        // Logs have been truncated by compaction: recovery replays only
        // the post-snapshot suffix.
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            4,
        );
        let report = fresh.recover().unwrap();
        assert!(report.records_replayed < 20, "snapshot folded the bulk");
        assert_eq!(fresh.image()["f"].version, 20);
        assert_eq!(report.applied_lsn, 20);
    }

    #[test]
    fn recovery_requires_majority() {
        let (mut s, mems) = shard_with(3, 1024);
        s.commit_record(MetaRecord::Commit(meta("f", 1))).unwrap();
        mems[0].set_down(true);
        mems[1].set_down(true);
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            1024,
        );
        assert!(matches!(
            fresh.recover(),
            Err(StoreError::MetaQuorumLost {
                acks: 1,
                need: 2,
                ..
            })
        ));
    }

    #[test]
    fn minority_loss_loses_nothing() {
        let (mut s, mems) = shard_with(3, 8);
        for v in 1..=50 {
            s.commit_record(MetaRecord::Commit(meta(&format!("f{}", v % 7), v)))
                .unwrap();
        }
        let mut expect: Vec<String> = s.image().keys().cloned().collect();
        expect.sort();
        mems[1].set_down(true);
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            8,
        );
        let report = fresh.recover().unwrap();
        assert_eq!(report.replicas_available, 2);
        let mut got: Vec<String> = fresh.image().keys().cloned().collect();
        got.sort();
        assert_eq!(got, expect, "zero files lost with a minority down");
    }

    #[test]
    fn id_floor_survives_recovery() {
        let (mut s, mems) = shard_with(3, 1024);
        s.commit_record(MetaRecord::IdFloor(2048)).unwrap();
        s.commit_record(MetaRecord::Commit(meta("f", 1))).unwrap();
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            1024,
        );
        fresh.recover().unwrap();
        assert_eq!(fresh.id_floor(), 2048);
    }

    #[test]
    fn torn_append_mid_commit_is_pre_or_post_never_torn() {
        let (mut s, mems) = shard_with(3, 1024);
        s.commit_record(MetaRecord::Commit(meta("f", 1))).unwrap();
        // The next append to replica 0 tears mid-frame (crash while
        // writing); the other two replicas ack, so the commit succeeds.
        mems[0].arm_torn_append(5);
        s.commit_record(MetaRecord::Commit(meta("f", 2))).unwrap();
        let mut fresh = MetaShard::new(
            0,
            mems.iter()
                .map(|m| Arc::new(m.clone()) as Arc<dyn ReplicaStore>)
                .collect(),
            1024,
        );
        let report = fresh.recover().unwrap();
        assert!(report.torn_bytes_dropped > 0);
        // Quorum acked → the commit is durable: post-state, version 2.
        assert_eq!(fresh.image()["f"].version, 2);
    }
}
