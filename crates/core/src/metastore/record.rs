//! Binary codec for metadata log records.
//!
//! Every mutation of a metadata shard is one [`MetaRecord`], serialised
//! with a hand-rolled little-endian codec (no serde offline) and framed
//! by the WAL layer ([`super::wal`]) with a length + CRC32C header. The
//! record that matters most is [`MetaRecord::Commit`]: it carries the
//! *complete* new [`FileMeta`] — layout, generation parities, checksums —
//! so the copy-on-write protocol's metadata flip is a single atomic log
//! append. There is never a record that partially describes a file;
//! replaying any prefix of the log yields a namespace in which every
//! file is wholly pre- or wholly post- some commit.
//!
//! Records carry the shard-local log sequence number (LSN) so replay
//! over a snapshot can skip records the snapshot already folded in.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use robustore_erasure::LtParams;

use crate::metadata::{CodingSpec, FileMeta};

/// One durable metadata mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaRecord {
    /// Create or update: the file's complete new metadata. The append of
    /// this record *is* the commit point of the write protocol.
    Commit(FileMeta),
    /// Remove the named file.
    Remove(String),
    /// Dynamic storage-server registry update (usage, load).
    DiskUpdate {
        /// Disk id.
        id: usize,
        /// Bytes in use.
        used_bytes: u64,
        /// Recent load in [0, 1].
        load: f64,
    },
    /// Raise the file-id allocator floor: every id below `floor` is
    /// burned, even by writes that crashed before their commit record —
    /// a recovered store can never re-issue an id whose orphaned blocks
    /// may still be on disk.
    IdFloor(u64),
}

impl MetaRecord {
    /// Stable tag byte.
    fn tag(&self) -> u8 {
        match self {
            MetaRecord::Commit(_) => 1,
            MetaRecord::Remove(_) => 2,
            MetaRecord::DiskUpdate { .. } => 3,
            MetaRecord::IdFloor(_) => 4,
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounded little-endian reader over a record payload. Every `take_*`
/// returns `None` past the end, so a truncated or corrupted payload
/// decodes to `None` instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialise `meta` (shared with shard snapshots, which are a sequence
/// of these).
fn encode_meta(out: &mut Vec<u8>, m: &FileMeta) {
    put_str(out, &m.name);
    put_u64(out, m.file_id);
    put_u64(out, m.size_bytes);
    put_u64(out, m.coding.k as u64);
    put_u64(out, m.coding.n as u64);
    put_u64(out, m.coding.block_bytes);
    put_f64(out, m.coding.params.c);
    put_f64(out, m.coding.params.delta);
    put_u64(out, m.coding.params.max_graph_attempts as u64);
    put_u64(out, m.coding.seed);
    put_u64(out, m.owner);
    put_u64(out, m.version);
    put_u32(out, m.odd_keys.len() as u32);
    for &id in &m.odd_keys {
        put_u32(out, id);
    }
    put_u32(out, m.layout.len() as u32);
    for (disk, ids) in &m.layout {
        put_u64(out, *disk as u64);
        put_u32(out, ids.len() as u32);
        for &id in ids {
            put_u32(out, id);
        }
    }
    put_u32(out, m.checksums.len() as u32);
    for (&id, &crc) in &m.checksums {
        put_u32(out, id);
        put_u32(out, crc);
    }
}

/// Inverse of [`encode_meta`]; `None` on truncation or malformation.
fn decode_meta(r: &mut Reader<'_>) -> Option<FileMeta> {
    let name = r.str()?;
    let file_id = r.u64()?;
    let size_bytes = r.u64()?;
    let k = r.u64()? as usize;
    let n = r.u64()? as usize;
    let block_bytes = r.u64()?;
    let c = r.f64()?;
    let delta = r.f64()?;
    let max_graph_attempts = r.u64()? as usize;
    let seed = r.u64()?;
    let owner = r.u64()?;
    let version = r.u64()?;
    let odd_count = r.u32()? as usize;
    let mut odd_keys = BTreeSet::new();
    for _ in 0..odd_count {
        odd_keys.insert(r.u32()?);
    }
    let disks = r.u32()? as usize;
    let mut layout = Vec::with_capacity(disks.min(1024));
    for _ in 0..disks {
        let disk = r.u64()? as usize;
        let ids_count = r.u32()? as usize;
        let mut ids = Vec::with_capacity(ids_count.min(65_536));
        for _ in 0..ids_count {
            ids.push(r.u32()?);
        }
        layout.push((disk, ids));
    }
    let crcs = r.u32()? as usize;
    let mut checksums = BTreeMap::new();
    for _ in 0..crcs {
        let id = r.u32()?;
        let crc = r.u32()?;
        checksums.insert(id, crc);
    }
    Some(FileMeta {
        name,
        file_id,
        size_bytes,
        coding: CodingSpec {
            k,
            n,
            block_bytes,
            params: LtParams {
                c,
                delta,
                max_graph_attempts,
            },
            seed,
        },
        layout,
        odd_keys,
        checksums,
        owner,
        version,
    })
}

/// Serialise a record with its LSN: `[tag][lsn][body]`.
pub fn encode_record(lsn: u64, rec: &MetaRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(rec.tag());
    put_u64(&mut out, lsn);
    match rec {
        MetaRecord::Commit(meta) => encode_meta(&mut out, meta),
        MetaRecord::Remove(name) => put_str(&mut out, name),
        MetaRecord::DiskUpdate {
            id,
            used_bytes,
            load,
        } => {
            put_u64(&mut out, *id as u64);
            put_u64(&mut out, *used_bytes);
            put_f64(&mut out, *load);
        }
        MetaRecord::IdFloor(floor) => put_u64(&mut out, *floor),
    }
    out
}

/// Inverse of [`encode_record`]: `(lsn, record)`, or `None` if the
/// payload is malformed (wrong tag, short body, trailing garbage).
pub fn decode_record(payload: &[u8]) -> Option<(u64, MetaRecord)> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let lsn = r.u64()?;
    let rec = match tag {
        1 => MetaRecord::Commit(decode_meta(&mut r)?),
        2 => MetaRecord::Remove(r.str()?),
        3 => MetaRecord::DiskUpdate {
            id: r.u64()? as usize,
            used_bytes: r.u64()?,
            load: r.f64()?,
        },
        4 => MetaRecord::IdFloor(r.u64()?),
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some((lsn, rec))
}

/// Serialise a whole shard snapshot: the applied LSN, the id floor the
/// shard has seen, and every file image. Entries are written in sorted
/// name order so the same image always encodes to the same bytes, even
/// off a hash-ordered map.
pub fn encode_snapshot(
    applied_lsn: u64,
    id_floor: u64,
    files: &HashMap<String, FileMeta>,
) -> Vec<u8> {
    let mut names: Vec<&String> = files.keys().collect();
    names.sort_unstable();
    let mut out = Vec::with_capacity(64 + files.len() * 96);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u64(&mut out, applied_lsn);
    put_u64(&mut out, id_floor);
    put_u64(&mut out, files.len() as u64);
    for name in names {
        encode_meta(&mut out, &files[name]);
    }
    out
}

/// Inverse of [`encode_snapshot`].
pub fn decode_snapshot(bytes: &[u8]) -> Option<(u64, u64, Vec<FileMeta>)> {
    let mut r = Reader::new(bytes);
    if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return None;
    }
    let applied_lsn = r.u64()?;
    let id_floor = r.u64()?;
    let count = r.u64()? as usize;
    let mut files = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        files.push(decode_meta(&mut r)?);
    }
    if !r.done() {
        return None;
    }
    Some((applied_lsn, id_floor, files))
}

/// Snapshot header magic (versioned).
pub const SNAPSHOT_MAGIC: &[u8] = b"rbst-meta-snap-1";

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> FileMeta {
        FileMeta {
            name: name.into(),
            file_id: 7,
            size_bytes: 1 << 20,
            coding: CodingSpec {
                k: 16,
                n: 48,
                block_bytes: 64 << 10,
                params: LtParams::default(),
                seed: 0xDEAD_BEEF,
            },
            layout: vec![(0, vec![0, 1, 2]), (3, vec![5, 9])],
            odd_keys: [1u32, 9].into_iter().collect(),
            checksums: [(0u32, 0xAAu32), (1, 0xBB)].into_iter().collect(),
            owner: 42,
            version: 3,
        }
    }

    #[test]
    fn record_roundtrip() {
        for rec in [
            MetaRecord::Commit(meta("a/b")),
            MetaRecord::Remove("gone".into()),
            MetaRecord::DiskUpdate {
                id: 5,
                used_bytes: 123,
                load: 0.75,
            },
            MetaRecord::IdFloor(4096),
        ] {
            let bytes = encode_record(99, &rec);
            let (lsn, back) = decode_record(&bytes).expect("decodes");
            assert_eq!(lsn, 99);
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn truncated_record_decodes_to_none() {
        let bytes = encode_record(1, &MetaRecord::Commit(meta("f")));
        for cut in [0, 1, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_record(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_record(1, &MetaRecord::Remove("x".into()));
        bytes.push(0);
        assert!(decode_record(&bytes).is_none());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = encode_record(1, &MetaRecord::IdFloor(1));
        bytes[0] = 200;
        assert!(decode_record(&bytes).is_none());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut files = HashMap::new();
        // Inserted unsorted: the encoder must order by name itself.
        for name in ["c", "a", "b"] {
            files.insert(name.to_string(), meta(name));
        }
        let bytes = encode_snapshot(17, 1024, &files);
        let (lsn, floor, back) = decode_snapshot(&bytes).expect("decodes");
        assert_eq!((lsn, floor), (17, 1024));
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], files["a"]);
        // Truncation anywhere is detected.
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_snapshot(&bytes[..8]).is_none());
    }
}
