//! CRC32C-framed write-ahead log and the replica storage devices.
//!
//! The log is a byte stream of frames: `[len: u32 LE][crc: u32 LE]
//! [payload: len bytes]`, where `crc = crc32c(payload)`. A frame is
//! valid only if the whole header fits, the whole payload fits, and the
//! checksum matches — so a crash mid-append (a *torn* frame) or bit rot
//! in the tail makes the frame invalid, and [`scan_frames`] stops at the
//! first bad frame, returning the clean prefix. Everything after that
//! point is discarded by recovery: an unframed record never committed.
//!
//! Replicas are abstracted behind [`ReplicaStore`] so the same shard
//! logic runs over in-memory devices (fast; the chaos substrate's
//! favourite victim) and real files (crash durability across process
//! restarts). Each replica holds one log blob and at most one snapshot
//! blob.

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StoreError;
use crate::integrity::crc32c;

/// Frame header size: length + checksum.
pub const FRAME_HEADER: usize = 8;

/// Wrap `payload` in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Walk `log`, yielding each valid frame's payload. Stops at the first
/// frame whose header is short, whose payload is short, or whose CRC
/// mismatches. Returns the payloads of the clean prefix and the byte
/// length of that prefix (the truncation point for read-repair).
pub fn scan_frames(log: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while pos + FRAME_HEADER <= log.len() {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(log[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + FRAME_HEADER;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > log.len() {
            break;
        }
        let payload = &log[start..end];
        if crc32c(payload) != crc {
            break;
        }
        payloads.push(payload);
        pos = end;
    }
    (payloads, pos)
}

/// One replica's durable storage: an append-only log blob plus at most
/// one snapshot blob. Implementations must make `append_log` atomic
/// with respect to `read_log` (no torn concurrent reads), but need not
/// make it atomic with respect to crashes — torn tails are the WAL
/// framing's job to detect.
pub trait ReplicaStore: Send + Sync {
    /// Append `bytes` to the log. Errors if the replica is down.
    fn append_log(&self, bytes: &[u8]) -> Result<(), StoreError>;
    /// The full log contents.
    fn read_log(&self) -> Result<Vec<u8>, StoreError>;
    /// Truncate the log to `len` bytes (read-repair discarding a torn
    /// or divergent tail).
    fn truncate_log(&self, len: usize) -> Result<(), StoreError>;
    /// The current snapshot blob, if one has been installed.
    fn read_snapshot(&self) -> Result<Option<Arc<Vec<u8>>>, StoreError>;
    /// Atomically replace the snapshot blob. The blob arrives shared so
    /// an in-memory replica can retain it without copying — compaction
    /// encodes one snapshot and hands the same buffer to every replica.
    fn install_snapshot(&self, bytes: Arc<Vec<u8>>) -> Result<(), StoreError>;
    /// Human-readable identity for diagnostics.
    fn describe(&self) -> String;
}

/// In-memory replica device with chaos hooks: it can be marked down
/// (every call errors), armed to tear the *next* append (keep a random
/// prefix of the frame — the classic crash-mid-write), or have its
/// current log tail corrupted in place (bit rot).
#[derive(Clone)]
pub struct MemReplica {
    inner: Arc<Mutex<MemReplicaState>>,
    name: String,
}

struct MemReplicaState {
    log: Vec<u8>,
    snapshot: Option<Arc<Vec<u8>>>,
    down: bool,
    /// If set, the next append keeps only this many bytes of the frame.
    torn_next: Option<usize>,
}

impl MemReplica {
    /// A fresh, empty, healthy replica.
    pub fn new(name: impl Into<String>) -> Self {
        MemReplica {
            inner: Arc::new(Mutex::new(MemReplicaState {
                log: Vec::new(),
                snapshot: None,
                down: false,
                torn_next: None,
            })),
            name: name.into(),
        }
    }

    /// Mark the replica down (`true`) or back up (`false`). Down
    /// replicas fail every operation; their state is preserved and
    /// becomes visible again on revival — the "lost minority rejoins"
    /// scenario.
    pub fn set_down(&self, down: bool) {
        self.inner.lock().down = down;
    }

    /// Whether the replica is currently down.
    pub fn is_down(&self) -> bool {
        self.inner.lock().down
    }

    /// Arm a torn append: the next `append_log` persists only `keep`
    /// bytes of the frame (then reports failure, as a crashed writer
    /// would have).
    pub fn arm_torn_append(&self, keep: usize) {
        self.inner.lock().torn_next = Some(keep);
    }

    /// Corrupt `n` bytes at the current end of the log by flipping bits
    /// (seeded bit rot in the tail). No-op on an empty log.
    pub fn corrupt_tail(&self, n: usize) {
        let mut s = self.inner.lock();
        let len = s.log.len();
        let start = len.saturating_sub(n.max(1));
        for b in &mut s.log[start..len] {
            *b ^= 0xA5;
        }
    }

    /// Current log length in bytes (test observability).
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }
}

impl ReplicaStore for MemReplica {
    fn append_log(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut s = self.inner.lock();
        if s.down {
            return Err(StoreError::MetaReplicaDown(self.name.clone()));
        }
        if let Some(keep) = s.torn_next.take() {
            let keep = keep.min(bytes.len());
            s.log.extend_from_slice(&bytes[..keep]);
            return Err(StoreError::MetaReplicaDown(format!(
                "{} (torn append)",
                self.name
            )));
        }
        s.log.extend_from_slice(bytes);
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<u8>, StoreError> {
        let s = self.inner.lock();
        if s.down {
            return Err(StoreError::MetaReplicaDown(self.name.clone()));
        }
        Ok(s.log.clone())
    }

    fn truncate_log(&self, len: usize) -> Result<(), StoreError> {
        let mut s = self.inner.lock();
        if s.down {
            return Err(StoreError::MetaReplicaDown(self.name.clone()));
        }
        s.log.truncate(len);
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Arc<Vec<u8>>>, StoreError> {
        let s = self.inner.lock();
        if s.down {
            return Err(StoreError::MetaReplicaDown(self.name.clone()));
        }
        Ok(s.snapshot.clone())
    }

    fn install_snapshot(&self, bytes: Arc<Vec<u8>>) -> Result<(), StoreError> {
        let mut s = self.inner.lock();
        if s.down {
            return Err(StoreError::MetaReplicaDown(self.name.clone()));
        }
        s.snapshot = Some(bytes);
        Ok(())
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// File-backed replica: `<dir>/wal.log` (append) and `<dir>/snap.bin`
/// (installed via write-to-temp + rename, so a crash mid-install leaves
/// the old snapshot intact).
pub struct FileReplica {
    dir: PathBuf,
    /// Serialises appends/truncates against concurrent readers.
    guard: Mutex<()>,
}

impl FileReplica {
    /// Open (creating the directory if needed) a replica rooted at `dir`.
    pub fn open(dir: PathBuf) -> Result<Self, StoreError> {
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(FileReplica {
            dir,
            guard: Mutex::new(()),
        })
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn snap_path(&self) -> PathBuf {
        self.dir.join("snap.bin")
    }
}

impl ReplicaStore for FileReplica {
    fn append_log(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let _g = self.guard.lock();
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path())
            .map_err(|e| StoreError::Io(e.to_string()))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        f.sync_data().map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<u8>, StoreError> {
        let _g = self.guard.lock();
        match fs::File::open(self.log_path()) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)
                    .map_err(|e| StoreError::Io(e.to_string()))?;
                Ok(buf)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn truncate_log(&self, len: usize) -> Result<(), StoreError> {
        let _g = self.guard.lock();
        match fs::OpenOptions::new().write(true).open(self.log_path()) {
            Ok(f) => {
                f.set_len(len as u64)
                    .map_err(|e| StoreError::Io(e.to_string()))?;
                f.sync_data().map_err(|e| StoreError::Io(e.to_string()))?;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && len == 0 => Ok(()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn read_snapshot(&self) -> Result<Option<Arc<Vec<u8>>>, StoreError> {
        let _g = self.guard.lock();
        match fs::read(self.snap_path()) {
            Ok(buf) => Ok(Some(Arc::new(buf))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn install_snapshot(&self, bytes: Arc<Vec<u8>>) -> Result<(), StoreError> {
        let _g = self.guard.lock();
        let tmp = self.dir.join("snap.tmp");
        fs::write(&tmp, bytes.as_slice()).map_err(|e| StoreError::Io(e.to_string()))?;
        fs::rename(&tmp, self.snap_path()).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(())
    }

    fn describe(&self) -> String {
        self.dir.display().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_stops_at_torn_frame() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(b"one"));
        log.extend_from_slice(&frame(b"two"));
        let clean_len = log.len();
        let torn = frame(b"three");
        log.extend_from_slice(&torn[..torn.len() - 2]);
        let (payloads, prefix) = scan_frames(&log);
        assert_eq!(payloads, vec![b"one".as_slice(), b"two".as_slice()]);
        assert_eq!(prefix, clean_len);
    }

    #[test]
    fn scan_stops_at_crc_mismatch() {
        let mut log = frame(b"good");
        let clean_len = log.len();
        let mut bad = frame(b"evil");
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        log.extend_from_slice(&bad);
        log.extend_from_slice(&frame(b"after"));
        let (payloads, prefix) = scan_frames(&log);
        // Everything after the first bad frame is dead, even if later
        // frames would individually check out.
        assert_eq!(payloads, vec![b"good".as_slice()]);
        assert_eq!(prefix, clean_len);
    }

    #[test]
    fn scan_handles_absurd_length_header() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&[0u8; 16]);
        let (payloads, prefix) = scan_frames(&log);
        assert!(payloads.is_empty());
        assert_eq!(prefix, 0);
    }

    #[test]
    fn mem_replica_torn_append_keeps_prefix() {
        let r = MemReplica::new("r0");
        r.append_log(&frame(b"committed")).unwrap();
        let clean = r.log_len();
        r.arm_torn_append(3);
        assert!(r.append_log(&frame(b"torn")).is_err());
        assert_eq!(r.log_len(), clean + 3);
        let log = r.read_log().unwrap();
        let (payloads, prefix) = scan_frames(&log);
        assert_eq!(payloads.len(), 1);
        assert_eq!(prefix, clean);
    }

    #[test]
    fn file_replica_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "rbst-walrep-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let r = FileReplica::open(dir.clone()).unwrap();
        r.append_log(&frame(b"alpha")).unwrap();
        r.append_log(&frame(b"beta")).unwrap();
        let log = r.read_log().unwrap();
        let (payloads, prefix) = scan_frames(&log);
        assert_eq!(payloads, vec![b"alpha".as_slice(), b"beta".as_slice()]);
        // Truncate back to the first frame.
        let first = frame(b"alpha").len();
        r.truncate_log(first).unwrap();
        let truncated = r.read_log().unwrap();
        let (payloads, _) = scan_frames(&truncated);
        assert_eq!(payloads, vec![b"alpha".as_slice()]);
        assert_eq!(prefix, log.len());
        // Snapshot install + re-read, including across a reopen.
        assert!(r.read_snapshot().unwrap().is_none());
        r.install_snapshot(Arc::new(b"snap!".to_vec())).unwrap();
        assert_eq!(
            r.read_snapshot().unwrap().as_deref().map(|v| v.as_slice()),
            Some(b"snap!".as_slice())
        );
        drop(r);
        let r2 = FileReplica::open(dir.clone()).unwrap();
        assert_eq!(
            r2.read_snapshot().unwrap().as_deref().map(|v| v.as_slice()),
            Some(b"snap!".as_slice())
        );
        let reopened = r2.read_log().unwrap();
        let (payloads, _) = scan_frames(&reopened);
        assert_eq!(payloads, vec![b"alpha".as_slice()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
