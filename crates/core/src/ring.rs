//! Async per-disk submission/completion ring.
//!
//! PR 7 gave every disk its own lock; this module gives every disk its
//! own *queue*. An [`IoRing`] spawns one worker thread per disk of a
//! [`ShardedBackend`]; clients push [`SubmitOp`]s tagged with an access
//! id and a per-access sequence tag, and receive [`Completion`]s on a
//! channel they own. One client thread can therefore keep many accesses
//! in flight at once — the per-disk-FIFO-queue regime of the MDS-queue
//! model — instead of burning a thread per access on blocking calls.
//!
//! Three properties define the ring's semantics:
//!
//! * **Cross-access group commit.** A worker popping a write from its
//!   queue also pops the contiguous run of queued writes behind it — from
//!   *any* access — up to the configured batch cap, and lands the run in
//!   one [`ShardedBackend::commit_batch`] dispatch. Per-access submission
//!   order is preserved (the queue is FIFO and batches never reorder), so
//!   failure semantics match unbatched writes.
//! * **Speculative-read cancellation.** [`IoRing::cancel`] revokes every
//!   op of one access that is still *queued*; each revoked op completes
//!   as [`CompletionKind::Cancelled`] with its buffer handed back, and
//!   the disk never services it. Ops already being serviced run to
//!   completion — their completions must be drained and discarded by the
//!   caller. This makes the paper's "cancel redundant requests on decode
//!   success" policy reclaim real disk time instead of just wall clock.
//! * **Exactly one completion per submission.** Every submitted op
//!   produces exactly one [`Completion`] — serviced or cancelled — so a
//!   reactor can drive `received == submitted` without timeouts. Workers
//!   drain their queues before honouring shutdown.
//! * **Two scheduling classes.** Each disk keeps a foreground and a
//!   background FIFO ([`Priority`]); background (repair/scrub) ops are
//!   serviced only when no foreground op is queued, so a deep repair
//!   backlog can never starve serving traffic. Background queue depth is
//!   excluded from [`IoRing::load_map`]'s `queued` for the same reason.
//!
//! Workers share the blocking path's read-retry helper
//! ([`ShardedBackend::read_block_retry`]) so that per-disk fault budgets
//! and retry counters are consumed identically on both paths; the
//! differential suites assert committed state byte-identical with the
//! ring on and off.
//!
//! Each worker also exports live load telemetry — queue depth, in-flight
//! count, and an EWMA of per-op service time — behind the lock-free
//! [`IoRing::load_map`] snapshot, which feeds the queue-aware
//! [`robustore_schemes::AdaptiveReadPolicy`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use robustore_schemes::{DiskLoad, DiskLoadMap};

use crate::error::StoreError;
use crate::sharded::ShardedBackend;

/// Tuning knobs for an [`IoRing`], snapshotted from `SystemConfig`.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Max writes coalesced into one `commit_batch` dispatch (min 1).
    pub group_commit: usize,
    /// Read attempts per op (>= 1); transient faults retry up to this.
    pub read_attempts: u32,
    /// Base backoff before a read retry, doubled per attempt. Plain
    /// exponential (no jitter): the jittered sleep of the blocking path
    /// is wall-clock-only behaviour, and workers must stay seed-free.
    pub backoff_micros: u64,
}

/// One block operation submitted to a disk queue.
#[derive(Debug)]
pub enum SubmitOp {
    /// Fetch a block into `buf` (recycled scratch; handed back in the
    /// completion, including on cancellation).
    Read {
        /// Backend block key.
        key: u64,
        /// Scratch buffer the worker reads into.
        buf: Vec<u8>,
    },
    /// Store `data` as block `key`. Contiguous queued writes are
    /// coalesced across accesses into one group-commit dispatch.
    Write {
        /// Backend block key.
        key: u64,
        /// Encoded block payload.
        data: Vec<u8>,
    },
    /// Remove block `key`.
    Delete {
        /// Backend block key.
        key: u64,
    },
}

/// Outcome of one write within a (possibly batched) commit dispatch.
#[derive(Debug)]
pub enum WriteOutcome {
    /// The block landed.
    Done,
    /// The disk refused the write (admission/offline); the payload is
    /// handed back for redirecting without re-encoding.
    Refused {
        /// The refusal error (a `MissingBlock`-class soft failure).
        error: StoreError,
        /// The unconsumed block payload.
        data: Vec<u8>,
    },
    /// A hard mid-I/O fault consumed the block.
    Fault(StoreError),
    /// A hard fault earlier in the same batch aborted this entry before
    /// the disk looked at it (batches stop at the first hard fault).
    Aborted {
        /// The disk whose batch aborted.
        disk: usize,
    },
}

/// What happened to one submitted op.
#[derive(Debug)]
pub enum CompletionKind {
    /// A read was serviced (successfully or not).
    Read {
        /// `Ok` iff `buf` now holds the block bytes.
        result: Result<(), StoreError>,
        /// The scratch buffer handed back (contents valid only on `Ok`).
        buf: Vec<u8>,
        /// Transient-fault retries the worker performed for this op.
        retries: u64,
    },
    /// A write was serviced (possibly as part of a cross-access batch).
    Write(WriteOutcome),
    /// A delete was serviced.
    Delete(Result<(), StoreError>),
    /// The op was revoked by [`IoRing::cancel`] before the disk serviced
    /// it; the buffer/payload is handed back when the op carried one.
    Cancelled {
        /// Scratch or payload to recycle (`None` for deletes).
        buf: Option<Vec<u8>>,
    },
}

/// A completion event, delivered on the channel the submitter provided.
#[derive(Debug)]
pub struct Completion {
    /// Access id the op was tagged with.
    pub access: u64,
    /// Per-access sequence tag the op was tagged with.
    pub tag: u64,
    /// Disk the op was queued on.
    pub disk: usize,
    /// What happened.
    pub kind: CompletionKind,
}

/// Scheduling class for a submitted op. Foreground ops (client reads and
/// writes) always overtake queued background ops (repair/scrub traffic) on
/// the same disk, so a deep repair backlog can never starve serving
/// traffic. Within a class the queue stays strictly FIFO, preserving the
/// per-access ordering the group-commit contract relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Client-facing traffic; serviced first. The default.
    #[default]
    Foreground,
    /// Repair/scrub traffic; serviced only when no foreground op is
    /// queued. An op already being serviced is never preempted.
    Background,
}

struct Entry {
    access: u64,
    tag: u64,
    op: SubmitOp,
    done: Sender<Completion>,
}

struct QueueState {
    /// Foreground FIFO — drained before `background` is looked at.
    entries: VecDeque<Entry>,
    /// Background FIFO (repair traffic).
    background: VecDeque<Entry>,
    shutdown: bool,
}

struct DiskQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl DiskQueue {
    fn new() -> Self {
        DiskQueue {
            state: Mutex::new(QueueState {
                entries: VecDeque::new(),
                background: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }
}

/// EWMA smoothing factor for per-op service time. Small enough to ride
/// out one-off hiccups, large enough that a few completions reveal a
/// straggling disk.
const EWMA_ALPHA: f64 = 0.2;

/// Live load counters for one disk, updated lock-free around queue and
/// service events. `queued`/`in_flight` are multi-writer counters;
/// `ewma_bits` (an `f64` as bits) has a single writer — the disk's
/// worker — so plain relaxed load/store suffices.
#[derive(Debug, Default)]
struct DiskStat {
    /// Foreground queue depth. Background entries are tracked separately
    /// (`bg_queued`) and excluded here: they never delay a newly queued
    /// foreground op, so counting them would inflate the adaptive read
    /// policy's completion estimates.
    queued: AtomicU64,
    bg_queued: AtomicU64,
    in_flight: AtomicU64,
    ewma_bits: AtomicU64,
    /// Whether `ewma_bits` holds a real sample yet. A plain `old == 0.0`
    /// sentinel is wrong: a genuine 0µs sample (sub-µs in-memory op)
    /// would make the *next* sample re-seed the EWMA with full weight,
    /// discarding history.
    ewma_seeded: AtomicU64,
}

impl DiskStat {
    fn snapshot(&self) -> DiskLoad {
        DiskLoad {
            queued: self.queued.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            ewma_service_micros: f64::from_bits(self.ewma_bits.load(Ordering::Relaxed)),
        }
    }

    fn queued_for(&self, priority: Priority) -> &AtomicU64 {
        match priority {
            Priority::Foreground => &self.queued,
            Priority::Background => &self.bg_queued,
        }
    }

    /// Fold a measured per-op service time (µs) into the EWMA. Worker
    /// thread only (the seeded flag and bits are single-writer).
    fn record_service(&self, micros: f64) {
        let new = if self.ewma_seeded.swap(1, Ordering::Relaxed) == 0 {
            micros
        } else {
            let old = f64::from_bits(self.ewma_bits.load(Ordering::Relaxed));
            EWMA_ALPHA * micros + (1.0 - EWMA_ALPHA) * old
        };
        self.ewma_bits.store(new.to_bits(), Ordering::Relaxed);
    }
}

/// The reactor front-end: per-disk submission queues over a
/// [`ShardedBackend`], serviced by one worker thread per disk.
pub struct IoRing {
    queues: Arc<Vec<DiskQueue>>,
    stats: Arc<Vec<DiskStat>>,
    backend: Arc<ShardedBackend>,
    config: RingConfig,
    workers: Vec<JoinHandle<()>>,
}

impl IoRing {
    /// Start one worker per disk of `backend`.
    pub fn start(backend: Arc<ShardedBackend>, config: RingConfig) -> Self {
        let queues: Arc<Vec<DiskQueue>> =
            Arc::new((0..backend.num_disks()).map(|_| DiskQueue::new()).collect());
        let stats: Arc<Vec<DiskStat>> = Arc::new(
            (0..backend.num_disks())
                .map(|_| DiskStat::default())
                .collect(),
        );
        let workers = (0..backend.num_disks())
            .map(|disk| {
                let queues = queues.clone();
                let stats = stats.clone();
                let backend = backend.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("io-ring-{disk}"))
                    .spawn(move || {
                        worker_loop(disk, &queues[disk], &stats[disk], &backend, &config)
                    })
                    .expect("spawn io-ring worker")
            })
            .collect();
        IoRing {
            queues,
            stats,
            backend,
            config,
            workers,
        }
    }

    /// Snapshot every disk's live load — queue depth, in-flight count,
    /// EWMA service latency — for the queue-aware read policy. Lock-free:
    /// three relaxed atomic loads per disk.
    pub fn load_map(&self) -> DiskLoadMap {
        DiskLoadMap::from_loads(self.stats.iter().map(DiskStat::snapshot).collect())
    }

    /// Queue `op` on `disk` for access `access` with per-access sequence
    /// tag `tag`; the completion is sent to `done`. A disk id past the
    /// end of the backend is serviced inline on the caller thread (the
    /// `ShardedBackend` turns it into a graceful refusal), so submitters
    /// need no bounds checks. Equivalent to [`IoRing::submit_with`] at
    /// [`Priority::Foreground`].
    pub fn submit(
        &self,
        disk: usize,
        access: u64,
        tag: u64,
        op: SubmitOp,
        done: &Sender<Completion>,
    ) {
        self.submit_with(disk, access, tag, op, Priority::Foreground, done);
    }

    /// [`IoRing::submit`] with an explicit scheduling class. Background
    /// ops wait behind every queued foreground op on the same disk.
    pub fn submit_with(
        &self,
        disk: usize,
        access: u64,
        tag: u64,
        op: SubmitOp,
        priority: Priority,
        done: &Sender<Completion>,
    ) {
        match self.queues.get(disk) {
            Some(queue) => {
                let mut state = queue.state.lock().unwrap();
                let entry = Entry {
                    access,
                    tag,
                    op,
                    done: done.clone(),
                };
                match priority {
                    Priority::Foreground => state.entries.push_back(entry),
                    Priority::Background => state.background.push_back(entry),
                }
                self.stats[disk]
                    .queued_for(priority)
                    .fetch_add(1, Ordering::Relaxed);
                drop(state);
                queue.ready.notify_one();
            }
            None => {
                let kind = service_op(disk, op, &self.backend, &self.config);
                let _ = done.send(Completion {
                    access,
                    tag,
                    disk,
                    kind,
                });
            }
        }
    }

    /// Background (repair-class) queue depth per disk. Telemetry for the
    /// repair service and its tests; not part of [`IoRing::load_map`]
    /// because background ops never delay foreground completions.
    pub fn background_backlog(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.bg_queued.load(Ordering::Relaxed))
            .collect()
    }

    /// Revoke every still-queued op of `access` on every disk. Each
    /// revoked op completes as [`CompletionKind::Cancelled`] with its
    /// buffer handed back; ops a worker has already started run to
    /// completion and must be drained by the caller.
    pub fn cancel(&self, access: u64) {
        for (disk, queue) in self.queues.iter().enumerate() {
            let removed: Vec<Entry> = {
                let mut state = queue.state.lock().unwrap();
                let state = &mut *state;
                let mut removed = Vec::new();
                for (priority, queue_of) in [
                    (Priority::Foreground, &mut state.entries),
                    (Priority::Background, &mut state.background),
                ] {
                    let mut keep = VecDeque::with_capacity(queue_of.len());
                    let before = removed.len();
                    for entry in queue_of.drain(..) {
                        if entry.access == access {
                            removed.push(entry);
                        } else {
                            keep.push_back(entry);
                        }
                    }
                    *queue_of = keep;
                    self.stats[disk]
                        .queued_for(priority)
                        .fetch_sub((removed.len() - before) as u64, Ordering::Relaxed);
                }
                removed
            };
            for entry in removed {
                let buf = match entry.op {
                    SubmitOp::Read { buf, .. } => Some(buf),
                    SubmitOp::Write { data, .. } => Some(data),
                    SubmitOp::Delete { .. } => None,
                };
                let _ = entry.done.send(Completion {
                    access: entry.access,
                    tag: entry.tag,
                    disk,
                    kind: CompletionKind::Cancelled { buf },
                });
            }
        }
    }
}

impl Drop for IoRing {
    fn drop(&mut self) {
        for queue in self.queues.iter() {
            let mut state = queue.state.lock().unwrap();
            state.shutdown = true;
            drop(state);
            queue.ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker main loop: pop ops (coalescing contiguous write runs across
/// accesses), service them *outside* the queue lock, and deliver exactly
/// one completion per op. Pending entries are drained before shutdown is
/// honoured.
fn worker_loop(
    disk: usize,
    queue: &DiskQueue,
    stat: &DiskStat,
    backend: &ShardedBackend,
    config: &RingConfig,
) {
    let batch_cap = config.group_commit.max(1);
    loop {
        let (popped, priority): (Vec<Entry>, Priority) = {
            let mut state = queue.state.lock().unwrap();
            loop {
                if !state.entries.is_empty() || !state.background.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = queue.ready.wait(state).unwrap();
            }
            // Strict priority: the background queue is looked at only
            // when no foreground op is queued. Write runs coalesce within
            // one class so a batch never smuggles background writes ahead
            // of foreground ones.
            let priority = if state.entries.is_empty() {
                Priority::Background
            } else {
                Priority::Foreground
            };
            let class_queue = match priority {
                Priority::Foreground => &mut state.entries,
                Priority::Background => &mut state.background,
            };
            let popped = if matches!(
                class_queue.front().map(|e| &e.op),
                Some(SubmitOp::Write { .. })
            ) {
                // Cross-access group commit: take the contiguous run of
                // queued writes, whatever access they came from.
                let mut batch = Vec::new();
                while batch.len() < batch_cap
                    && matches!(
                        class_queue.front().map(|e| &e.op),
                        Some(SubmitOp::Write { .. })
                    )
                {
                    batch.push(class_queue.pop_front().unwrap());
                }
                batch
            } else {
                vec![class_queue.pop_front().unwrap()]
            };
            (popped, priority)
        };
        let n = popped.len() as u64;
        stat.queued_for(priority).fetch_sub(n, Ordering::Relaxed);
        stat.in_flight.fetch_add(n, Ordering::Relaxed);
        // The stat updates below happen *before* the completion sends, so
        // a submitter that has drained all its completions observes its
        // own ops fully retired from the load map — a quiescent reactor
        // never sees ghost in-flight residue from its previous access.
        if matches!(popped.first().map(|e| &e.op), Some(SubmitOp::Write { .. })) {
            service_write_batch(disk, popped, stat, backend);
        } else {
            for entry in popped {
                let begun = std::time::Instant::now();
                let kind = service_op(disk, entry.op, backend, config);
                stat.record_service(begun.elapsed().as_secs_f64() * 1e6);
                stat.in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = entry.done.send(Completion {
                    access: entry.access,
                    tag: entry.tag,
                    disk,
                    kind,
                });
            }
        }
    }
}

/// Land a run of writes in one `commit_batch` dispatch and fan the
/// per-entry outcomes back out to their submitters. The batch contract
/// (entries in order, stop at the first hard fault) means a result
/// vector shorter than the batch marks the tail entries as aborted.
fn service_write_batch(
    disk: usize,
    entries: Vec<Entry>,
    stat: &DiskStat,
    backend: &ShardedBackend,
) {
    let n = entries.len() as u64;
    let mut meta = Vec::with_capacity(entries.len());
    let mut batch = Vec::with_capacity(entries.len());
    for entry in entries {
        let Entry {
            access,
            tag,
            op,
            done,
        } = entry;
        let SubmitOp::Write { key, data } = op else {
            unreachable!("write batch holds only writes");
        };
        meta.push((access, tag, done));
        batch.push((key, data));
    }
    let begun = std::time::Instant::now();
    let results = backend.commit_batch(disk, batch);
    // One EWMA sample per op (the batch's wall time split evenly), folded
    // before the sends for the same reason as the read path.
    stat.record_service(begun.elapsed().as_secs_f64() * 1e6 / n as f64);
    stat.in_flight.fetch_sub(n, Ordering::Relaxed);
    let mut results = results.into_iter();
    for (access, tag, done) in meta {
        let outcome = match results.next() {
            Some(Ok(())) => WriteOutcome::Done,
            Some(Err(rw)) => refusal_outcome(rw),
            None => WriteOutcome::Aborted { disk },
        };
        let _ = done.send(Completion {
            access,
            tag,
            disk,
            kind: CompletionKind::Write(outcome),
        });
    }
}

/// Service one op on the calling thread, replicating the blocking read
/// retry policy.
fn service_op(
    disk: usize,
    op: SubmitOp,
    backend: &ShardedBackend,
    config: &RingConfig,
) -> CompletionKind {
    match op {
        SubmitOp::Read { key, mut buf } => {
            let (result, retries) =
                backend.read_block_retry(disk, key, &mut buf, config.read_attempts, |attempt| {
                    if config.backoff_micros > 0 {
                        let us = config.backoff_micros << (attempt - 1);
                        std::thread::sleep(std::time::Duration::from_micros(us));
                    }
                });
            CompletionKind::Read {
                result,
                buf,
                retries,
            }
        }
        SubmitOp::Write { key, data } => {
            let outcome = match backend.write_block(disk, key, data) {
                Ok(()) => WriteOutcome::Done,
                Err(rw) => refusal_outcome(rw),
            };
            CompletionKind::Write(outcome)
        }
        SubmitOp::Delete { key } => CompletionKind::Delete(backend.delete_block(disk, key)),
    }
}

/// Classify a failed write: refusals hand the payload back, hard faults
/// consume it.
fn refusal_outcome(rw: crate::backend::RefusedWrite) -> WriteOutcome {
    match rw.error {
        StoreError::MissingBlock { .. } => WriteOutcome::Refused {
            error: rw.error,
            data: rw.data,
        },
        error => WriteOutcome::Fault(error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;
    use std::sync::mpsc;

    fn ring(disks: usize) -> IoRing {
        let backend = Arc::new(ShardedBackend::new(
            Box::new(InMemoryBackend::uniform(disks, 10e6)),
            true,
        ));
        IoRing::start(
            backend,
            RingConfig {
                group_commit: 4,
                read_attempts: 3,
                backoff_micros: 0,
            },
        )
    }

    #[test]
    fn ring_write_read_delete_roundtrip() {
        let r = ring(2);
        let (tx, rx) = mpsc::channel();
        r.submit(
            1,
            7,
            0,
            SubmitOp::Write {
                key: 42,
                data: vec![9; 16],
            },
            &tx,
        );
        let c = rx.recv().unwrap();
        assert_eq!((c.access, c.tag, c.disk), (7, 0, 1));
        assert!(matches!(c.kind, CompletionKind::Write(WriteOutcome::Done)));

        r.submit(
            1,
            7,
            1,
            SubmitOp::Read {
                key: 42,
                buf: Vec::new(),
            },
            &tx,
        );
        let c = rx.recv().unwrap();
        match c.kind {
            CompletionKind::Read {
                result,
                buf,
                retries,
            } => {
                result.unwrap();
                assert_eq!(buf, vec![9; 16]);
                assert_eq!(retries, 0);
            }
            other => panic!("unexpected completion {other:?}"),
        }

        r.submit(1, 7, 2, SubmitOp::Delete { key: 42 }, &tx);
        let c = rx.recv().unwrap();
        assert!(matches!(c.kind, CompletionKind::Delete(Ok(()))));

        r.submit(
            1,
            7,
            3,
            SubmitOp::Read {
                key: 42,
                buf: Vec::new(),
            },
            &tx,
        );
        let c = rx.recv().unwrap();
        assert!(matches!(
            c.kind,
            CompletionKind::Read {
                result: Err(StoreError::MissingBlock { .. }),
                ..
            }
        ));
    }

    #[test]
    fn ring_out_of_range_disk_refuses_inline() {
        let r = ring(1);
        let (tx, rx) = mpsc::channel();
        r.submit(
            9,
            1,
            0,
            SubmitOp::Write {
                key: 0,
                data: vec![1],
            },
            &tx,
        );
        let c = rx.recv().unwrap();
        assert!(matches!(
            c.kind,
            CompletionKind::Write(WriteOutcome::Refused { .. })
        ));
        r.submit(
            9,
            1,
            1,
            SubmitOp::Read {
                key: 0,
                buf: Vec::new(),
            },
            &tx,
        );
        let c = rx.recv().unwrap();
        assert!(matches!(
            c.kind,
            CompletionKind::Read { result: Err(_), .. }
        ));
    }

    #[test]
    fn ring_cancel_hands_buffers_back() {
        // Queue ops on an offline-free ring but cancel before servicing
        // can be guaranteed racy; instead cancel an access whose ops are
        // behind a long queue on one disk by submitting from this thread
        // and cancelling immediately — any op the worker already took
        // completes as a real completion, the rest come back Cancelled.
        let r = ring(1);
        let (tx, rx) = mpsc::channel();
        for tag in 0..64u64 {
            r.submit(
                0,
                5,
                tag,
                SubmitOp::Read {
                    key: tag,
                    buf: Vec::new(),
                },
                &tx,
            );
        }
        r.cancel(5);
        let mut cancelled = 0;
        let mut serviced = 0;
        for _ in 0..64 {
            match rx.recv().unwrap().kind {
                CompletionKind::Cancelled { buf } => {
                    assert!(buf.is_some(), "read cancels return the scratch buffer");
                    cancelled += 1;
                }
                CompletionKind::Read { .. } => serviced += 1,
                other => panic!("unexpected completion {other:?}"),
            }
        }
        assert_eq!(cancelled + serviced, 64);
        // Exactly one completion each: the channel must now be empty.
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn ring_cancel_leaves_other_accesses_queued() {
        let r = ring(1);
        let (tx, rx) = mpsc::channel();
        for tag in 0..8u64 {
            let access = if tag % 2 == 0 { 1 } else { 2 };
            r.submit(0, access, tag, SubmitOp::Delete { key: 1000 + tag }, &tx);
        }
        r.cancel(1);
        let mut outcomes = Vec::new();
        for _ in 0..8 {
            let c = rx.recv().unwrap();
            outcomes.push((c.access, matches!(c.kind, CompletionKind::Cancelled { .. })));
        }
        // Every access-2 op was serviced, never cancelled.
        assert!(outcomes
            .iter()
            .all(|&(access, cancelled)| access == 1 || !cancelled));
    }

    #[test]
    fn ring_load_map_tracks_service_and_drains() {
        let r = ring(2);
        let (tx, rx) = mpsc::channel();
        for tag in 0..16u64 {
            r.submit(
                0,
                1,
                tag,
                SubmitOp::Write {
                    key: tag,
                    data: vec![1; 32],
                },
                &tx,
            );
        }
        for _ in 0..16 {
            rx.recv().unwrap();
        }
        // Give the worker a beat to finish its post-send accounting.
        for _ in 0..100 {
            let l = r.load_map();
            let d0 = *l.get(0).unwrap();
            if d0.queued == 0 && d0.in_flight == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let l = r.load_map();
        assert!(!l.is_empty());
        let d0 = *l.get(0).unwrap();
        assert_eq!(d0.queued, 0, "all ops drained");
        assert_eq!(d0.in_flight, 0);
        assert!(
            d0.ewma_service_micros > 0.0,
            "serviced ops leave an EWMA sample"
        );
        let d1 = *l.get(1).unwrap();
        assert_eq!(
            d1.ewma_service_micros, 0.0,
            "idle disk has no service sample"
        );
        assert!(l.get(2).is_none());
    }

    #[test]
    fn ewma_zero_sample_does_not_reseed() {
        // Regression: a genuine 0µs sample used to store 0.0, which the
        // next sample mistook for "unseeded" and re-seeded the EWMA with
        // full weight, discarding history.
        let s = DiskStat::default();
        s.record_service(100.0);
        s.record_service(0.0); // sub-µs in-memory op rounds down to zero
        s.record_service(1000.0);
        let e = s.snapshot().ewma_service_micros;
        // 100 → 0.2·0 + 0.8·100 = 80 → 0.2·1000 + 0.8·80 = 264. The buggy
        // sentinel would have re-seeded to 1000.
        assert!((e - 264.0).abs() < 1e-9, "ewma {e} should be 264");
    }

    #[test]
    fn ring_background_ops_wait_for_foreground() {
        // Park the single worker on a slow foreground op (a missing-key
        // read with real retry backoff), queue background deletes and
        // *then* foreground deletes behind it, and check that strict
        // priority services every foreground op first anyway.
        let backend = Arc::new(ShardedBackend::new(
            Box::new(InMemoryBackend::uniform(1, 10e6)),
            true,
        ));
        let r = IoRing::start(
            backend,
            RingConfig {
                group_commit: 4,
                read_attempts: 3,
                backoff_micros: 20_000, // ~60ms parked on the first read
            },
        );
        let (tx, rx) = mpsc::channel();
        r.submit(
            0,
            9,
            0,
            SubmitOp::Read {
                key: 777,
                buf: Vec::new(),
            },
            &tx,
        );
        for tag in 0..4u64 {
            r.submit_with(
                0,
                2,
                tag,
                SubmitOp::Delete { key: 100 + tag },
                Priority::Background,
                &tx,
            );
        }
        assert_eq!(r.background_backlog(), vec![4]);
        for tag in 0..4u64 {
            r.submit(0, 1, tag, SubmitOp::Delete { key: 200 + tag }, &tx);
        }
        let mut order = Vec::new();
        for _ in 0..9 {
            let c = rx.recv().unwrap();
            if matches!(c.kind, CompletionKind::Delete(_)) {
                order.push(c.access);
            }
        }
        assert_eq!(order, vec![1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(r.background_backlog(), vec![0]);
    }

    #[test]
    fn ring_cancel_revokes_background_ops_too() {
        let r = ring(1);
        let (tx, rx) = mpsc::channel();
        for tag in 0..32u64 {
            r.submit_with(
                0,
                5,
                tag,
                SubmitOp::Read {
                    key: tag,
                    buf: Vec::new(),
                },
                Priority::Background,
                &tx,
            );
        }
        r.cancel(5);
        let (mut cancelled, mut serviced) = (0, 0);
        for _ in 0..32 {
            match rx.recv().unwrap().kind {
                CompletionKind::Cancelled { buf } => {
                    assert!(buf.is_some());
                    cancelled += 1;
                }
                CompletionKind::Read { .. } => serviced += 1,
                other => panic!("unexpected completion {other:?}"),
            }
        }
        assert_eq!(cancelled + serviced, 32);
        assert_eq!(r.background_backlog(), vec![0]);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn ring_batches_contiguous_writes() {
        let backend = Arc::new(ShardedBackend::new(
            Box::new(InMemoryBackend::uniform(1, 10e6)),
            true,
        ));
        let r = IoRing::start(
            backend.clone(),
            RingConfig {
                group_commit: 4,
                read_attempts: 1,
                backoff_micros: 0,
            },
        );
        let (tx, rx) = mpsc::channel();
        for tag in 0..12u64 {
            r.submit(
                0,
                tag % 3, // three interleaved accesses share the batch
                tag,
                SubmitOp::Write {
                    key: tag,
                    data: vec![tag as u8; 8],
                },
                &tx,
            );
        }
        for _ in 0..12 {
            let c = rx.recv().unwrap();
            assert!(matches!(c.kind, CompletionKind::Write(WriteOutcome::Done)));
        }
        drop(r);
        // All 12 blocks landed despite batching across accesses.
        assert_eq!(backend.disk_used(0), 12 * 8);
        assert_eq!(backend.writes(), 12);
    }
}
