//! QoS options for `open` (Appendix B).
//!
//! The open call carries a traffic profile and performance requirements;
//! the layout planner turns them into a disk count and a redundancy
//! degree. Unset fields fall back to planner defaults derived from the
//! cluster's measured characteristics.

/// Quality-of-service options attached to an `open`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QosOptions {
    /// Target aggregate access bandwidth, bytes/second. Drives the disk
    /// count: H ≥ target / average-disk-bandwidth (§5.3.1).
    pub target_bandwidth: Option<f64>,
    /// Maximum acceptable access latency, seconds (informational; admission
    /// controllers may use it for scheduling).
    pub latency_target: Option<f64>,
    /// Explicit degree of data redundancy D; otherwise the planner sizes it
    /// from disk-performance spread (§5.3.2).
    pub redundancy: Option<f64>,
    /// Explicit disk count; overrides the bandwidth-derived count.
    pub num_disks: Option<usize>,
    /// Storage capacity to reserve, bytes (traffic profile).
    pub reserve_bytes: Option<u64>,
    /// Relative priority for priority-based admission (unused by the
    /// capacity-based controller; carried for completeness).
    pub priority: u8,
    /// Pin the layout to exactly these disks, bypassing dynamic
    /// load/space/availability selection. Dynamic selection reads live
    /// usage, so under concurrent accesses the chosen disks depend on
    /// interleaving; pinning makes the plan a pure function of the
    /// request — what the concurrency benchmarks and differential tests
    /// need for byte-identical committed state across thread counts.
    pub pinned_disks: Option<Vec<usize>>,
}

impl QosOptions {
    /// No requirements: planner defaults throughout.
    pub fn best_effort() -> Self {
        QosOptions::default()
    }

    /// Request a target bandwidth.
    pub fn with_target_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.target_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Request an explicit redundancy degree.
    pub fn with_redundancy(mut self, d: f64) -> Self {
        self.redundancy = Some(d);
        self
    }

    /// Request an explicit disk count.
    pub fn with_num_disks(mut self, h: usize) -> Self {
        self.num_disks = Some(h);
        self
    }

    /// Pin the layout to exactly these disks (in this order).
    pub fn with_pinned_disks(mut self, disks: Vec<usize>) -> Self {
        self.pinned_disks = Some(disks);
        self
    }

    /// Basic consistency checks.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(b) = self.target_bandwidth {
            if b <= 0.0 {
                return Err("target bandwidth must be positive".into());
            }
        }
        if let Some(d) = self.redundancy {
            if d < 0.0 {
                return Err("redundancy cannot be negative".into());
            }
        }
        if self.num_disks == Some(0) {
            return Err("disk count must be positive".into());
        }
        if let Some(pinned) = &self.pinned_disks {
            if pinned.is_empty() {
                return Err("pinned disk list cannot be empty".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let q = QosOptions::best_effort()
            .with_target_bandwidth(1.2e9)
            .with_redundancy(3.0)
            .with_num_disks(64);
        assert_eq!(q.target_bandwidth, Some(1.2e9));
        assert_eq!(q.redundancy, Some(3.0));
        assert_eq!(q.num_disks, Some(64));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn validation() {
        assert!(QosOptions::best_effort().validate().is_ok());
        assert!(QosOptions::default()
            .with_target_bandwidth(-1.0)
            .validate()
            .is_err());
        assert!(QosOptions::default()
            .with_redundancy(-0.1)
            .validate()
            .is_err());
        assert!(QosOptions::default().with_num_disks(0).validate().is_err());
        assert!(QosOptions::default()
            .with_pinned_disks(vec![])
            .validate()
            .is_err());
        assert!(QosOptions::default()
            .with_pinned_disks(vec![0, 3])
            .validate()
            .is_ok());
    }
}
