//! Reader/writer file locks with epoch-based stale-lock reclaim.
//!
//! Both metadata planes — the in-memory [`crate::MetadataServer`] and the
//! durable [`crate::metastore::Metastore`] — hand out per-file locks on
//! `open` and expect a balanced `close`. A client that crashes between
//! the two used to leave its `LockState` held forever, wedging the file
//! for every later writer. The fix is lease-style: every acquisition (and
//! every reader joining an existing read lock) stamps the lock with the
//! table's current *epoch*. A supervising layer calls
//! [`LockTable::begin_epoch`] on its own schedule (a heartbeat round, a
//! scrub cycle); any lock whose stamp has fallen `lease_epochs` behind is
//! presumed orphaned by a crashed holder and is silently reclaimed by the
//! next conflicting `open`. Holders that are alive refresh their stamp
//! whenever they touch the lock, so a legitimate long reader is only ever
//! reclaimed if the supervisor advances epochs faster than the holder
//! does work — the lease length is the supervisor's promise, not ours.
//!
//! With no `begin_epoch` calls the epoch never moves and behaviour is
//! exactly the pre-reclaim semantics: locks live until closed.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::metadata::AccessMode;

/// Default lease length: a lock survives the epoch it was stamped in and
/// the next one, and is reclaimable from the second advance on.
pub const DEFAULT_LOCK_LEASE_EPOCHS: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Readers(usize),
    Writer,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LockEntry {
    kind: LockKind,
    /// Epoch of the most recent acquisition or refresh.
    stamp: u64,
}

/// The lock table: file name → lock state, plus the reclaim epoch.
#[derive(Debug, Clone)]
pub struct LockTable {
    locks: HashMap<String, LockEntry>,
    epoch: u64,
    lease_epochs: u64,
    reclaimed: u64,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable {
            locks: HashMap::new(),
            epoch: 0,
            lease_epochs: DEFAULT_LOCK_LEASE_EPOCHS,
            reclaimed: 0,
        }
    }
}

impl LockTable {
    /// An empty table at epoch 0 with the default lease.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Override the lease length (epochs a lock may lag before it is
    /// presumed orphaned). Minimum 1: a lock is never reclaimable in the
    /// epoch that stamped it.
    pub fn set_lease_epochs(&mut self, lease: u64) {
        self.lease_epochs = lease.max(1);
    }

    /// Advance the reclaim epoch. Returns the new epoch.
    pub fn begin_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Locks reclaimed from presumed-crashed holders so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Currently held (non-stale) locks.
    pub fn held(&self) -> usize {
        self.locks.values().filter(|e| !self.is_stale(e)).count()
    }

    fn is_stale(&self, entry: &LockEntry) -> bool {
        self.epoch.saturating_sub(entry.stamp) >= self.lease_epochs
    }

    /// Take the lock for `mode`, reclaiming a stale entry if one is in
    /// the way. A live reader joining refreshes the stamp.
    pub fn acquire(&mut self, name: &str, mode: AccessMode) -> Result<(), StoreError> {
        let state = match self.locks.get(name) {
            Some(e) if self.is_stale(e) => {
                self.reclaimed += 1;
                None
            }
            s => s.copied(),
        };
        let kind = match (mode, state.map(|e| e.kind)) {
            (AccessMode::Read, None) => LockKind::Readers(1),
            (AccessMode::Read, Some(LockKind::Readers(n))) => LockKind::Readers(n + 1),
            (AccessMode::Read, Some(LockKind::Writer)) => {
                return Err(StoreError::LockConflict(name.to_string()))
            }
            (AccessMode::Write, None) => LockKind::Writer,
            (AccessMode::Write, Some(_)) => return Err(StoreError::LockConflict(name.to_string())),
        };
        self.locks.insert(
            name.to_string(),
            LockEntry {
                kind,
                stamp: self.epoch,
            },
        );
        Ok(())
    }

    /// Release the lock taken by [`LockTable::acquire`]. Panics on an
    /// unbalanced close — that is a caller bug, not a runtime condition.
    /// A holder whose lock was reclaimed and *not* reacquired closes into
    /// the unbalanced panic like any other ghost; one that closes after a
    /// successor reacquired releases the successor's lock — the ABA
    /// hazard of advancing epochs faster than live holders heartbeat.
    /// The lease length is the supervisor's tool for keeping that window
    /// acceptable.
    pub fn release(&mut self, name: &str, mode: AccessMode) {
        let state = self.locks.get(name).copied();
        match (mode, state.map(|e| e.kind)) {
            (AccessMode::Read, Some(LockKind::Readers(1))) => {
                self.locks.remove(name);
            }
            (AccessMode::Read, Some(LockKind::Readers(n))) if n > 1 => {
                let stamp = state.expect("entry present").stamp;
                self.locks.insert(
                    name.to_string(),
                    LockEntry {
                        kind: LockKind::Readers(n - 1),
                        stamp,
                    },
                );
            }
            (AccessMode::Write, Some(LockKind::Writer)) => {
                self.locks.remove(name);
            }
            (m, s) => panic!("unbalanced close: mode {m:?}, lock state {s:?}"),
        }
    }

    /// Whether `name` is write-locked (commit/remove gate). A stale
    /// writer no longer counts.
    pub fn holds_writer(&self, name: &str) -> bool {
        matches!(
            self.locks.get(name),
            Some(e) if e.kind == LockKind::Writer && !self.is_stale(e)
        )
    }

    /// Upgrade a sole-reader lock to the writer lock (read-repair's
    /// commit window). `false` (lock untouched) with other readers, a
    /// writer, or no lock. A stale entry counts as no lock.
    pub fn try_upgrade(&mut self, name: &str) -> bool {
        match self.locks.get(name) {
            Some(e) if e.kind == LockKind::Readers(1) && !self.is_stale(e) => {
                self.locks.insert(
                    name.to_string(),
                    LockEntry {
                        kind: LockKind::Writer,
                        stamp: self.epoch,
                    },
                );
                true
            }
            _ => false,
        }
    }

    /// Downgrade the writer lock back to a single reader, undoing
    /// [`LockTable::try_upgrade`].
    pub fn downgrade(&mut self, name: &str) {
        match self.locks.get(name) {
            Some(e) if e.kind == LockKind::Writer => {
                self.locks.insert(
                    name.to_string(),
                    LockEntry {
                        kind: LockKind::Readers(1),
                        stamp: self.epoch,
                    },
                );
            }
            s => panic!("downgrade without writer lock: {s:?}"),
        }
    }

    /// Drop every lock. Recovery uses this: a rebuilt metadata plane
    /// cannot tell live holders from crashed ones, so it reclaims
    /// conservatively — every pre-crash lock belonged to a handle that
    /// cannot legally touch the recovered image (its commits would be
    /// refused anyway), and live clients re-open.
    pub fn clear(&mut self) {
        self.reclaimed += self.locks.len() as u64;
        self.locks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_writer_is_reclaimed_after_lease() {
        let mut t = LockTable::new();
        t.acquire("f", AccessMode::Write).unwrap();
        // Same epoch: conflict.
        assert!(t.acquire("f", AccessMode::Write).is_err());
        t.begin_epoch();
        // One epoch behind: still within the default 2-epoch lease.
        assert!(t.acquire("f", AccessMode::Write).is_err());
        t.begin_epoch();
        // Two behind: presumed crashed, reclaimed.
        t.acquire("f", AccessMode::Write).unwrap();
        assert_eq!(t.reclaimed(), 1);
    }

    #[test]
    fn live_reader_refreshes_stamp() {
        let mut t = LockTable::new();
        t.acquire("f", AccessMode::Read).unwrap();
        t.begin_epoch();
        // A second reader joining refreshes the shared stamp.
        t.acquire("f", AccessMode::Read).unwrap();
        t.begin_epoch();
        // Stamp is 1 epoch behind: lock still held against a writer.
        assert!(t.acquire("f", AccessMode::Write).is_err());
        t.release("f", AccessMode::Read);
        t.release("f", AccessMode::Read);
        t.acquire("f", AccessMode::Write).unwrap();
    }

    #[test]
    fn successor_reclaims_and_holds() {
        let mut t = LockTable::new();
        t.acquire("f", AccessMode::Write).unwrap();
        t.begin_epoch();
        t.begin_epoch();
        // Successor reclaims the orphan and takes a fresh writer lock
        // stamped at the current epoch.
        t.acquire("f", AccessMode::Write).unwrap();
        assert!(t.holds_writer("f"));
        assert_eq!(t.reclaimed(), 1);
    }

    #[test]
    fn held_ignores_stale_entries() {
        let mut t = LockTable::new();
        t.acquire("a", AccessMode::Read).unwrap();
        t.acquire("b", AccessMode::Write).unwrap();
        assert_eq!(t.held(), 2);
        t.begin_epoch();
        t.begin_epoch();
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn clear_counts_as_reclaim() {
        let mut t = LockTable::new();
        t.acquire("a", AccessMode::Read).unwrap();
        t.acquire("b", AccessMode::Write).unwrap();
        t.clear();
        assert_eq!(t.reclaimed(), 2);
        t.acquire("a", AccessMode::Write).unwrap();
        t.acquire("b", AccessMode::Write).unwrap();
    }

    #[test]
    fn upgrade_respects_staleness() {
        let mut t = LockTable::new();
        t.acquire("f", AccessMode::Read).unwrap();
        t.begin_epoch();
        t.begin_epoch();
        // The read lock is stale: upgrading it would hand a crashed
        // reader's ghost a writer lock.
        assert!(!t.try_upgrade("f"));
    }
}
