//! Error type for the RobuSTore framework.

use robustore_erasure::CodingError;

/// Errors surfaced by the client API and its supporting services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named file does not exist.
    NotFound(String),
    /// The file already exists (exclusive create).
    AlreadyExists(String),
    /// The file is locked in a conflicting mode.
    LockConflict(String),
    /// The handle was opened for a different access type.
    WrongMode,
    /// The handle is stale (file closed or metadata changed underneath).
    StaleHandle,
    /// A storage server refused the access (admission control).
    AdmissionDenied {
        /// The refusing server/disk.
        disk: usize,
    },
    /// Too few disks admitted/available to satisfy the plan.
    InsufficientDisks {
        /// Disks obtained.
        got: usize,
        /// Disks required by the plan.
        need: usize,
    },
    /// A disk had no copy of a requested block.
    MissingBlock {
        /// The disk queried.
        disk: usize,
        /// The block id.
        block: u64,
    },
    /// A storage server failed mid-I/O (hard media/controller error, real
    /// or injected). Unlike [`StoreError::MissingBlock`], which a rateless
    /// write routes around, this aborts the access — the commit protocol
    /// rolls the new generation back.
    DiskFault {
        /// The failing disk.
        disk: usize,
    },
    /// A storage server failed a read with a *transient* error (timeout,
    /// controller reset): the block is intact and a bounded retry
    /// ([`crate::ReadRetry`]) is expected to succeed. After the retry
    /// budget is exhausted the reader demotes the block to missing.
    TransientIo {
        /// The disk whose read transiently failed.
        disk: usize,
    },
    /// Erasure coding failed.
    Coding(CodingError),
    /// Access control rejected the credential chain.
    AccessDenied(String),
    /// Offset/length out of the file's range.
    OutOfRange,
    /// A metadata replica is down or failed mid-operation (real or
    /// injected). One replica failing is routine — quorum absorbs it;
    /// this surfaces only from direct replica access.
    MetaReplicaDown(String),
    /// A metadata shard could not reach a majority of its replicas, so
    /// a commit cannot be made durable. The namespace image is left
    /// unchanged; the caller's write is *not* committed.
    MetaQuorumLost {
        /// The shard that lost quorum.
        shard: usize,
        /// Replica acks obtained.
        acks: usize,
        /// Acks required for majority.
        need: usize,
    },
    /// A filesystem-level I/O error from a durable metadata replica.
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(n) => write!(f, "file not found: {n}"),
            StoreError::AlreadyExists(n) => write!(f, "file already exists: {n}"),
            StoreError::LockConflict(n) => write!(f, "file lock conflict: {n}"),
            StoreError::WrongMode => write!(f, "handle opened for a different access type"),
            StoreError::StaleHandle => write!(f, "stale file handle"),
            StoreError::AdmissionDenied { disk } => {
                write!(f, "admission denied by storage server of disk {disk}")
            }
            StoreError::InsufficientDisks { got, need } => {
                write!(f, "insufficient disks: got {got}, need {need}")
            }
            StoreError::MissingBlock { disk, block } => {
                write!(f, "disk {disk} has no block {block}")
            }
            StoreError::DiskFault { disk } => {
                write!(f, "disk {disk} failed mid-I/O")
            }
            StoreError::TransientIo { disk } => {
                write!(f, "disk {disk} read failed transiently")
            }
            StoreError::Coding(e) => write!(f, "coding error: {e}"),
            StoreError::AccessDenied(why) => write!(f, "access denied: {why}"),
            StoreError::OutOfRange => write!(f, "offset/length out of range"),
            StoreError::MetaReplicaDown(who) => {
                write!(f, "metadata replica down: {who}")
            }
            StoreError::MetaQuorumLost { shard, acks, need } => {
                write!(
                    f,
                    "metadata shard {shard} lost quorum: {acks} of {need} required acks"
                )
            }
            StoreError::Io(e) => write!(f, "metadata replica I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Coding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodingError> for StoreError {
    fn from(e: CodingError) -> Self {
        StoreError::Coding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StoreError::NotFound("x".into()).to_string(),
            "file not found: x"
        );
        assert_eq!(
            StoreError::InsufficientDisks { got: 3, need: 8 }.to_string(),
            "insufficient disks: got 3, need 8"
        );
        assert_eq!(
            StoreError::DiskFault { disk: 2 }.to_string(),
            "disk 2 failed mid-I/O"
        );
        assert_eq!(
            StoreError::TransientIo { disk: 4 }.to_string(),
            "disk 4 read failed transiently"
        );
    }

    #[test]
    fn coding_error_converts_and_sources() {
        use std::error::Error;
        let e: StoreError = CodingError::DecodeFailed.into();
        assert!(matches!(e, StoreError::Coding(_)));
        assert!(e.source().is_some());
        assert!(StoreError::WrongMode.source().is_none());
    }
}
