//! Filesystem-backed storage backend.
//!
//! [`FileBackend`] persists coded blocks as files under a root directory —
//! one subdirectory per simulated disk, one file per block — so a
//! RobuSTore [`crate::System`] can survive process restarts. It is the
//! "real system implementation" seed of §7.3: the same client, metadata,
//! and coding stack, with durable block storage underneath.
//!
//! Layout: `<root>/disk-<id>/<block-key-hex>.blk`, plus a `speeds` file
//! recording the per-disk nominal bandwidths so a reopened store plans the
//! same way.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::backend::{DiskShard, RefusedWrite, StorageBackend};
use crate::error::StoreError;

/// Block storage rooted in a directory.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
    speeds: Vec<f64>,
    reads: u64,
    writes: u64,
    offline: Vec<bool>,
}

fn io_err(disk: usize, block: u64) -> StoreError {
    StoreError::MissingBlock { disk, block }
}

impl FileBackend {
    /// Create a store at `root` with the given per-disk speeds, or reopen
    /// an existing one (in which case the recorded speeds are loaded and
    /// `speeds` must match in count).
    pub fn open(root: impl AsRef<Path>, speeds: Vec<f64>) -> Result<Self, StoreError> {
        assert!(!speeds.is_empty(), "need at least one disk");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        let root = root.as_ref().to_path_buf();
        let meta = root.join("speeds");
        let speeds = if meta.exists() {
            let text = std::fs::read_to_string(&meta).map_err(|_| io_err(0, 0))?;
            let stored: Vec<f64> = text
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect();
            if stored.len() != speeds.len() {
                return Err(StoreError::AccessDenied(format!(
                    "store at {} has {} disks, asked for {}",
                    root.display(),
                    stored.len(),
                    speeds.len()
                )));
            }
            stored
        } else {
            std::fs::create_dir_all(&root).map_err(|_| io_err(0, 0))?;
            let mut f = std::fs::File::create(&meta).map_err(|_| io_err(0, 0))?;
            for s in &speeds {
                let _ = writeln!(f, "{s}");
            }
            speeds
        };
        for d in 0..speeds.len() {
            std::fs::create_dir_all(root.join(format!("disk-{d}"))).map_err(|_| io_err(d, 0))?;
        }
        let n = speeds.len();
        Ok(FileBackend {
            root,
            speeds,
            reads: 0,
            writes: 0,
            offline: vec![false; n],
        })
    }

    fn block_path(&self, disk: usize, block: u64) -> PathBuf {
        self.root
            .join(format!("disk-{disk}"))
            .join(format!("{block:016x}.blk"))
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl StorageBackend for FileBackend {
    fn num_disks(&self) -> usize {
        self.speeds.len()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        if disk >= self.speeds.len() || self.offline[disk] {
            return Err(RefusedWrite::new(io_err(disk, block), data));
        }
        if std::fs::write(self.block_path(disk, block), &data).is_err() {
            return Err(RefusedWrite::new(io_err(disk, block), data));
        }
        self.writes += 1;
        Ok(())
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        if disk >= self.speeds.len() || self.offline[disk] {
            return Err(io_err(disk, block));
        }
        std::fs::read(self.block_path(disk, block)).map_err(|_| io_err(disk, block))
    }

    /// Streams the file into `buf` (cleared first), reusing its capacity
    /// instead of allocating a fresh vector per block.
    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        use std::io::Read as _;
        if disk >= self.speeds.len() || self.offline[disk] {
            return Err(io_err(disk, block));
        }
        let mut f =
            std::fs::File::open(self.block_path(disk, block)).map_err(|_| io_err(disk, block))?;
        buf.clear();
        f.read_to_end(buf).map_err(|_| io_err(disk, block))?;
        Ok(())
    }

    fn has_block(&self, disk: usize, block: u64) -> bool {
        disk < self.speeds.len() && !self.offline[disk] && self.block_path(disk, block).is_file()
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        if disk >= self.speeds.len() {
            return Err(io_err(disk, block));
        }
        std::fs::remove_file(self.block_path(disk, block)).map_err(|_| io_err(disk, block))
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.speeds[disk]
    }

    fn disk_used(&self, disk: usize) -> u64 {
        let dir = self.root.join(format!("disk-{disk}"));
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    fn count_read(&mut self) {
        self.reads += 1;
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    fn set_offline(&mut self, disk: usize, offline: bool) {
        self.offline[disk] = offline;
    }

    /// At-rest bit rot on a durable store: flips one byte in each victim
    /// block file in place (length and readability preserved). Victims
    /// depend only on the disk's contents, `fraction`, and `seq`.
    fn corrupt_random_blocks(
        &mut self,
        disk: usize,
        fraction: f64,
        seq: &robustore_simkit::SeedSequence,
    ) -> Vec<u64> {
        use robustore_simkit::rng::uniform01;
        assert!((0.0..=1.0).contains(&fraction), "fraction in 0..=1");
        let dir = self.root.join(format!("disk-{disk}"));
        let mut keys: Vec<u64> = std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| {
                        let name = e.file_name().into_string().ok()?;
                        let hex = name.strip_suffix(".blk")?;
                        u64::from_str_radix(hex, 16).ok()
                    })
                    .collect()
            })
            .unwrap_or_default();
        keys.sort_unstable();
        let mut rng = seq.fork("bit-rot", disk as u64);
        let mut rotted = Vec::new();
        for key in keys {
            if uniform01(&mut rng) < fraction {
                let path = self.block_path(disk, key);
                let Ok(mut data) = std::fs::read(&path) else {
                    continue;
                };
                if data.is_empty() {
                    continue;
                }
                let pos = (uniform01(&mut rng) * data.len() as f64) as usize;
                let last = data.len() - 1;
                data[pos.min(last)] ^= 0x40;
                if std::fs::write(&path, &data).is_ok() {
                    rotted.push(key);
                }
            }
        }
        rotted
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        // One shard per disk directory. Shards never touch each other's
        // directories, so per-disk locking is safe on a shared root; the
        // `speeds` file is read-only after open.
        Some(
            (0..self.speeds.len())
                .map(|disk| {
                    Box::new(FileShard {
                        root: self.root.clone(),
                        disk,
                        speed: self.speeds[disk],
                        offline: self.offline[disk],
                        reads: 0,
                        writes: 0,
                    }) as Box<dyn DiskShard>
                })
                .collect(),
        )
    }
}

/// One disk directory of a [`FileBackend`], as an independent shard.
#[derive(Debug)]
struct FileShard {
    root: PathBuf,
    disk: usize,
    speed: f64,
    offline: bool,
    reads: u64,
    writes: u64,
}

impl FileShard {
    fn block_path(&self, block: u64) -> PathBuf {
        self.root
            .join(format!("disk-{}", self.disk))
            .join(format!("{block:016x}.blk"))
    }
}

impl DiskShard for FileShard {
    fn disk_id(&self) -> usize {
        self.disk
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        if self.offline {
            return Err(RefusedWrite::new(io_err(self.disk, block), data));
        }
        if std::fs::write(self.block_path(block), &data).is_err() {
            return Err(RefusedWrite::new(io_err(self.disk, block), data));
        }
        self.writes += 1;
        Ok(())
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        use std::io::Read as _;
        if self.offline {
            return Err(io_err(self.disk, block));
        }
        let mut f =
            std::fs::File::open(self.block_path(block)).map_err(|_| io_err(self.disk, block))?;
        buf.clear();
        f.read_to_end(buf).map_err(|_| io_err(self.disk, block))?;
        Ok(())
    }

    fn has_block(&self, block: u64) -> bool {
        !self.offline && self.block_path(block).is_file()
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        std::fs::remove_file(self.block_path(block)).map_err(|_| io_err(self.disk, block))
    }

    fn speed(&self) -> f64 {
        self.speed
    }

    fn used(&self) -> u64 {
        let dir = self.root.join(format!("disk-{}", self.disk));
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    fn count_read(&mut self) {
        self.reads += 1;
    }

    fn reads(&self) -> u64 {
        self.reads
    }

    fn writes(&self) -> u64 {
        self.writes
    }

    fn set_offline(&mut self, offline: bool) {
        self.offline = offline;
    }

    fn corrupt_random_blocks(
        &mut self,
        fraction: f64,
        seq: &robustore_simkit::SeedSequence,
    ) -> Vec<u64> {
        use robustore_simkit::rng::uniform01;
        assert!((0.0..=1.0).contains(&fraction), "fraction in 0..=1");
        let dir = self.root.join(format!("disk-{}", self.disk));
        let mut keys: Vec<u64> = std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| {
                        let name = e.file_name().into_string().ok()?;
                        let hex = name.strip_suffix(".blk")?;
                        u64::from_str_radix(hex, 16).ok()
                    })
                    .collect()
            })
            .unwrap_or_default();
        keys.sort_unstable();
        // Same rng stream as the unsharded backend (`fork("bit-rot", disk)`),
        // so a seeded scenario rots the same victims either way.
        let mut rng = seq.fork("bit-rot", self.disk as u64);
        let mut rotted = Vec::new();
        for key in keys {
            if uniform01(&mut rng) < fraction {
                let path = self.block_path(key);
                let Ok(mut data) = std::fs::read(&path) else {
                    continue;
                };
                if data.is_empty() {
                    continue;
                }
                let pos = (uniform01(&mut rng) * data.len() as f64) as usize;
                let last = data.len() - 1;
                data[pos.min(last)] ^= 0x40;
                if std::fs::write(&path, &data).is_ok() {
                    rotted.push(key);
                }
            }
        }
        rotted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let unique = format!(
            "robustore-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        );
        std::env::temp_dir().join(unique)
    }

    #[test]
    fn roundtrip_and_usage() {
        let root = temp_root("rt");
        let mut b = FileBackend::open(&root, vec![10e6, 20e6]).unwrap();
        b.write_block(0, 7, vec![1, 2, 3]).unwrap();
        b.write_block(1, 8, vec![9; 100]).unwrap();
        assert_eq!(b.read_block(0, 7).unwrap(), vec![1, 2, 3]);
        let mut buf = Vec::new();
        b.read_block_into(0, 7, &mut buf).unwrap();
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(b.disk_used(1), 100);
        b.delete_block(0, 7).unwrap();
        assert!(b.read_block(0, 7).is_err());
        assert_eq!(b.writes(), 2);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn reopen_preserves_blocks_and_speeds() {
        let root = temp_root("reopen");
        {
            let mut b = FileBackend::open(&root, vec![10e6, 40e6]).unwrap();
            b.write_block(1, 42, vec![5, 6, 7]).unwrap();
        }
        let b = FileBackend::open(&root, vec![0.1, 0.1]).unwrap(); // placeholder speeds
        assert_eq!(b.disk_speed(1), 40e6, "recorded speeds win on reopen");
        assert_eq!(b.read_block(1, 42).unwrap(), vec![5, 6, 7]);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn reopen_with_wrong_disk_count_fails() {
        let root = temp_root("count");
        FileBackend::open(&root, vec![1e6, 1e6]).unwrap();
        assert!(FileBackend::open(&root, vec![1e6]).is_err());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn bit_rot_flips_bytes_in_place() {
        use robustore_simkit::SeedSequence;
        let root = temp_root("rot");
        let mut b = FileBackend::open(&root, vec![10e6]).unwrap();
        for key in 0..32u64 {
            b.write_block(0, key, vec![key as u8; 16]).unwrap();
        }
        let seq = SeedSequence::new(13);
        let rotted = b.corrupt_random_blocks(0, 0.5, &seq);
        assert!(!rotted.is_empty() && rotted.len() < 32);
        assert!(rotted.windows(2).all(|w| w[0] < w[1]));
        for &key in &rotted {
            let data = b.read_block(0, key).unwrap();
            assert_eq!(data.len(), 16, "rot must not change length");
            assert_ne!(data, vec![key as u8; 16]);
        }
        for key in (0..32).filter(|k| !rotted.contains(k)) {
            assert_eq!(b.read_block(0, key).unwrap(), vec![key as u8; 16]);
        }
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn offline_disk_rejects_io() {
        let root = temp_root("offline");
        let mut b = FileBackend::open(&root, vec![10e6]).unwrap();
        b.write_block(0, 1, vec![1]).unwrap();
        b.set_offline(0, true);
        assert!(b.read_block(0, 1).is_err());
        assert!(b.write_block(0, 2, vec![2]).is_err());
        b.set_offline(0, false);
        assert_eq!(b.read_block(0, 1).unwrap(), vec![1]);
        std::fs::remove_dir_all(root).ok();
    }
}
