//! End-to-end block integrity: CRC32C over coded block bytes.
//!
//! Every coded block written by the client is checksummed and the digest
//! stored in [`crate::FileMeta::checksums`]; every block fetched by the
//! read path is re-checksummed before it reaches the decoder, so silent
//! corruption (bit rot, misdirected writes, torn reads) is demoted to a
//! *missing* block the rateless decoder simply routes around.
//!
//! CRC32C (Castagnoli polynomial, reflected `0x82F63B78`) is the
//! standard storage-integrity checksum (iSCSI, ext4, Btrfs): its error
//! detection is strong for single-burst and low-weight errors, and the
//! software table implementation below is fast enough that verification
//! never dominates a block read. The table is built in a `const` fn so
//! the kernel carries no init-time or locking cost.

/// The reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C digest of `data` (full init/finalize in one call).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// True when `data` hashes to `expected`.
pub fn verify(data: &[u8], expected: u32) -> bool {
    crc32c(data) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn detects_single_byte_flip() {
        let data: Vec<u8> = (0..4096).map(|i| (i * 31 % 256) as u8).collect();
        let digest = crc32c(&data);
        assert!(verify(&data, digest));
        for pos in [0usize, 1, 2047, 4095] {
            let mut bad = data.clone();
            bad[pos] ^= 0x01;
            assert!(!verify(&bad, digest), "flip at {pos} undetected");
        }
    }

    #[test]
    fn detects_truncation() {
        let data: Vec<u8> = (0..1024).map(|i| (i * 7 % 256) as u8).collect();
        let digest = crc32c(&data);
        assert!(!verify(&data[..512], digest));
        assert!(!verify(&data[..1023], digest));
    }

    #[test]
    fn digest_is_pure() {
        let data = vec![0xA5u8; 777];
        assert_eq!(crc32c(&data), crc32c(&data));
    }
}
