//! Prioritised, rate-limited repair: the control loop that turns the
//! per-file scrub ([`crate::client::Client::scrub_with`]) into a
//! store-wide service.
//!
//! Three pieces compose here:
//!
//! * [`TokenBucket`] — a wall-clock MB/s budget charged per block of
//!   repair I/O. Tokens are charged *before* an op may be submitted, so
//!   repair traffic can never burst past `rate · elapsed + burst` bytes
//!   no matter how deep the submission window is.
//! * [`ScrubOptions`] — the knobs the repair service threads into the
//!   scrub path: the throttle, background scheduling class on ring
//!   submissions (repair ops wait behind every queued foreground op —
//!   see [`crate::ring::Priority`]), and load-aware re-placement that
//!   consults [`crate::ring::IoRing::load_map`].
//! * [`RepairService`] — the risk queue: every file is surveyed with
//!   presence probes (no disk traffic), scored by its surviving
//!   redundancy margin weighted by per-disk health, and repaired
//!   most-at-risk-first under the budget.
//!
//! The service also keeps a **backlog** fed by the scrubber
//! ([`RepairService::enqueue_sweep`]): files a sweep left short of full
//! strength — lock-busy skips, refused restores, damage past the decode
//! margin — queue up and are retried by [`RepairService::run_enqueued`],
//! which probes only the suspects instead of re-surveying the namespace.
//! [`RepairService::scrub_tick`] chains the two into a continuous
//! schedule: retry the backlog, sweep, enqueue the residue for next tick.
//!
//! The risk score follows the liquid-repair observation that not all
//! missing blocks are equally urgent: a file with `k + 10` survivors on
//! healthy disks can wait; a file with `k + 1` survivors where two of
//! those live on a flaky disk cannot. The weighted margin
//! `Σ weight(health(disk)) − k` over the file's *present* blocks orders
//! the queue ascending, so the files closest to unrecoverable are
//! repaired first.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use robustore_diskmodel::DiskHealth;

use crate::client::Client;
use crate::error::StoreError;
use crate::scrub::{ScrubReport, Scrubber, SweepReport};

/// A wall-clock token bucket metering repair I/O in bytes.
///
/// `acquire` blocks the caller until the requested bytes fit under the
/// budget; tokens refill continuously at `rate` bytes/second up to
/// `burst` bytes of slack. A request larger than the burst is admitted
/// once the bucket is full and drives the balance negative, so the
/// long-run rate still holds. The hard invariant (asserted by the chaos
/// suite) is:
///
/// ```text
/// consumed() ≤ rate · elapsed + burst
/// ```
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    started: Instant,
    consumed: AtomicU64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` bytes/second with `burst` bytes of
    /// slack (the bucket starts full). A non-positive `rate` means
    /// unlimited: `acquire` never blocks but still counts.
    pub fn new(rate: f64, burst: u64) -> Self {
        let now = Instant::now();
        TokenBucket {
            rate,
            burst: burst as f64,
            started: now,
            consumed: AtomicU64::new(0),
            state: Mutex::new(BucketState {
                tokens: burst as f64,
                last: now,
            }),
        }
    }

    /// Convenience constructor: `mb_per_sec` megabytes/second with one
    /// second of burst slack.
    pub fn per_mb(mb_per_sec: f64) -> Self {
        let rate = mb_per_sec * 1e6;
        TokenBucket::new(rate, rate.max(1.0) as u64)
    }

    /// Block until `bytes` tokens are available, then take them.
    pub fn acquire(&self, bytes: u64) {
        self.consumed.fetch_add(bytes, Ordering::Relaxed);
        if self.rate <= 0.0 {
            return;
        }
        // A request larger than the bucket is admitted at full-bucket
        // (balance goes negative), so oversize blocks don't deadlock.
        let need = (bytes as f64).min(self.burst);
        loop {
            let wait = {
                let mut st = self.state.lock();
                let now = Instant::now();
                let dt = now.duration_since(st.last).as_secs_f64();
                st.last = now;
                st.tokens = (st.tokens + dt * self.rate).min(self.burst);
                if st.tokens >= need {
                    st.tokens -= bytes as f64;
                    return;
                }
                Duration::from_secs_f64((need - st.tokens) / self.rate)
            };
            std::thread::sleep(wait);
        }
    }

    /// Total bytes acquired since construction.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Refill rate in bytes/second (non-positive = unlimited).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Burst slack in bytes.
    pub fn burst(&self) -> u64 {
        self.burst as u64
    }

    /// Seconds since the bucket was created (for checking the consumed
    /// invariant externally).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The byte ceiling the invariant permits *right now*.
    pub fn budget_ceiling(&self) -> f64 {
        if self.rate <= 0.0 {
            f64::INFINITY
        } else {
            self.rate * self.elapsed_secs() + self.burst
        }
    }
}

/// Repair-service controls threaded through the scrub path
/// ([`Client::scrub_with`]). The default reproduces a plain
/// [`Client::scrub`]: no throttle, foreground class, balance-only
/// placement.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScrubOptions<'a> {
    /// Charge each block of repair I/O against this budget before
    /// submission (blocking until tokens are available).
    pub throttle: Option<&'a TokenBucket>,
    /// Submit repair I/O at background priority on the ring: every
    /// queued foreground op is serviced first.
    pub background: bool,
    /// Order re-placement candidates by live ring backlog before the
    /// per-file balance tie-break.
    pub load_aware: bool,
}

/// Health weight a present block contributes to its file's survival
/// margin: a block on a failed disk is already gone, one on a flaky
/// disk is half a block, degraded costs a quarter.
pub fn health_weight(health: DiskHealth) -> f64 {
    match health {
        DiskHealth::Healthy => 1.0,
        DiskHealth::Degraded => 0.75,
        DiskHealth::Flaky => 0.5,
        DiskHealth::Failed => 0.0,
    }
}

/// One file's position in the risk queue.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskEntry {
    /// File name.
    pub name: String,
    /// Health-weighted surviving redundancy above `k`:
    /// `Σ weight(health(disk)) − k` over present blocks. Negative means
    /// the file is (pessimistically) unrecoverable if the weighting is
    /// taken at face value.
    pub margin: f64,
    /// Blocks that answered the presence probe.
    pub present: usize,
    /// The file's full redundancy target `n`.
    pub target: usize,
    /// Decode threshold `k`.
    pub k: usize,
}

/// What one [`RepairService::run_cycle`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairRunReport {
    /// Files surveyed for the risk queue.
    pub surveyed: usize,
    /// Files scrubbed this cycle (damaged, most-at-risk-first).
    pub repaired: usize,
    /// Coded blocks restored across all scrubs.
    pub blocks_restored: usize,
    /// Files that vanished between survey and scrub (deleted mid-cycle
    /// — skipped, not an error).
    pub skipped: usize,
    /// Files whose scrub failed (name, error text) — e.g. decode
    /// failure when damage exceeded the margin.
    pub failed: Vec<(String, String)>,
    /// Bytes charged against the throttle this cycle (0 without one).
    pub bytes_charged: u64,
}

/// The store-wide repair loop: survey → rank → scrub under budget.
///
/// Disk health defaults to [`DiskHealth::Healthy`]; a monitoring layer
/// (or a test) feeds observations in via [`RepairService::set_disk_health`].
pub struct RepairService {
    client: Client,
    bucket: Option<TokenBucket>,
    health: Mutex<BTreeMap<usize, DiskHealth>>,
    background: bool,
    load_aware: bool,
    /// Files earlier sweeps could not fully restore, awaiting the next
    /// [`RepairService::run_enqueued`] pass (deduplicated, name-ordered).
    pending: Mutex<BTreeSet<String>>,
}

/// What one [`RepairService::scrub_tick`] of the continuous schedule did.
#[derive(Debug, Clone, Default)]
pub struct ScrubTickReport {
    /// The backlog pass: files enqueued by earlier ticks, retried first.
    pub backlog: RepairRunReport,
    /// The store-wide sweep that followed.
    pub sweep: SweepReport,
    /// Files this tick's sweep left short of full strength, enqueued for
    /// the next tick.
    pub enqueued_for_next: usize,
}

impl RepairService {
    /// A repair service over `client`'s store: background class and
    /// load-aware placement on, no rate limit.
    pub fn new(client: Client) -> Self {
        RepairService {
            client,
            bucket: None,
            health: Mutex::new(BTreeMap::new()),
            background: true,
            load_aware: true,
            pending: Mutex::new(BTreeSet::new()),
        }
    }

    /// Cap repair I/O at `rate` bytes/second with `burst` bytes slack.
    pub fn with_rate(mut self, rate: f64, burst: u64) -> Self {
        self.bucket = Some(TokenBucket::new(rate, burst));
        self
    }

    /// Submit repair I/O at foreground priority (eager repair — the
    /// behaviour the `xp repair` experiment measures against).
    pub fn eager(mut self) -> Self {
        self.background = false;
        self
    }

    /// Consult the ring's live load map when re-placing restored blocks.
    pub fn load_aware(mut self, on: bool) -> Self {
        self.load_aware = on;
        self
    }

    /// The throttle, if one was configured (for invariant checks).
    pub fn bucket(&self) -> Option<&TokenBucket> {
        self.bucket.as_ref()
    }

    /// Record a health observation for `disk` (affects risk ranking
    /// only — the data path is untouched).
    pub fn set_disk_health(&self, disk: usize, health: DiskHealth) {
        self.health.lock().insert(disk, health);
    }

    fn disk_weight(&self, disk: usize) -> f64 {
        health_weight(
            self.health
                .lock()
                .get(&disk)
                .copied()
                .unwrap_or(DiskHealth::Healthy),
        )
    }

    /// Survey every file with presence probes and rank by weighted
    /// margin, most-at-risk first (ties break by name, so the order is
    /// deterministic). Probes touch no disk counters and consume no
    /// injected-fault budgets.
    pub fn risk_queue(&self) -> Vec<RiskEntry> {
        self.rank_names(self.client.system().list_files())
    }

    /// Survey and rank only `names` — the enqueued-backlog variant of
    /// [`RepairService::risk_queue`]: probing a handful of known-suspect
    /// files instead of the whole namespace.
    fn rank_names(&self, names: Vec<String>) -> Vec<RiskEntry> {
        let system = self.client.system();
        let mut entries = Vec::new();
        for name in names {
            let Some(meta) = system.export_meta(&name) else {
                continue; // deleted mid-survey
            };
            let mut present = 0usize;
            let mut weighted = 0.0f64;
            for (disk, ids) in &meta.layout {
                let w = self.disk_weight(*disk);
                for &id in ids {
                    if system.probe_block(*disk, meta.block_key(id)) {
                        present += 1;
                        weighted += w;
                    }
                }
            }
            entries.push(RiskEntry {
                name,
                margin: weighted - meta.coding.k as f64,
                present,
                target: meta.coding.n,
                k: meta.coding.k,
            });
        }
        entries.sort_by(|a, b| {
            a.margin
                .partial_cmp(&b.margin)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        entries
    }

    /// One repair cycle: survey, then scrub the damaged files
    /// most-at-risk-first, at most `max_files` of them (`usize::MAX`
    /// for all). A file counts as damaged when its presence probes find
    /// fewer than `n` blocks, or any of its disks is reported
    /// non-healthy.
    pub fn run_cycle(&self, max_files: usize) -> RepairRunReport {
        let queue = self.risk_queue();
        let charged_before = self.bucket.as_ref().map_or(0, |b| b.consumed());
        let mut report = RepairRunReport {
            surveyed: queue.len(),
            ..RepairRunReport::default()
        };
        let opts = ScrubOptions {
            throttle: self.bucket.as_ref(),
            background: self.background,
            load_aware: self.load_aware,
        };
        for entry in queue {
            if report.repaired + report.failed.len() >= max_files {
                break;
            }
            let degraded = entry.margin < (entry.target - entry.k) as f64;
            if entry.present == entry.target && !degraded {
                continue; // fully redundant on healthy disks
            }
            match self.client.scrub_with(&entry.name, &opts) {
                Ok(scrub) => {
                    report.blocks_restored += scrub.blocks_restored;
                    report.repaired += 1;
                }
                // Deleted between survey and scrub: not an error.
                Err(StoreError::NotFound(_)) => report.skipped += 1,
                Err(e) => report.failed.push((entry.name, e.to_string())),
            }
        }
        report.bytes_charged = self
            .bucket
            .as_ref()
            .map_or(0, |b| b.consumed() - charged_before);
        report
    }

    /// Scrub a single named file under this service's options (used by
    /// experiments that drive the queue themselves).
    pub fn repair_file(&self, name: &str) -> Result<ScrubReport, StoreError> {
        let opts = ScrubOptions {
            throttle: self.bucket.as_ref(),
            background: self.background,
            load_aware: self.load_aware,
        };
        self.client.scrub_with(name, &opts)
    }

    /// Queue a file for the next [`RepairService::run_enqueued`] pass.
    /// Idempotent: the backlog is a set.
    pub fn enqueue(&self, name: impl Into<String>) {
        self.pending.lock().insert(name.into());
    }

    /// Feed the backlog from a sweep: every file the sweep left short of
    /// full strength is enqueued — failures (damage past the margin may
    /// heal when a disk returns), skips (lock-busy or ghost; a ghost is
    /// dropped by the next pass's survey), and files restored to fewer
    /// than their target blocks (disks refused writes). Returns how many
    /// files the backlog gained.
    pub fn enqueue_sweep(&self, sweep: &SweepReport) -> usize {
        let mut pending = self.pending.lock();
        let before = pending.len();
        for (name, _) in &sweep.failed {
            pending.insert(name.clone());
        }
        for name in &sweep.skipped {
            pending.insert(name.clone());
        }
        for r in &sweep.scrubbed {
            if r.blocks_stored_after < r.blocks_target {
                pending.insert(r.file.clone());
            }
        }
        pending.len() - before
    }

    /// The current backlog, name-ordered (for observability and tests).
    pub fn pending(&self) -> Vec<String> {
        self.pending.lock().iter().cloned().collect()
    }

    /// Drain the backlog: survey *only* the enqueued files, rank them
    /// most-at-risk-first, and scrub the damaged ones under the budget —
    /// at most `max_files` of them. Files beyond `max_files` and files
    /// still lock-busy stay queued for the next pass; files found fully
    /// healthy, deleted, or repaired leave the queue; a scrub that fails
    /// outright (damage past the decode margin) also leaves the queue —
    /// it is re-enqueued only if a later sweep still sees it short.
    pub fn run_enqueued(&self, max_files: usize) -> RepairRunReport {
        let names: Vec<String> = std::mem::take(&mut *self.pending.lock())
            .into_iter()
            .collect();
        let queue = self.rank_names(names);
        let charged_before = self.bucket.as_ref().map_or(0, |b| b.consumed());
        let mut report = RepairRunReport {
            surveyed: queue.len(),
            ..RepairRunReport::default()
        };
        let opts = ScrubOptions {
            throttle: self.bucket.as_ref(),
            background: self.background,
            load_aware: self.load_aware,
        };
        for entry in queue {
            if report.repaired + report.failed.len() >= max_files {
                self.pending.lock().insert(entry.name); // next pass
                continue;
            }
            let degraded = entry.margin < (entry.target - entry.k) as f64;
            if entry.present == entry.target && !degraded {
                continue; // healed since it was enqueued
            }
            match self.client.scrub_with(&entry.name, &opts) {
                Ok(scrub) => {
                    report.blocks_restored += scrub.blocks_restored;
                    report.repaired += 1;
                    if scrub.blocks_stored_after < scrub.blocks_target {
                        self.pending.lock().insert(entry.name); // still short
                    }
                }
                Err(StoreError::NotFound(_)) => report.skipped += 1,
                Err(StoreError::LockConflict(_)) => {
                    report.skipped += 1;
                    self.pending.lock().insert(entry.name); // busy: retry
                }
                Err(e) => report.failed.push((entry.name, e.to_string())),
            }
        }
        report.bytes_charged = self
            .bucket
            .as_ref()
            .map_or(0, |b| b.consumed() - charged_before);
        report
    }

    /// One tick of the continuous scrub schedule: retry the backlog
    /// first (files earlier ticks left short — at most `max_backlog` of
    /// them), then sweep the whole store under this service's options
    /// and enqueue whatever the sweep could not fully restore for the
    /// next tick. Run on a timer, this replaces on-demand surveys with a
    /// standing scrub-feeds-repair loop.
    pub fn scrub_tick(&self, max_backlog: usize) -> ScrubTickReport {
        let backlog = self.run_enqueued(max_backlog);
        let opts = ScrubOptions {
            throttle: self.bucket.as_ref(),
            background: self.background,
            load_aware: self.load_aware,
        };
        let sweep = Scrubber::new(&self.client).sweep_with(&opts);
        let enqueued_for_next = self.enqueue_sweep(&sweep);
        ScrubTickReport {
            backlog,
            sweep,
            enqueued_for_next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_long_run_rate() {
        // 1 MB/s with a 10 KB burst: acquiring 60 KB must take at least
        // (60 KB − 10 KB burst) / 1 MB/s = 50 ms of wall clock.
        let bucket = TokenBucket::new(1e6, 10_000);
        let t0 = Instant::now();
        for _ in 0..6 {
            bucket.acquire(10_000);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(
            elapsed >= 0.045,
            "60KB through a 1MB/s bucket took only {elapsed:.3}s"
        );
        assert_eq!(bucket.consumed(), 60_000);
        assert!(bucket.consumed() as f64 <= bucket.budget_ceiling() + 1.0);
    }

    #[test]
    fn token_bucket_oversize_acquire_does_not_deadlock() {
        // A request bigger than the burst is admitted at full bucket and
        // drives the balance negative — the next acquire pays it back.
        let bucket = TokenBucket::new(1e8, 1_000);
        let t0 = Instant::now();
        bucket.acquire(5_000);
        bucket.acquire(1_000);
        assert!(t0.elapsed().as_secs_f64() < 5.0);
        assert_eq!(bucket.consumed(), 6_000);
    }

    #[test]
    fn unlimited_bucket_never_blocks() {
        let bucket = TokenBucket::new(0.0, 0);
        let t0 = Instant::now();
        bucket.acquire(u64::MAX / 4);
        bucket.acquire(u64::MAX / 4);
        assert!(t0.elapsed().as_secs_f64() < 1.0);
        assert_eq!(bucket.consumed(), u64::MAX / 4 * 2);
    }

    #[test]
    fn health_weights_are_ordered() {
        assert!(health_weight(DiskHealth::Healthy) > health_weight(DiskHealth::Degraded));
        assert!(health_weight(DiskHealth::Degraded) > health_weight(DiskHealth::Flaky));
        assert!(health_weight(DiskHealth::Flaky) > health_weight(DiskHealth::Failed));
        assert_eq!(health_weight(DiskHealth::Failed), 0.0);
    }
}
