//! Write-path fault injection over any [`StorageBackend`].
//!
//! [`ChaosBackend`] wraps a real backend and interposes on `write_block`
//! according to a [`FaultSwitch`] the test arms from outside — including
//! *mid-access*, because the switch is a shared handle while the wrapped
//! backend is owned by the [`crate::System`]. Two fault shapes cover the
//! write-path failure modes of the paper's evaluation:
//!
//! * **Refusal** — the disk declines the block (admission revoked, filer
//!   unreachable). Surfaced as [`StoreError::MissingBlock`], which the
//!   rateless write path routes around by redirecting the block to
//!   another disk.
//! * **Hard fault after a write budget** — the disk accepts `n` more
//!   writes and then fails mid-I/O. Surfaced as
//!   [`StoreError::DiskFault`], which aborts the access and exercises
//!   the commit protocol's rollback.
//!
//! Deterministic schedules come from [`robustore_simkit::WriteFaultPlan`]
//! via [`FaultSwitch::apply`], so the chaos suite replays bit-identically
//! from a seed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use robustore_simkit::{SeedSequence, WriteFaultKind, WriteFaultPlan};

use crate::backend::{RefusedWrite, StorageBackend};
use crate::error::StoreError;

#[derive(Debug, Default)]
struct SwitchState {
    /// Disks refusing every write.
    refuse: BTreeSet<usize>,
    /// Disks with a remaining write budget; at zero the next write faults.
    fail_after: BTreeMap<usize, u64>,
    /// Hard faults actually delivered (budget exhausted).
    hard_faults: u64,
}

/// Shared control handle for a [`ChaosBackend`].
///
/// Cloneable; the test keeps one clone while the wrapped backend (owning
/// the other) sits inside the system, so faults can be armed and cleared
/// between — or during — accesses.
#[derive(Debug, Clone, Default)]
pub struct FaultSwitch {
    state: Arc<Mutex<SwitchState>>,
}

impl FaultSwitch {
    /// A switch with no faults armed.
    pub fn new() -> Self {
        FaultSwitch::default()
    }

    /// Make `disk` refuse every subsequent write.
    pub fn refuse_disk(&self, disk: usize) {
        self.state.lock().unwrap().refuse.insert(disk);
    }

    /// Let `disk` accept `writes` more blocks, then fail hard.
    pub fn fail_disk_after(&self, disk: usize, writes: u64) {
        self.state.lock().unwrap().fail_after.insert(disk, writes);
    }

    /// Arm every fault of a seeded [`WriteFaultPlan`].
    pub fn apply(&self, plan: &WriteFaultPlan) {
        let mut s = self.state.lock().unwrap();
        for fault in &plan.faults {
            match fault.kind {
                WriteFaultKind::Refuse => {
                    s.refuse.insert(fault.disk);
                }
                WriteFaultKind::FailAfter { writes } => {
                    s.fail_after.insert(fault.disk, writes);
                }
            }
        }
    }

    /// Disarm everything (delivered-fault count is preserved).
    pub fn clear(&self) {
        let mut s = self.state.lock().unwrap();
        s.refuse.clear();
        s.fail_after.clear();
    }

    /// Hard faults delivered so far (budget-exhausted writes).
    pub fn injected_hard_faults(&self) -> u64 {
        self.state.lock().unwrap().hard_faults
    }

    /// Decide the fate of one write. `None` = let it through.
    fn intercept(&self, disk: usize, block: u64) -> Option<StoreError> {
        let mut s = self.state.lock().unwrap();
        if s.refuse.contains(&disk) {
            return Some(StoreError::MissingBlock { disk, block });
        }
        if let Some(budget) = s.fail_after.get_mut(&disk) {
            if *budget == 0 {
                s.hard_faults += 1;
                return Some(StoreError::DiskFault { disk });
            }
            *budget -= 1;
        }
        None
    }
}

/// A [`StorageBackend`] that injects write faults per its [`FaultSwitch`].
///
/// Reads, deletes, and accounting delegate untouched to the inner
/// backend; only `write_block` is interposed.
#[derive(Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    switch: FaultSwitch,
}

impl<B: StorageBackend> ChaosBackend<B> {
    /// Wrap `inner`, returning the backend and its control handle.
    pub fn new(inner: B) -> (Self, FaultSwitch) {
        let switch = FaultSwitch::new();
        let backend = ChaosBackend {
            inner,
            switch: switch.clone(),
        };
        (backend, switch)
    }
}

impl<B: StorageBackend> StorageBackend for ChaosBackend<B> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        if let Some(error) = self.switch.intercept(disk, block) {
            return Err(RefusedWrite::new(error, data));
        }
        self.inner.write_block(disk, block, data)
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        self.inner.read_block(disk, block)
    }

    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        self.inner.read_block_into(disk, block, buf)
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(disk, block)
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.inner.disk_speed(disk)
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.inner.disk_used(disk)
    }

    fn count_read(&mut self) {
        self.inner.count_read();
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn set_offline(&mut self, disk: usize, offline: bool) {
        self.inner.set_offline(disk, offline);
    }

    fn drop_random_blocks(&mut self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.inner.drop_random_blocks(disk, fraction, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;

    #[test]
    fn refusal_returns_buffer_and_routes_as_missing() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(2, 10e6));
        switch.refuse_disk(0);
        let err = b.write_block(0, 1, vec![7; 8]).unwrap_err();
        assert!(matches!(
            err.error,
            StoreError::MissingBlock { disk: 0, .. }
        ));
        assert_eq!(err.data, vec![7; 8], "payload handed back intact");
        b.write_block(1, 1, vec![7; 8]).unwrap();
        assert_eq!(b.disk_used(0), 0);
        assert_eq!(b.disk_used(1), 8);
        assert_eq!(switch.injected_hard_faults(), 0);
    }

    #[test]
    fn fail_after_budget_then_hard_fault() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        switch.fail_disk_after(0, 2);
        b.write_block(0, 1, vec![1]).unwrap();
        b.write_block(0, 2, vec![2]).unwrap();
        let err = b.write_block(0, 3, vec![3]).unwrap_err();
        assert!(matches!(err.error, StoreError::DiskFault { disk: 0 }));
        assert_eq!(err.data, vec![3]);
        assert_eq!(switch.injected_hard_faults(), 1);
        // Reads of committed blocks still succeed: the fault is I/O-side.
        assert_eq!(b.read_block(0, 1).unwrap(), vec![1]);
    }

    #[test]
    fn clear_disarms_but_keeps_count() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        switch.fail_disk_after(0, 0);
        assert!(b.write_block(0, 1, vec![1]).is_err());
        switch.clear();
        b.write_block(0, 1, vec![1]).unwrap();
        assert_eq!(switch.injected_hard_faults(), 1);
    }

    #[test]
    fn apply_arms_a_seeded_plan() {
        use robustore_simkit::WriteFaultScenario;
        let seq = SeedSequence::new(42);
        let plan = WriteFaultPlan::generate(&WriteFaultScenario::RefusingDisks { n: 2 }, 4, &seq);
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(4, 10e6));
        switch.apply(&plan);
        let refused: Vec<usize> = (0..4)
            .filter(|&d| b.write_block(d, 0, vec![0]).is_err())
            .collect();
        assert_eq!(refused.len(), 2);
        assert_eq!(
            refused,
            plan.faults.iter().map(|f| f.disk).collect::<Vec<_>>()
        );
    }
}
