//! Fault injection over any [`StorageBackend`].
//!
//! [`ChaosBackend`] wraps a real backend and interposes on `write_block`
//! and `read_block_into` according to a [`FaultSwitch`] the test arms
//! from outside — including *mid-access*, because the switch is a shared
//! handle while the wrapped backend is owned by the [`crate::System`].
//!
//! Write-path fault shapes:
//!
//! * **Refusal** — the disk declines the block (admission revoked, filer
//!   unreachable). Surfaced as [`StoreError::MissingBlock`], which the
//!   rateless write path routes around by redirecting the block to
//!   another disk.
//! * **Hard fault after a write budget** — the disk accepts `n` more
//!   writes and then fails mid-I/O. Surfaced as
//!   [`StoreError::DiskFault`], which aborts the access and exercises
//!   the commit protocol's rollback.
//!
//! Read-path fault shapes (the self-healing read's chaos diet):
//!
//! * **Transient error** — the next `n` reads of a disk fail with
//!   [`StoreError::TransientIo`]; the retry policy rides it out.
//! * **Corruption** — the next `n` reads return with one byte flipped;
//!   only checksum verification catches it.
//! * **Torn read** — the next `n` reads come back truncated to half
//!   length; length/checksum verification demotes them to missing.
//! * **Hard read fault** — every read of the disk fails with
//!   [`StoreError::DiskFault`] (non-transient, non-retryable), for
//!   testing that fatal errors abort without leaking resources.
//!
//! Deterministic schedules come from [`robustore_simkit::WriteFaultPlan`]
//! via [`FaultSwitch::apply`] and [`robustore_simkit::ReadFaultPlan`] via
//! [`FaultSwitch::apply_read`], so chaos suites replay bit-identically
//! from a seed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use robustore_simkit::{
    ReadFaultKind, ReadFaultPlan, SeedSequence, WriteFaultKind, WriteFaultPlan,
};

use crate::backend::{DiskShard, RefusedWrite, StorageBackend};
use crate::error::StoreError;

#[derive(Debug, Default)]
struct SwitchState {
    /// Disks refusing every write.
    refuse: BTreeSet<usize>,
    /// Disks with a remaining write budget; at zero the next write faults.
    fail_after: BTreeMap<usize, u64>,
    /// Hard faults actually delivered (budget exhausted).
    hard_faults: u64,
    /// Per-disk remaining transiently-failing reads.
    transient_reads: BTreeMap<usize, u64>,
    /// Per-disk remaining silently-corrupted reads.
    corrupt_reads: BTreeMap<usize, u64>,
    /// Per-disk remaining torn (truncated) reads.
    torn_reads: BTreeMap<usize, u64>,
    /// Disks whose every read fails hard (non-retryable).
    read_fail_hard: BTreeSet<usize>,
    /// Read faults actually delivered, by kind.
    injected_transients: u64,
    injected_corruptions: u64,
    injected_torn: u64,
}

/// What the switch decided to do to one read.
enum ReadFate {
    /// Fail before touching the inner backend.
    Error(StoreError),
    /// Read normally, then flip one byte.
    Corrupt,
    /// Read normally, then truncate the buffer to half length.
    Tear,
}

/// Shared control handle for a [`ChaosBackend`].
///
/// Cloneable; the test keeps one clone while the wrapped backend (owning
/// the other) sits inside the system, so faults can be armed and cleared
/// between — or during — accesses.
#[derive(Debug, Clone, Default)]
pub struct FaultSwitch {
    state: Arc<Mutex<SwitchState>>,
}

impl FaultSwitch {
    /// A switch with no faults armed.
    pub fn new() -> Self {
        FaultSwitch::default()
    }

    /// Make `disk` refuse every subsequent write.
    pub fn refuse_disk(&self, disk: usize) {
        self.state.lock().unwrap().refuse.insert(disk);
    }

    /// Let `disk` accept `writes` more blocks, then fail hard.
    pub fn fail_disk_after(&self, disk: usize, writes: u64) {
        self.state.lock().unwrap().fail_after.insert(disk, writes);
    }

    /// Arm every fault of a seeded [`WriteFaultPlan`].
    pub fn apply(&self, plan: &WriteFaultPlan) {
        let mut s = self.state.lock().unwrap();
        for fault in &plan.faults {
            match fault.kind {
                WriteFaultKind::Refuse => {
                    s.refuse.insert(fault.disk);
                }
                WriteFaultKind::FailAfter { writes } => {
                    s.fail_after.insert(fault.disk, writes);
                }
            }
        }
    }

    /// The next `reads` block reads of `disk` fail with
    /// [`StoreError::TransientIo`]; the block stays intact underneath.
    pub fn transient_reads(&self, disk: usize, reads: u64) {
        self.state
            .lock()
            .unwrap()
            .transient_reads
            .insert(disk, reads);
    }

    /// The next `reads` block reads of `disk` return with one byte
    /// flipped (silent corruption).
    pub fn corrupt_reads(&self, disk: usize, reads: u64) {
        self.state.lock().unwrap().corrupt_reads.insert(disk, reads);
    }

    /// The next `reads` block reads of `disk` come back truncated to
    /// half length (torn read).
    pub fn torn_reads(&self, disk: usize, reads: u64) {
        self.state.lock().unwrap().torn_reads.insert(disk, reads);
    }

    /// Every read of `disk` fails hard ([`StoreError::DiskFault`]) until
    /// cleared — a non-retryable failure.
    pub fn fail_reads_hard(&self, disk: usize) {
        self.state.lock().unwrap().read_fail_hard.insert(disk);
    }

    /// Arm every fault of a seeded [`ReadFaultPlan`].
    pub fn apply_read(&self, plan: &ReadFaultPlan) {
        let mut s = self.state.lock().unwrap();
        for fault in &plan.faults {
            match fault.kind {
                ReadFaultKind::Transient { reads } => {
                    s.transient_reads.insert(fault.disk, reads);
                }
                ReadFaultKind::Corrupt { reads } => {
                    s.corrupt_reads.insert(fault.disk, reads);
                }
                ReadFaultKind::Torn { reads } => {
                    s.torn_reads.insert(fault.disk, reads);
                }
            }
        }
    }

    /// Disarm everything (delivered-fault counts are preserved).
    pub fn clear(&self) {
        let mut s = self.state.lock().unwrap();
        s.refuse.clear();
        s.fail_after.clear();
        s.transient_reads.clear();
        s.corrupt_reads.clear();
        s.torn_reads.clear();
        s.read_fail_hard.clear();
    }

    /// Hard faults delivered so far (budget-exhausted writes).
    pub fn injected_hard_faults(&self) -> u64 {
        self.state.lock().unwrap().hard_faults
    }

    /// Read faults delivered so far, as (transient, corrupt, torn).
    pub fn injected_read_faults(&self) -> (u64, u64, u64) {
        let s = self.state.lock().unwrap();
        (
            s.injected_transients,
            s.injected_corruptions,
            s.injected_torn,
        )
    }

    /// Decide the fate of one write. `None` = let it through.
    fn intercept(&self, disk: usize, block: u64) -> Option<StoreError> {
        let mut s = self.state.lock().unwrap();
        if s.refuse.contains(&disk) {
            return Some(StoreError::MissingBlock { disk, block });
        }
        if let Some(budget) = s.fail_after.get_mut(&disk) {
            if *budget == 0 {
                s.hard_faults += 1;
                return Some(StoreError::DiskFault { disk });
            }
            *budget -= 1;
        }
        None
    }

    /// Decide the fate of one read. `None` = let it through untouched.
    /// Budgeted fault kinds decrement on delivery; a disk armed with
    /// several kinds delivers them in transient → corrupt → torn order.
    fn intercept_read(&self, disk: usize) -> Option<ReadFate> {
        let mut s = self.state.lock().unwrap();
        if s.read_fail_hard.contains(&disk) {
            return Some(ReadFate::Error(StoreError::DiskFault { disk }));
        }
        if let Some(budget) = s.transient_reads.get_mut(&disk) {
            if *budget > 0 {
                *budget -= 1;
                s.injected_transients += 1;
                return Some(ReadFate::Error(StoreError::TransientIo { disk }));
            }
        }
        if let Some(budget) = s.corrupt_reads.get_mut(&disk) {
            if *budget > 0 {
                *budget -= 1;
                s.injected_corruptions += 1;
                return Some(ReadFate::Corrupt);
            }
        }
        if let Some(budget) = s.torn_reads.get_mut(&disk) {
            if *budget > 0 {
                *budget -= 1;
                s.injected_torn += 1;
                return Some(ReadFate::Tear);
            }
        }
        None
    }
}

/// A [`StorageBackend`] that injects write and read faults per its
/// [`FaultSwitch`].
///
/// Deletes and accounting delegate untouched to the inner backend;
/// `write_block` and the block-read methods are interposed.
#[derive(Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    switch: FaultSwitch,
}

impl<B: StorageBackend> ChaosBackend<B> {
    /// Wrap `inner`, returning the backend and its control handle.
    pub fn new(inner: B) -> (Self, FaultSwitch) {
        let switch = FaultSwitch::new();
        let backend = ChaosBackend {
            inner,
            switch: switch.clone(),
        };
        (backend, switch)
    }
}

impl<B: StorageBackend> StorageBackend for ChaosBackend<B> {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        if let Some(error) = self.switch.intercept(disk, block) {
            return Err(RefusedWrite::new(error, data));
        }
        self.inner.write_block(disk, block, data)
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        let mut buf = Vec::new();
        self.read_block_into(disk, block, &mut buf)?;
        Ok(buf)
    }

    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let fate = self.switch.intercept_read(disk);
        if let Some(ReadFate::Error(e)) = fate {
            return Err(e);
        }
        self.inner.read_block_into(disk, block, buf)?;
        match fate {
            Some(ReadFate::Corrupt) => {
                if let Some(byte) = buf.first_mut() {
                    *byte ^= 0xFF;
                }
            }
            Some(ReadFate::Tear) => buf.truncate(buf.len() / 2),
            _ => {}
        }
        Ok(())
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(disk, block)
    }

    /// Presence probes are not reads: they bypass the switch so risk
    /// assessment never drains armed fault budgets.
    fn has_block(&self, disk: usize, block: u64) -> bool {
        self.inner.has_block(disk, block)
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.inner.disk_speed(disk)
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.inner.disk_used(disk)
    }

    fn count_read(&mut self) {
        self.inner.count_read();
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn set_offline(&mut self, disk: usize, offline: bool) {
        self.inner.set_offline(disk, offline);
    }

    fn drop_random_blocks(&mut self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.inner.drop_random_blocks(disk, fraction, seq)
    }

    fn corrupt_random_blocks(
        &mut self,
        disk: usize,
        fraction: f64,
        seq: &SeedSequence,
    ) -> Vec<u64> {
        self.inner.corrupt_random_blocks(disk, fraction, seq)
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        // Shard the inner backend and interpose on each shard with a
        // clone of the *same* switch: fault budgets live in the shared
        // switch state, so arming, clearing, and fault accounting keep
        // working mid-access no matter which shard the access touches —
        // and a per-disk budget drains identically whether the writes
        // arrive one at a time or through a group-commit batch (the
        // default [`DiskShard::commit_batch`] funnels every entry through
        // the intercepting `write_block` and stops at the first hard
        // fault, exactly like the unsharded wrapper).
        let shards = self.inner.try_shard()?;
        Some(
            shards
                .into_iter()
                .map(|inner| {
                    Box::new(ChaosShard {
                        inner,
                        switch: self.switch.clone(),
                    }) as Box<dyn DiskShard>
                })
                .collect(),
        )
    }
}

/// One fault-injecting disk shard: the sharded counterpart of
/// [`ChaosBackend`], sharing its [`FaultSwitch`].
struct ChaosShard {
    inner: Box<dyn DiskShard>,
    switch: FaultSwitch,
}

impl DiskShard for ChaosShard {
    fn disk_id(&self) -> usize {
        self.inner.disk_id()
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        if let Some(error) = self.switch.intercept(self.inner.disk_id(), block) {
            return Err(RefusedWrite::new(error, data));
        }
        self.inner.write_block(block, data)
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        let fate = self.switch.intercept_read(self.inner.disk_id());
        if let Some(ReadFate::Error(e)) = fate {
            return Err(e);
        }
        self.inner.read_block_into(block, buf)?;
        match fate {
            Some(ReadFate::Corrupt) => {
                if let Some(byte) = buf.first_mut() {
                    *byte ^= 0xFF;
                }
            }
            Some(ReadFate::Tear) => buf.truncate(buf.len() / 2),
            _ => {}
        }
        Ok(())
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(block)
    }

    /// Presence probes bypass the switch (see the backend impl).
    fn has_block(&self, block: u64) -> bool {
        self.inner.has_block(block)
    }

    fn speed(&self) -> f64 {
        self.inner.speed()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn count_read(&mut self) {
        self.inner.count_read();
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn set_offline(&mut self, offline: bool) {
        self.inner.set_offline(offline);
    }

    fn drop_random_blocks(&mut self, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.inner.drop_random_blocks(fraction, seq)
    }

    fn corrupt_random_blocks(&mut self, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.inner.corrupt_random_blocks(fraction, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;

    #[test]
    fn refusal_returns_buffer_and_routes_as_missing() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(2, 10e6));
        switch.refuse_disk(0);
        let err = b.write_block(0, 1, vec![7; 8]).unwrap_err();
        assert!(matches!(
            err.error,
            StoreError::MissingBlock { disk: 0, .. }
        ));
        assert_eq!(err.data, vec![7; 8], "payload handed back intact");
        b.write_block(1, 1, vec![7; 8]).unwrap();
        assert_eq!(b.disk_used(0), 0);
        assert_eq!(b.disk_used(1), 8);
        assert_eq!(switch.injected_hard_faults(), 0);
    }

    #[test]
    fn fail_after_budget_then_hard_fault() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        switch.fail_disk_after(0, 2);
        b.write_block(0, 1, vec![1]).unwrap();
        b.write_block(0, 2, vec![2]).unwrap();
        let err = b.write_block(0, 3, vec![3]).unwrap_err();
        assert!(matches!(err.error, StoreError::DiskFault { disk: 0 }));
        assert_eq!(err.data, vec![3]);
        assert_eq!(switch.injected_hard_faults(), 1);
        // Reads of committed blocks still succeed: the fault is I/O-side.
        assert_eq!(b.read_block(0, 1).unwrap(), vec![1]);
    }

    #[test]
    fn clear_disarms_but_keeps_count() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        switch.fail_disk_after(0, 0);
        assert!(b.write_block(0, 1, vec![1]).is_err());
        switch.clear();
        b.write_block(0, 1, vec![1]).unwrap();
        assert_eq!(switch.injected_hard_faults(), 1);
    }

    #[test]
    fn apply_arms_a_seeded_plan() {
        use robustore_simkit::WriteFaultScenario;
        let seq = SeedSequence::new(42);
        let plan = WriteFaultPlan::generate(&WriteFaultScenario::RefusingDisks { n: 2 }, 4, &seq);
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(4, 10e6));
        switch.apply(&plan);
        let refused: Vec<usize> = (0..4)
            .filter(|&d| b.write_block(d, 0, vec![0]).is_err())
            .collect();
        assert_eq!(refused.len(), 2);
        assert_eq!(
            refused,
            plan.faults.iter().map(|f| f.disk).collect::<Vec<_>>()
        );
    }

    #[test]
    fn transient_reads_exhaust_then_succeed() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        b.write_block(0, 5, vec![3; 8]).unwrap();
        switch.transient_reads(0, 2);
        let mut buf = Vec::new();
        assert!(matches!(
            b.read_block_into(0, 5, &mut buf),
            Err(StoreError::TransientIo { disk: 0 })
        ));
        assert!(matches!(
            b.read_block_into(0, 5, &mut buf),
            Err(StoreError::TransientIo { disk: 0 })
        ));
        b.read_block_into(0, 5, &mut buf).unwrap();
        assert_eq!(buf, vec![3; 8], "block intact after transients");
        assert_eq!(switch.injected_read_faults(), (2, 0, 0));
    }

    #[test]
    fn corrupt_and_torn_reads_mutate_the_buffer() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        b.write_block(0, 1, vec![0xAA; 8]).unwrap();
        switch.corrupt_reads(0, 1);
        let got = b.read_block(0, 1).unwrap();
        assert_eq!(got.len(), 8);
        assert_ne!(got, vec![0xAA; 8], "first byte flipped");
        assert_eq!(&got[1..], &[0xAA; 7][..]);
        // Budget spent: next read is clean.
        assert_eq!(b.read_block(0, 1).unwrap(), vec![0xAA; 8]);

        switch.torn_reads(0, 1);
        let torn = b.read_block(0, 1).unwrap();
        assert_eq!(torn, vec![0xAA; 4], "torn read returns half the block");
        assert_eq!(b.read_block(0, 1).unwrap(), vec![0xAA; 8]);
        assert_eq!(switch.injected_read_faults(), (0, 1, 1));
    }

    #[test]
    fn hard_read_faults_until_cleared() {
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(1, 10e6));
        b.write_block(0, 1, vec![1]).unwrap();
        switch.fail_reads_hard(0);
        assert!(matches!(
            b.read_block(0, 1),
            Err(StoreError::DiskFault { disk: 0 })
        ));
        switch.clear();
        assert_eq!(b.read_block(0, 1).unwrap(), vec![1]);
    }

    #[test]
    fn apply_read_arms_a_seeded_plan() {
        use robustore_simkit::ReadFaultScenario;
        let seq = SeedSequence::new(9);
        let plan = ReadFaultPlan::generate(
            &ReadFaultScenario::TransientDisks { n: 2, reads: 1 },
            4,
            &seq,
        );
        let (mut b, switch) = ChaosBackend::new(InMemoryBackend::uniform(4, 10e6));
        for d in 0..4 {
            b.write_block(d, 0, vec![d as u8]).unwrap();
        }
        switch.apply_read(&plan);
        let failing: Vec<usize> = (0..4).filter(|&d| b.read_block(d, 0).is_err()).collect();
        assert_eq!(
            failing,
            plan.faults.iter().map(|f| f.disk).collect::<Vec<_>>()
        );
        // Budgets spent: everything reads clean now.
        assert!((0..4).all(|d| b.read_block(d, 0).is_ok()));
    }
}
