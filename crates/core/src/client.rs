//! The RobuSTore client and its access procedures (§4.3).
//!
//! Clients do the heavy lifting in RobuSTore (Figure 4-3): they query the
//! metadata server, plan the layout, encode and decode on their own CPU
//! ("end-to-end" placement of coding, §4.2), and drive speculative access.
//! [`System`] bundles the shared services — metadata server, storage
//! backend, per-server admission controllers, key authority — behind
//! locks, so multiple clients can share one store.
//!
//! The speculative behaviours are realised with real data movement:
//!
//! * **write** (§4.3.2) — rateless LT encoding; more blocks flow to faster
//!   disks (blocks ∝ disk bandwidth, the §5.3.2 layout), stopping at
//!   N = (1+D)·K committed blocks. Overwrites are crash-consistent: the
//!   new generation lands under fresh (opposite-parity) keys while a
//!   bounded pipeline overlaps encoding with disk I/O, the metadata
//!   commit switches versions atomically, and only then is the old
//!   generation garbage-collected (on error, the new one is instead).
//! * **read** (§4.3.3) — blocks are consumed in simulated arrival order
//!   (per-disk streams merged by virtual time); the incremental decoder
//!   stops the access the moment it completes, and the remaining requests
//!   are cancelled — the backend's read counter shows the savings.
//! * **update** (§4.3.4) — only the coded blocks whose coding-graph
//!   neighbourhood intersects the changed originals are regenerated.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use robustore_erasure::lt::{LtCode, LtDecoder};
use robustore_erasure::{Block, BlockPool, LtParams};
use robustore_schemes::placement::Placement;
use robustore_schemes::{AdaptiveReadPolicy, WaveSlot};
use robustore_simkit::rng::uniform01;
use robustore_simkit::SeedSequence;

use crate::admission::AdmissionController;
use crate::backend::{InMemoryBackend, StorageBackend};
use crate::credentials::{CredentialChain, KeyAuthority, PublicKey, Rights};
use crate::error::StoreError;
use crate::integrity::crc32c;
use crate::metadata::{gen_key, AccessMode, CodingSpec, DiskInfo, FileMeta, MetadataServer};
use crate::metastore::{MetaPlane, Metastore, MetastoreConfig, RecoveryReport};
use crate::planner::{LayoutPlanner, ReadPolicy};
use crate::qos::QosOptions;
use crate::repair::ScrubOptions;
use crate::ring::{
    Completion, CompletionKind, IoRing, Priority, RingConfig, SubmitOp, WriteOutcome,
};
use crate::scrub::ScrubReport;
use crate::sharded::ShardedBackend;

/// System-wide configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Coding block size, bytes (1 MB is the paper's sweet spot; small
    /// values keep tests fast).
    pub block_bytes: u64,
    /// LT parameters used for new files.
    pub lt: LtParams,
    /// Concurrent accesses each storage server admits (§5.4).
    pub admission_capacity: usize,
    /// Application domain stamped into credentials.
    pub app_domain: String,
    /// Worker threads for segment encoding on the write/update path
    /// (coded blocks are independent, §7.3's parallel-coding direction).
    /// 1 = sequential; the default caps at 8 — segment encode is
    /// memory-bandwidth-bound well before that on most hosts. Results are
    /// byte-identical at any setting.
    pub encode_threads: usize,
    /// Bound of the write pipeline's reordering window: how many encoded
    /// blocks may sit finished (or in flight) ahead of the in-order
    /// backend writer. `0` disables pipelining — encode everything, then
    /// write (the barrier mode). Any positive depth overlaps encode with
    /// disk I/O; committed layouts and on-disk bytes are byte-identical
    /// at every depth and thread count.
    pub pipeline_depth: usize,
    /// Bounded retry policy for transiently failing block reads.
    pub read_retry: ReadRetry,
    /// Repair damage discovered by a read: when a read completes with
    /// missing or corrupt blocks, re-encode them from the decoded data
    /// and re-place them on healthy disks (in place when the original
    /// disk accepts the write; redirected — with a metadata commit —
    /// otherwise). Best-effort: repair never fails a successful read.
    pub read_repair: bool,
    /// Dispatch backend operations through per-disk shards, each behind
    /// its own lock, so concurrent accesses touching different disks
    /// proceed in parallel (see [`crate::sharded`]). `false` forces the
    /// whole backend behind one lock — the single-lock oracle the
    /// differential tests compare against. Committed state is identical
    /// either way.
    pub sharded: bool,
    /// Group commit: how many consecutive same-disk writes the write
    /// pipeline may batch into one shard-lock acquisition
    /// ([`crate::backend::DiskShard::commit_batch`]). `0` or `1`
    /// disables batching. The backend sees every write in the same
    /// order at any setting, so committed state is byte-identical.
    pub group_commit: usize,
    /// Drive backend I/O through the async per-disk submission/completion
    /// ring (see [`crate::ring`]): one worker per disk services queued
    /// ops, writes coalesce across accesses into one group-commit
    /// dispatch, and speculative reads are *cancelled in the queue* once
    /// decode succeeds — so one client thread keeps many accesses in
    /// flight. `false` keeps the blocking per-call path, which the
    /// differential suites use as the oracle: committed state is
    /// byte-identical either way.
    pub io_ring: bool,
    /// How ring reads schedule their speculative block requests:
    /// [`ReadPolicy::Adaptive`] (the default) sizes staged waves from the
    /// decoder's expected need and orders them by live per-disk load
    /// ([`IoRing::load_map`]); [`ReadPolicy::Static`] requests every
    /// stored block up front in nominal arrival order — the differential
    /// oracle. Decoded bytes are identical under either policy; only
    /// disk pressure and tail latency differ. The blocking path has no
    /// telemetry, so it always behaves statically.
    pub read_policy: ReadPolicy,
    /// The durable metadata plane (see [`crate::metastore`]): the
    /// namespace hash-sharded across WAL-backed, quorum-replicated
    /// shards with crash recovery. `Some` (the default, in-memory
    /// replicas) makes every metadata commit a replicated log append;
    /// set a `dir` in the config for file-backed replicas that survive
    /// process restarts. `None` keeps the seed's single in-memory
    /// `MetadataServer` — the differential oracle. Namespace semantics
    /// are identical either way; only durability differs.
    pub metastore: Option<MetastoreConfig>,
}

/// Bounded retry-with-backoff for transient read errors
/// ([`StoreError::TransientIo`]). Hard errors (missing block, checksum
/// mismatch) are never retried — they skip straight to the degraded-read
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRetry {
    /// Total attempts per block (first try included); once spent, the
    /// block is demoted to missing. Minimum 1.
    pub attempts: u32,
    /// Base backoff before the second attempt, microseconds; doubles per
    /// further attempt, scaled by a deterministic seeded jitter in
    /// [0.5, 1.5). `0` disables sleeping entirely (simulated backends
    /// fail and recover instantly — tests stay fast).
    pub backoff_micros: u64,
}

impl Default for ReadRetry {
    fn default() -> Self {
        ReadRetry {
            attempts: 3,
            backoff_micros: 0,
        }
    }
}

/// Default encode worker count: the host's parallelism, capped at 8.
pub fn default_encode_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Default write-pipeline depth: two encoded blocks in flight per encode
/// worker, enough to keep the writer fed without unbounded buffering.
pub fn default_pipeline_depth() -> usize {
    2 * default_encode_threads()
}

/// Default group-commit bound: up to 8 consecutive same-disk writes per
/// shard-lock acquisition — enough to amortise dispatch costs without
/// starving concurrent accesses of the shard.
pub fn default_group_commit() -> usize {
    8
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            block_bytes: 1 << 20,
            lt: LtParams::default(),
            admission_capacity: 4,
            app_domain: "RobuSTore".into(),
            encode_threads: default_encode_threads(),
            pipeline_depth: default_pipeline_depth(),
            read_retry: ReadRetry::default(),
            read_repair: true,
            sharded: true,
            group_commit: default_group_commit(),
            io_ring: true,
            read_policy: ReadPolicy::default(),
            metastore: Some(MetastoreConfig::default()),
        }
    }
}

struct SystemInner {
    config: SystemConfig,
    meta: Mutex<MetaPlane>,
    /// The sharded submission layer: locking is per disk (or whole-backend
    /// in the single-lock fallback) and *internal*, so accesses touching
    /// different disks never exclude each other here. Shared with the
    /// ring workers, hence the `Arc`.
    backend: Arc<ShardedBackend>,
    /// The async submission/completion ring over `backend`
    /// (`config.io_ring`); `None` keeps the blocking per-call path.
    ring: Option<IoRing>,
    admission: Mutex<Vec<AdmissionController>>,
    authority: Mutex<KeyAuthority>,
    /// Recycled read buffers shared across accesses (one size at a time;
    /// replaced if a file with a different block size is read).
    pool: Mutex<Option<BlockPool>>,
    clock: AtomicU64,
    next_access: AtomicU64,
}

/// A shared RobuSTore deployment: metadata, storage, admission, keys.
#[derive(Clone)]
pub struct System {
    inner: Arc<SystemInner>,
}

impl System {
    /// Stand up a system over an in-memory backend, registering every disk
    /// with the metadata server.
    pub fn new(backend: InMemoryBackend, config: SystemConfig) -> Self {
        Self::with_backend(Box::new(backend), config)
    }

    /// Stand up a system over any [`StorageBackend`] (e.g. the durable
    /// [`crate::file_backend::FileBackend`]).
    pub fn with_backend(backend: Box<dyn StorageBackend + Send>, config: SystemConfig) -> Self {
        let mut meta = match &config.metastore {
            Some(mc) => MetaPlane::Durable(Box::new(
                Metastore::new(mc.clone()).expect("metastore replicas must be openable"),
            )),
            None => MetaPlane::Memory(MetadataServer::new()),
        };
        let admission = (0..backend.num_disks())
            .map(|_| AdmissionController::new(config.admission_capacity))
            .collect();
        for id in 0..backend.num_disks() {
            meta.register_disk(DiskInfo {
                id,
                capacity_bytes: 1 << 40,
                used_bytes: 0,
                expected_bandwidth: backend.disk_speed(id),
                load: 0.0,
                // Alternate availability classes so the planner's mixing
                // policy has something to mix.
                availability: if id % 2 == 0 { 0.999 } else { 0.95 },
            });
        }
        let backend = Arc::new(ShardedBackend::new(backend, config.sharded));
        let ring = config.io_ring.then(|| {
            IoRing::start(
                backend.clone(),
                RingConfig {
                    group_commit: config.group_commit,
                    read_attempts: config.read_retry.attempts,
                    backoff_micros: config.read_retry.backoff_micros,
                },
            )
        });
        System {
            inner: Arc::new(SystemInner {
                config,
                meta: Mutex::new(meta),
                backend,
                ring,
                admission: Mutex::new(admission),
                authority: Mutex::new(KeyAuthority::new()),
                pool: Mutex::new(None),
                clock: AtomicU64::new(0),
                next_access: AtomicU64::new(0),
            }),
        }
    }

    /// System configuration.
    pub fn config(&self) -> SystemConfig {
        self.inner.config.clone()
    }

    /// Create an identity (keypair) in this system's key authority.
    pub fn register_user(&self) -> PublicKey {
        self.inner.authority.lock().generate()
    }

    /// Issue a delegation credential (see [`crate::credentials`]).
    pub fn issue_credential(
        &self,
        authorizer: PublicKey,
        licensee: PublicKey,
        rights: Rights,
        file: &str,
        valid_until: u64,
    ) -> Result<crate::credentials::Credential, StoreError> {
        let handle = self
            .inner
            .meta
            .lock()
            .stat(file)
            .map(|m| m.file_id)
            .ok_or_else(|| StoreError::NotFound(file.to_string()))?;
        self.inner
            .authority
            .lock()
            .issue(
                authorizer,
                licensee,
                crate::credentials::Conditions {
                    app_domain: self.inner.config.app_domain.clone(),
                    handle,
                    rights,
                    valid_from: 0,
                    valid_until,
                },
            )
            .map(Ok)
            .unwrap_or_else(|e| Err(StoreError::AccessDenied(e)))
    }

    /// Current logical time (credential validity).
    pub fn now(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Advance logical time.
    pub fn advance_clock(&self, by: u64) {
        self.inner.clock.fetch_add(by, Ordering::Relaxed);
    }

    /// Backend traffic counters `(block_reads, block_writes)`.
    pub fn backend_stats(&self) -> (u64, u64) {
        let b = &self.inner.backend;
        (b.reads(), b.writes())
    }

    /// Whether backend dispatch is sharded per disk (see
    /// [`crate::sharded`]); `false` means the single-lock fallback.
    pub fn is_sharded(&self) -> bool {
        self.inner.backend.is_sharded()
    }

    /// Whether backend I/O runs through the async submission/completion
    /// ring (see [`crate::ring`]); `false` means the blocking per-call
    /// path the differential suites use as the oracle.
    pub fn uses_io_ring(&self) -> bool {
        self.inner.ring.is_some()
    }

    /// Bytes stored on one disk (backend accounting; orphan detection in
    /// the crash-consistency tests).
    pub fn disk_used(&self, disk: usize) -> u64 {
        self.inner.backend.disk_used(disk)
    }

    /// Bytes stored across every disk.
    pub fn total_used(&self) -> u64 {
        let b = &self.inner.backend;
        (0..b.num_disks()).map(|d| b.disk_used(d)).sum()
    }

    /// Number of disks in the backend.
    pub fn num_disks(&self) -> usize {
        self.inner.backend.num_disks()
    }

    /// Presence probe: does `disk` currently hold a readable copy of
    /// block key `key`? Not a read — counters and injected-fault budgets
    /// are untouched. The repair service's risk assessment runs on this,
    /// so surveying a large store costs no disk traffic.
    pub fn probe_block(&self, disk: usize, key: u64) -> bool {
        self.inner.backend.has_block(disk, key)
    }

    /// Live load snapshot from the I/O ring (`None` without the ring).
    pub fn load_map(&self) -> Option<robustore_schemes::DiskLoadMap> {
        self.inner.ring.as_ref().map(|r| r.load_map())
    }

    /// Read-buffer pool counters `(fresh_allocations, reuses)` — the
    /// byte-allocation evidence that repeated reads recycle buffers
    /// instead of allocating (zeros before the first read).
    pub fn pool_stats(&self) -> (u64, u64) {
        match self.inner.pool.lock().as_ref() {
            Some(p) => (p.fresh_allocations(), p.reuses()),
            None => (0, 0),
        }
    }

    /// Bytes checked out of the read-buffer pool and not yet returned.
    /// Zero whenever no access is in flight — every completed read puts
    /// every buffer back (asserted by tests, including concurrent reads).
    pub fn pool_outstanding_bytes(&self) -> i64 {
        self.inner
            .pool
            .lock()
            .as_ref()
            .map_or(0, |p| p.outstanding_bytes())
    }

    /// Admission occupancy per disk (diagnostics / examples).
    pub fn admission_loads(&self) -> Vec<f64> {
        self.inner
            .admission
            .lock()
            .iter()
            .map(|a| a.load())
            .collect()
    }

    /// Hold an admission slot on `disk` out-of-band (used by examples and
    /// tests to emulate competing tenants).
    pub fn occupy_admission(&self, disk: usize, token: u64) -> bool {
        self.inner.admission.lock()[disk].request(token)
    }

    /// Release an out-of-band admission slot.
    pub fn release_admission(&self, disk: usize, token: u64) -> bool {
        self.inner.admission.lock()[disk].release(token)
    }

    /// Failure injection: take a disk offline or bring it back. Reads
    /// degrade gracefully (redundancy permitting); writes route around.
    pub fn set_disk_offline(&self, disk: usize, offline: bool) {
        self.inner.backend.set_offline(disk, offline);
    }

    /// Fault injection: deterministically lose each of `disk`'s stored
    /// blocks with probability `fraction` (latent sector errors, seeded
    /// by `seq`). Reads degrade gracefully: missing coded blocks are
    /// skipped and redundancy absorbs the loss up to its margin.
    /// Returns the lost block keys.
    pub fn lose_blocks(&self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.inner.backend.drop_random_blocks(disk, fraction, seq)
    }

    /// Fault injection: silently flip one byte in each of `disk`'s stored
    /// blocks with probability `fraction` (at-rest bit rot, seeded by
    /// `seq`). The backend still serves the block — only checksum
    /// verification can tell. Returns the corrupted block keys.
    pub fn corrupt_blocks(&self, disk: usize, fraction: f64, seq: &SeedSequence) -> Vec<u64> {
        self.inner
            .backend
            .corrupt_random_blocks(disk, fraction, seq)
    }

    /// Fault injection, file-scoped: deterministically delete each of
    /// `name`'s stored blocks with probability `fraction` (seeded by
    /// `seq`), leaving every other file untouched. Metadata is not
    /// told — the damage is latent until a read, scrub, or repair-risk
    /// survey trips over it. Returns the number of blocks dropped.
    pub fn lose_file_blocks(&self, name: &str, fraction: f64, seq: &SeedSequence) -> usize {
        let Some(meta) = self.export_meta(name) else {
            return 0;
        };
        let mut rng = seq.fork("file-loss", meta.file_id);
        let mut dropped = 0;
        for (disk, ids) in &meta.layout {
            for &id in ids {
                if uniform01(&mut rng) < fraction
                    && self
                        .inner
                        .backend
                        .delete_block(*disk, meta.block_key(id))
                        .is_ok()
                {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Snapshot a file's metadata (for persistence alongside a durable
    /// backend).
    pub fn export_meta(&self, name: &str) -> Option<FileMeta> {
        self.inner.meta.lock().stat(name).cloned()
    }

    /// Restore metadata saved by [`System::export_meta`] into a freshly
    /// opened system (bootstrapping a durable store). On the durable
    /// metadata plane this is a quorum commit and can fail.
    pub fn import_meta(&self, meta: FileMeta) -> Result<(), StoreError> {
        self.inner.meta.lock().restore(meta)
    }

    /// List the files the metadata server knows about.
    pub fn list_files(&self) -> Vec<String> {
        self.inner.meta.lock().list()
    }

    /// Advance the metadata plane's stale-lock reclaim epoch (a
    /// supervising heartbeat round; see [`crate::locks`]). Locks whose
    /// holders stay silent for the lease length become reclaimable.
    pub fn begin_lock_epoch(&self) -> u64 {
        self.inner.meta.lock().begin_lock_epoch()
    }

    /// File locks reclaimed from presumed-crashed holders so far.
    pub fn locks_reclaimed(&self) -> u64 {
        self.inner.meta.lock().locks_reclaimed()
    }

    /// Run `f` against the durable metadata plane ([`Metastore`]) —
    /// chaos hooks, forced compaction, replica handles. `None` when the
    /// system runs the in-memory oracle plane.
    pub fn with_metastore<R>(&self, f: impl FnOnce(&mut Metastore) -> R) -> Option<R> {
        self.inner.meta.lock().as_durable_mut().map(f)
    }

    /// Crash-recover the durable metadata plane: discard all volatile
    /// metadata state (namespace images, locks, id cursor) and rebuild
    /// it from the shard replicas — log replay with torn-tail
    /// truncation, winner election, read-repair. `None` on the
    /// in-memory plane (which cannot recover — that is the point).
    pub fn recover_metadata(&self) -> Option<Result<Vec<RecoveryReport>, StoreError>> {
        self.inner
            .meta
            .lock()
            .as_durable_mut()
            .map(|m| m.crash_and_recover())
    }

    fn next_access_id(&self) -> u64 {
        self.inner.next_access.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// An open file.
pub struct FileHandle {
    name: String,
    mode: AccessMode,
    qos: QosOptions,
    meta: Option<FileMeta>,
    closed: bool,
}

impl FileHandle {
    /// File name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Open mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Metadata snapshot (absent for a brand-new file before its first
    /// write).
    pub fn meta(&self) -> Option<&FileMeta> {
        self.meta.as_ref()
    }
}

/// Report of a completed write.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Coded blocks committed (N).
    pub blocks_written: usize,
    /// Redundancy degree used.
    pub redundancy: f64,
    /// Disks used.
    pub disks: usize,
}

/// Report of a completed read.
#[derive(Debug, Clone)]
pub struct ReadReport {
    /// Blocks actually fetched (delivered to the decoder) before it
    /// completed.
    pub blocks_fetched: usize,
    /// Blocks whose requests were cancelled unfetched.
    pub blocks_cancelled: usize,
    /// Reception overhead: fetched/K − 1.
    pub reception_overhead: f64,
    /// Transient read errors absorbed by the retry policy (each retried
    /// attempt counts one).
    pub transient_retries: u64,
    /// Blocks skipped as missing (lost sectors, offline disks, or a
    /// retry budget spent on a transiently failing disk).
    pub blocks_missing: usize,
    /// Blocks fetched but discarded for failing verification (checksum
    /// mismatch or short read) — silent corruption demoted to missing.
    pub blocks_corrupt: usize,
    /// Blocks delivered without verification because the file's metadata
    /// carries no checksum for them (legacy, pre-integrity files).
    pub blocks_unverified: usize,
    /// Damaged blocks re-encoded from the decoded data and re-placed on
    /// disks by read-repair during this access.
    pub blocks_repaired: usize,
    /// Blocks the wave policy never requested: the decoder finished
    /// before their wave came up. Unlike cancelled blocks these never
    /// entered a disk queue at all. Always 0 under the static policy and
    /// on the blocking path.
    pub blocks_deferred: usize,
    /// Submission waves issued (1 = the first wave sufficed; each stall
    /// or deadline-budget extension adds one). Always 1 under the static
    /// policy and on the blocking path.
    pub waves: usize,
}

/// Report of an update.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Original blocks the patch touched.
    pub originals_changed: usize,
    /// Coded blocks regenerated and rewritten.
    pub coded_rewritten: usize,
    /// Fraction of all stored blocks rewritten (§4.3.4: ≈0.5 % for a
    /// one-block change at K=1024, N=4096).
    pub fraction_rewritten: f64,
}

/// One result slot per requested handle, filled as accesses resolve.
type ReadSlots = Vec<Option<Result<(Vec<u8>, ReadReport), StoreError>>>;

/// A RobuSTore client bound to one identity.
pub struct Client {
    system: System,
    identity: PublicKey,
    planner: LayoutPlanner,
}

impl Client {
    /// Connect to `system` as `identity`.
    pub fn connect(system: &System, identity: PublicKey) -> Self {
        Client {
            system: system.clone(),
            identity,
            planner: LayoutPlanner::default(),
        }
    }

    /// The client's identity.
    pub fn identity(&self) -> PublicKey {
        self.identity
    }

    /// Override the planner (tests / tuning).
    pub fn with_planner(mut self, planner: LayoutPlanner) -> Self {
        self.planner = planner;
        self
    }

    /// The system this client is connected to.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// `open(filename, access_type, qos)` — Appendix B. Owners open their
    /// own files directly; everyone else needs [`Client::open_with_chain`].
    pub fn open(
        &self,
        name: &str,
        mode: AccessMode,
        qos: QosOptions,
    ) -> Result<FileHandle, StoreError> {
        self.open_inner(name, mode, qos, None)
    }

    /// Open with a credential chain delegating access from the file owner.
    pub fn open_with_chain(
        &self,
        name: &str,
        mode: AccessMode,
        qos: QosOptions,
        chain: &CredentialChain,
    ) -> Result<FileHandle, StoreError> {
        self.open_inner(name, mode, qos, Some(chain))
    }

    fn open_inner(
        &self,
        name: &str,
        mode: AccessMode,
        qos: QosOptions,
        chain: Option<&CredentialChain>,
    ) -> Result<FileHandle, StoreError> {
        qos.validate().map_err(StoreError::AccessDenied)?;
        let mut meta_srv = self.system.inner.meta.lock();
        let meta = meta_srv.open(name, mode)?;
        // Authorisation: owners pass; others must present a chain.
        if let Some(m) = &meta {
            if m.owner != self.identity {
                let needed = match mode {
                    AccessMode::Read => Rights::R,
                    AccessMode::Write => Rights::W,
                };
                let ok = match chain {
                    Some(c) => self
                        .system
                        .inner
                        .authority
                        .lock()
                        .validate_chain(
                            c,
                            m.owner,
                            self.identity,
                            needed,
                            m.file_id,
                            &self.system.inner.config.app_domain,
                            self.system.now(),
                        )
                        .map_err(StoreError::AccessDenied),
                    None => Err(StoreError::AccessDenied(
                        "not the owner and no credential chain presented".into(),
                    )),
                };
                if let Err(e) = ok {
                    meta_srv.close(name, mode);
                    return Err(e);
                }
            }
        }
        Ok(FileHandle {
            name: name.to_string(),
            mode,
            qos,
            meta,
            closed: false,
        })
    }

    /// `write(fdescriptor, data)` — §4.3.2: plan layout, encode, spread
    /// coded blocks (more to faster disks), commit metadata.
    pub fn write(&self, handle: &mut FileHandle, data: &[u8]) -> Result<WriteReport, StoreError> {
        if handle.mode != AccessMode::Write || handle.closed {
            return Err(StoreError::WrongMode);
        }
        if data.is_empty() {
            return Err(StoreError::OutOfRange);
        }
        let block_bytes = self.system.inner.config.block_bytes as usize;
        let k = data.len().div_ceil(block_bytes);
        let blocks = split_blocks(data, block_bytes, k);

        // Plan disks + redundancy from the registry.
        let plan = {
            let meta_srv = self.system.inner.meta.lock();
            self.planner.plan(&handle.qos, meta_srv.disks())?
        };

        // Admission per selected storage server (§5.4): refused disks are
        // dropped; the access proceeds if at least one server admits.
        let access_id = self.system.next_access_id();
        let admitted: Vec<usize> = {
            let mut adm = self.system.inner.admission.lock();
            plan.disks
                .iter()
                .copied()
                .filter(|&d| adm[d].request(access_id))
                .collect()
        };
        if admitted.is_empty() {
            return Err(StoreError::AdmissionDenied {
                disk: *plan.disks.first().expect("plan has disks"),
            });
        }

        let result = self.write_admitted(
            handle,
            &blocks,
            data.len() as u64,
            &admitted,
            plan.redundancy,
        );

        // Release admission regardless of outcome.
        let mut adm = self.system.inner.admission.lock();
        for &d in &admitted {
            adm[d].release(access_id);
        }
        result
    }

    fn write_admitted(
        &self,
        handle: &mut FileHandle,
        blocks: &[Vec<u8>],
        size_bytes: u64,
        disks: &[usize],
        redundancy: f64,
    ) -> Result<WriteReport, StoreError> {
        let k = blocks.len();
        let n = (((1.0 + redundancy) * k as f64).round() as usize).max(k);
        let (file_id, version) = {
            let mut meta_srv = self.system.inner.meta.lock();
            match &handle.meta {
                Some(m) => (m.file_id, m.version + 1),
                None => (meta_srv.allocate_file_id()?, 1),
            }
        };
        let seed = file_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(version);
        let params = self.system.inner.config.lt;
        let code = LtCode::plan(k, n, params, seed)?;

        let backend = &self.system.inner.backend;
        // Speculative spreading: block counts proportional to disk speed.
        let weights: Vec<f64> = disks.iter().map(|&d| backend.disk_speed(d)).collect();
        let placement = Placement::coded_weighted(k, n, &weights);

        let layout: Vec<(usize, Vec<u32>)> = disks
            .iter()
            .enumerate()
            .map(|(slot, &d)| {
                (
                    d,
                    placement.per_disk[slot]
                        .iter()
                        .map(|b| b.semantic)
                        .collect(),
                )
            })
            .collect();

        // Copy-on-write overwrite: every new-generation block lands under
        // the key of *opposite* parity to the old generation's, so the
        // previous version stays intact (and readable) until the metadata
        // commit. Ids the old generation does not store default to even.
        let old = handle.meta.clone();
        let new_odd: BTreeSet<u32> = match &old {
            Some(old) => {
                let old_stored: HashSet<u32> = old
                    .layout
                    .iter()
                    .flat_map(|(_, ids)| ids.iter().copied())
                    .collect();
                layout
                    .iter()
                    .flat_map(|(_, ids)| ids.iter().copied())
                    .filter(|id| old_stored.contains(id) && !old.odd_keys.contains(id))
                    .collect()
            }
            None => BTreeSet::new(),
        };

        let mut meta = FileMeta {
            name: handle.name.clone(),
            file_id,
            size_bytes,
            coding: CodingSpec {
                k,
                n,
                block_bytes: self.system.inner.config.block_bytes,
                params,
                seed,
            },
            layout,
            odd_keys: new_odd.clone(),
            checksums: BTreeMap::new(),
            owner: old.as_ref().map(|m| m.owner).unwrap_or(self.identity),
            version,
        };

        // Every planned write, flattened slot by slot — the order the
        // in-order pipeline writer issues them, so the backend sees the
        // same sequence at every thread count and pipeline depth. The
        // starting slot rotates by file id (deterministic): concurrent
        // accesses to different files begin on different disks instead of
        // convoying on the same shard. Per-slot id order is unchanged, so
        // the committed layout does not depend on the rotation.
        let slots = meta.layout.len();
        let rot = (file_id as usize) % slots.max(1);
        let jobs: Vec<(usize, usize, u32)> = (0..slots)
            .map(|i| (i + rot) % slots)
            .flat_map(|slot| {
                let (d, ids) = &meta.layout[slot];
                ids.iter().map(move |&coded| (slot, *d, coded))
            })
            .collect();
        let job_ids: Vec<u32> = jobs.iter().map(|&(_, _, coded)| coded).collect();

        {
            // Writes the commit protocol must undo if this access aborts.
            let mut written: Vec<(usize, u64)> = Vec::new();
            // Ids each layout slot actually keeps (refusals drop out).
            let mut kept: Vec<Vec<u32>> = vec![Vec::new(); meta.layout.len()];
            // Blocks a disk refused, with their encoded bytes — redirected
            // below without re-encoding.
            let mut displaced: Vec<(u32, Block)> = Vec::new();
            // End-to-end integrity: digest every coded block once, as it
            // leaves the encoder, whatever disk it eventually lands on.
            let mut checksums: BTreeMap<u32, u32> = BTreeMap::new();

            let result = if let Some(ring) = self.system.inner.ring.as_ref() {
                // Ring path: writes stream into the per-disk queues with
                // a bounded window; the workers coalesce them — and any
                // concurrent access's writes — into cross-access group
                // commits. Outcomes are consumed strictly in job order
                // (the ring writer's reorder buffer), so the bookkeeping
                // matches the blocking group-commit loop below exactly.
                // The window stays small on purpose: a lone writer keeps
                // near-blocking cadence while overlapped writers fill
                // the workers' batches.
                let batch_cap = self.system.inner.config.group_commit.max(1);
                let window = (2 * batch_cap)
                    .max(self.system.inner.config.pipeline_depth)
                    .max(4);
                let access = self.system.next_access_id();
                let mut writer = RingWriter::new(ring, access, window);
                let mut on_write = |tag: u64, outcome: WriteOutcome| -> Result<(), StoreError> {
                    let (slot, disk, coded) = jobs[tag as usize];
                    match outcome {
                        WriteOutcome::Done => {
                            kept[slot].push(coded);
                            written.push((disk, gen_key(file_id, coded, new_odd.contains(&coded))));
                            Ok(())
                        }
                        WriteOutcome::Refused { data, .. } => {
                            displaced.push((coded, data));
                            Ok(())
                        }
                        WriteOutcome::Fault(e) => Err(e),
                        WriteOutcome::Aborted { disk } => Err(StoreError::DiskFault { disk }),
                    }
                };
                let r = encode_write_pipelined(
                    &code,
                    blocks,
                    &job_ids,
                    self.system.inner.config.encode_threads,
                    self.system.inner.config.pipeline_depth,
                    |idx, coded, data| {
                        let (_, disk, _) = jobs[idx];
                        let key = gen_key(file_id, coded, new_odd.contains(&coded));
                        checksums.insert(coded, crc32c(&data));
                        writer.submit(disk, key, data, &mut on_write)
                    },
                )
                .and_then(|()| writer.finish(&mut on_write));
                if r.is_err() {
                    // Revoke still-queued writes and fold any that landed
                    // anyway into the rollback set.
                    writer.drain_aborted(&mut written);
                }
                r
            } else {
                // Group commit: consecutive same-disk writes park here and
                // go to the shard under one lock acquisition. A batch
                // flushes when the job stream moves to another disk, when
                // it reaches the configured bound, and once more at the
                // end — so the backend still sees every write in exact job
                // order and the failure semantics match unbatched writes
                // (the batch stops at the first hard fault, like a
                // write-per-lock loop).
                let batch_cap = self.system.inner.config.group_commit.max(1);
                let mut pending: Vec<(usize, u32, u64, Block)> = Vec::new();
                let mut pending_disk = usize::MAX;

                // Bounded producer/consumer pipeline: encode workers run
                // ahead of this consumer by at most `pipeline_depth`
                // blocks while the backend write (the disk I/O) happens
                // here, in job order. Rateless writing routes around
                // refusing disks (§4.1.1): a rejected block is set aside
                // for redirection, anything worse aborts the access.
                encode_write_pipelined(
                    &code,
                    blocks,
                    &job_ids,
                    self.system.inner.config.encode_threads,
                    self.system.inner.config.pipeline_depth,
                    |idx, coded, data| {
                        let (slot, disk, _) = jobs[idx];
                        let key = gen_key(file_id, coded, new_odd.contains(&coded));
                        checksums.insert(coded, crc32c(&data));
                        if disk != pending_disk && !pending.is_empty() {
                            flush_batch(
                                backend,
                                pending_disk,
                                std::mem::take(&mut pending),
                                &mut kept,
                                &mut written,
                                &mut displaced,
                            )?;
                        }
                        pending_disk = disk;
                        pending.push((slot, coded, key, data));
                        if pending.len() >= batch_cap {
                            flush_batch(
                                backend,
                                disk,
                                std::mem::take(&mut pending),
                                &mut kept,
                                &mut written,
                                &mut displaced,
                            )?;
                        }
                        Ok(())
                    },
                )
                .and_then(|()| {
                    if pending.is_empty() {
                        Ok(())
                    } else {
                        flush_batch(
                            backend,
                            pending_disk,
                            pending,
                            &mut kept,
                            &mut written,
                            &mut displaced,
                        )
                    }
                })
            };
            if let Err(e) = result {
                delete_written(backend, &written);
                return Err(e);
            }
            for (slot, (_, ids)) in meta.layout.iter_mut().enumerate() {
                *ids = std::mem::take(&mut kept[slot]);
            }
            if !displaced.is_empty() {
                let healthy: Vec<usize> = meta
                    .layout
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, ids))| !ids.is_empty())
                    .map(|(slot, _)| slot)
                    .collect();
                if healthy.is_empty() {
                    delete_written(backend, &written);
                    return Err(StoreError::InsufficientDisks { got: 0, need: 1 });
                }
                for (i, (coded, data)) in displaced.into_iter().enumerate() {
                    // Round-robin over the healthy disks, reusing the
                    // already-encoded bytes — a refusal hands the buffer
                    // back, so it just moves on to the next candidate.
                    let key = gen_key(file_id, coded, new_odd.contains(&coded));
                    let mut data = data;
                    let mut placed = false;
                    for attempt in 0..healthy.len() {
                        let slot = healthy[(i + attempt) % healthy.len()];
                        let disk = meta.layout[slot].0;
                        match backend.write_block(disk, key, data) {
                            Ok(()) => {
                                meta.layout[slot].1.push(coded);
                                written.push((disk, key));
                                placed = true;
                                break;
                            }
                            Err(rw) => match rw.error {
                                StoreError::MissingBlock { .. } => data = rw.data,
                                e => {
                                    delete_written(backend, &written);
                                    return Err(e);
                                }
                            },
                        }
                    }
                    if !placed {
                        delete_written(backend, &written);
                        return Err(StoreError::InsufficientDisks { got: 0, need: 1 });
                    }
                }
            }
            meta.checksums = checksums;
            // Commit point: the metadata switch-over makes the new
            // generation the file. Until here the old version was intact;
            // from here the new one is.
            let mut meta_srv = self.system.inner.meta.lock();
            if let Err(e) = meta_srv.commit(meta.clone()) {
                delete_written(backend, &written);
                return Err(e);
            }
            // Garbage-collect the superseded generation (its keys differ
            // from every new one by the parity bit, so nothing just
            // written is touched).
            if let Some(old) = &old {
                for (disk, ids) in &old.layout {
                    for &id in ids {
                        let _ = backend.delete_block(*disk, old.block_key(id));
                    }
                }
            }
            // Feed fresh usage back to the registry (§4.2: dynamic storage
            // information comes from client accesses).
            for &d in disks {
                let used = backend.disk_used(d);
                let load = { self.system.inner.admission.lock()[d].load() };
                meta_srv.update_disk(d, used, load);
            }
        }
        handle.meta = Some(meta);
        Ok(WriteReport {
            blocks_written: n,
            redundancy,
            disks: disks.len(),
        })
    }

    /// `read(fdescriptor, ...)` — §4.3.3: request everything, decode from
    /// the early arrivals, cancel the rest.
    pub fn read(&self, handle: &FileHandle) -> Result<Vec<u8>, StoreError> {
        self.read_with_report(handle).map(|(d, _)| d)
    }

    /// Read returning the speculative-access accounting.
    pub fn read_with_report(
        &self,
        handle: &FileHandle,
    ) -> Result<(Vec<u8>, ReadReport), StoreError> {
        if self.system.inner.ring.is_some() {
            return self
                .read_many(&[handle])
                .pop()
                .expect("one result per handle");
        }
        if handle.closed {
            return Err(StoreError::StaleHandle);
        }
        let meta = handle.meta.as_ref().ok_or(StoreError::StaleHandle)?;
        let spec = &meta.coding;
        let code = LtCode::plan(spec.k, spec.n, spec.params, spec.seed)?;
        let block_len = spec.block_bytes as usize;
        // Borrow the system's recycled-buffer pool for this access; every
        // fetched buffer returns to it (decoded or spare) so repeated
        // reads are allocation-free after the first.
        let mut pool = match self.system.inner.pool.lock().take() {
            Some(p) if p.block_len() == block_len => p,
            _ => BlockPool::new(block_len),
        };
        let result = self.read_inner(meta, &code, block_len, &mut pool);
        // Hand the pool back on *every* exit — success, decode failure, or
        // a hard backend error — so buffers and counters never leak.
        // Concurrent reads each run on their own pool (the lock is never
        // held across I/O); merging instead of overwriting keeps every
        // buffer and every counter — accounting stays exact no matter how
        // many readers overlapped.
        {
            let mut slot = self.system.inner.pool.lock();
            match slot.as_mut() {
                Some(existing) if existing.block_len() == block_len => existing.absorb(pool),
                _ => *slot = Some(pool),
            }
        }
        result
    }

    /// Read several files at once from one client thread. With the I/O
    /// ring on (`SystemConfig::io_ring`), every access is kept in flight
    /// simultaneously: block requests stream into the per-disk queues in
    /// each file's virtual-arrival order, completions are consumed in
    /// per-access order, and the moment an access decodes, its
    /// still-queued requests are revoked before the disks service them.
    /// Results come back in handle order; each access succeeds or fails
    /// independently. Without the ring this is a sequential loop over
    /// [`Client::read_with_report`].
    pub fn read_many(
        &self,
        handles: &[&FileHandle],
    ) -> Vec<Result<(Vec<u8>, ReadReport), StoreError>> {
        let mut results: ReadSlots = (0..handles.len()).map(|_| None).collect();
        self.read_many_with(handles, None, |i, r| results[i] = Some(r));
        results
            .into_iter()
            .map(|r| r.expect("every handle resolved"))
            .collect()
    }

    /// Streaming form of [`Client::read_many`]: each access's result is
    /// handed to `sink(handle_index, result)` the moment it resolves and
    /// its buffers are recycled immediately, so a batch of hundreds of
    /// accesses never holds more than the in-flight decoders' data in
    /// memory. `arrivals` optionally paces the batch open-loop: entry `i`
    /// is the offset in microseconds from the call's start before access
    /// `i` submits its first request (the tail-latency harness feeds
    /// Poisson offsets here; `None` starts everything at once). Offsets
    /// pace submission only — completions of early accesses are serviced
    /// while later ones wait. Without the ring, accesses run sequentially
    /// in handle order (sleeping to each arrival offset first), so a slow
    /// access delays later arrivals — the closed-loop caveat the ring
    /// reactor exists to avoid. Accesses with different block sizes are
    /// driven as separate sequential reactor batches; open-loop pacing is
    /// only meaningful within one batch.
    pub fn read_many_with(
        &self,
        handles: &[&FileHandle],
        arrivals: Option<&[u64]>,
        mut sink: impl FnMut(usize, Result<(Vec<u8>, ReadReport), StoreError>),
    ) {
        let t0 = std::time::Instant::now();
        let arrival_of = |i: usize| arrivals.map_or(0, |offs| offs.get(i).copied().unwrap_or(0));
        if self.system.inner.ring.is_none() {
            for (i, h) in handles.iter().enumerate() {
                let at = std::time::Duration::from_micros(arrival_of(i));
                if let Some(wait) = at.checked_sub(t0.elapsed()) {
                    std::thread::sleep(wait);
                }
                sink(i, self.read_with_report(h));
            }
            return;
        }
        // Group valid handles by block size: the buffer pool holds one
        // size at a time, so each group runs as one reactor batch.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, h) in handles.iter().enumerate() {
            match h.meta.as_ref() {
                Some(m) if !h.closed => {
                    groups
                        .entry(m.coding.block_bytes as usize)
                        .or_default()
                        .push(i);
                }
                _ => sink(i, Err(StoreError::StaleHandle)),
            }
        }
        for (block_len, idxs) in groups {
            let mut pool = match self.system.inner.pool.lock().take() {
                Some(p) if p.block_len() == block_len => p,
                _ => BlockPool::new(block_len),
            };
            let jobs: Vec<(usize, &FileMeta, u64)> = idxs
                .iter()
                .map(|&i| {
                    (
                        i,
                        handles[i].meta.as_ref().expect("validated above"),
                        arrival_of(i),
                    )
                })
                .collect();
            self.ring_read_batch(&jobs, block_len, t0, &mut pool, &mut sink);
            {
                let mut slot = self.system.inner.pool.lock();
                match slot.as_mut() {
                    Some(existing) if existing.block_len() == block_len => existing.absorb(pool),
                    _ => *slot = Some(pool),
                }
            }
        }
    }

    /// The ring read reactor: drive a batch of same-block-size accesses
    /// to completion over the per-disk queues. Per access, requests are
    /// submitted in the wave policy's schedule with a bounded window, and
    /// completions are consumed strictly in tag order via a reorder
    /// buffer — so the decoder sees a deterministic block sequence and
    /// the decode point (hence the committed state and the report
    /// counters) depends only on the schedule, never on completion
    /// timing. Under [`ReadPolicy::Static`] — or adaptive with quiescent
    /// telemetry — the schedule is the nominal arrival order, the whole
    /// file is one wave, and the reactor behaves exactly like the
    /// blocking oracle. Under load, adaptive accesses submit a first
    /// wave of `⌈k·(1+ε)⌉` blocks and extend by `topup` entries whenever
    /// their outstanding completions run dry before decode (stall) or
    /// the deadline budget slips. On decode success the access's queued
    /// ops are revoked ([`IoRing::cancel`]); completions for ops the
    /// disks had already started are drained and their buffers recycled.
    /// Each job is `(handle_index, meta, arrival_micros)`; results go to
    /// `sink(handle_index, result)` as accesses resolve.
    fn ring_read_batch(
        &self,
        jobs: &[(usize, &FileMeta, u64)],
        block_len: usize,
        t0: std::time::Instant,
        pool: &mut BlockPool,
        sink: &mut impl FnMut(usize, Result<(Vec<u8>, ReadReport), StoreError>),
    ) {
        use std::time::{Duration, Instant};
        let ring = self.system.inner.ring.as_ref().expect("ring mode");
        let backend = &self.system.inner.backend;
        let policy = self.system.inner.config.read_policy;
        // Disk availabilities for the wave policy's mixing rule, indexed
        // by disk id (one registry lock per batch).
        let avail: Vec<f64> = {
            let meta_srv = self.system.inner.meta.lock();
            let mut avail = vec![1.0; backend.num_disks()];
            for d in meta_srv.disks() {
                if let Some(slot) = avail.get_mut(d.id) {
                    *slot = d.availability;
                }
            }
            avail
        };

        /// Per-access reactor state.
        struct ReadState<'m> {
            meta: &'m FileMeta,
            decoder: LtDecoder<'m>,
            /// `(slot, idx)` per tag — the wave policy's fetch schedule
            /// (empty until the access activates at its arrival time).
            order: Vec<(usize, usize)>,
            access: u64,
            /// Max requests in flight; small enough that an access never
            /// submits far past its decode point (cancellation savings),
            /// large enough to keep every disk of the layout busy.
            window: usize,
            /// Submission bound: entries of `order` released so far (the
            /// first wave, plus one top-up per extension).
            limit: usize,
            /// Entries added per top-up extension.
            topup: usize,
            /// Deadline budget between extensions (`None` = no timer).
            deadline: Option<Duration>,
            /// Next deadline slip, re-armed on each extension.
            deadline_at: Option<Instant>,
            /// When this access may submit its first wave.
            arrival_at: Instant,
            started: bool,
            waves: usize,
            submitted: usize,
            /// Tags processed in order so far.
            next: usize,
            received: usize,
            parked: BTreeMap<u64, CompletionKind>,
            fetched: usize,
            retries: u64,
            missing: usize,
            corrupt: usize,
            unverified: usize,
            bad: BTreeSet<u32>,
            /// Ids fetched and verified good — exempt from the repair
            /// audit (re-reading them would double-count disk traffic).
            good: BTreeSet<u32>,
            done_decoding: bool,
            fatal: Option<StoreError>,
        }

        impl ReadState<'_> {
            /// All released work is done but the decoder isn't: extend.
            fn stalled(&self) -> bool {
                self.started
                    && self.fatal.is_none()
                    && !self.done_decoding
                    && self.received == self.submitted
                    && self.next == self.submitted
                    && self.submitted == self.limit
                    && self.limit < self.order.len()
            }

            /// Every outstanding completion drained and the access's fate
            /// decided — ready to finalize and emit.
            fn resolved(&self) -> bool {
                self.started
                    && self.received == self.submitted
                    && (self.done_decoding || self.fatal.is_some() || self.next == self.order.len())
            }

            /// Release the next top-up wave and re-arm the deadline.
            fn extend(&mut self, now: Instant) {
                self.limit = (self.limit + self.topup).min(self.order.len());
                self.waves += 1;
                self.deadline_at = if self.limit < self.order.len() {
                    self.deadline.map(|d| now + d)
                } else {
                    None
                };
            }
        }

        /// Submit until the window is full (or the access is resolved).
        fn top_up(
            st: &mut ReadState<'_>,
            ring: &IoRing,
            tx: &std::sync::mpsc::Sender<Completion>,
            pool: &mut BlockPool,
        ) {
            while st.fatal.is_none()
                && !st.done_decoding
                && st.submitted < st.limit
                && st.submitted - st.next < st.window
            {
                let (slot, idx) = st.order[st.submitted];
                let (disk, ids) = &st.meta.layout[slot];
                let coded = ids[idx];
                ring.submit(
                    *disk,
                    st.access,
                    st.submitted as u64,
                    SubmitOp::Read {
                        key: st.meta.block_key(coded),
                        buf: pool.get_scratch(),
                    },
                    tx,
                );
                st.submitted += 1;
            }
        }

        fn recycle(pool: &mut BlockPool, mut buf: Vec<u8>, block_len: usize) {
            buf.clear();
            buf.resize(block_len, 0);
            pool.put(buf);
        }

        /// Handle the completion for `tag` (already the next in order).
        fn process(
            st: &mut ReadState<'_>,
            tag: usize,
            kind: CompletionKind,
            block_len: usize,
            pool: &mut BlockPool,
            ring: &IoRing,
        ) {
            if st.done_decoding || st.fatal.is_some() {
                // Drained mode: the access already resolved; completions
                // for ops the cancel couldn't revoke (or parked behind the
                // resolution point) just hand their buffers back.
                match kind {
                    CompletionKind::Read { buf, .. } => recycle(pool, buf, block_len),
                    CompletionKind::Cancelled { buf: Some(buf) } => recycle(pool, buf, block_len),
                    CompletionKind::Cancelled { buf: None } => {}
                    other => unreachable!("read access got {other:?}"),
                }
                return;
            }
            let (slot, idx) = st.order[tag];
            let coded = st.meta.layout[slot].1[idx];
            match kind {
                CompletionKind::Read {
                    result,
                    buf,
                    retries,
                } => {
                    st.retries += retries;
                    match result {
                        Ok(()) => {
                            // Same integrity gate as the blocking path:
                            // short or checksum-failing blocks demote to
                            // missing; digest-less blocks pass unverified.
                            let accepted = if buf.len() != block_len {
                                st.corrupt += 1;
                                false
                            } else {
                                match st.meta.checksums.get(&coded) {
                                    Some(&want) if crc32c(&buf) != want => {
                                        st.corrupt += 1;
                                        false
                                    }
                                    Some(_) => true,
                                    None => {
                                        st.unverified += 1;
                                        true
                                    }
                                }
                            };
                            if accepted {
                                st.fetched += 1;
                                st.good.insert(coded);
                                if st.decoder.receive(coded as usize, buf) {
                                    // Decode complete: revoke everything
                                    // still queued before a disk gets to
                                    // service it — this is where the
                                    // cancellation policy reclaims real
                                    // disk time.
                                    st.done_decoding = true;
                                    ring.cancel(st.access);
                                }
                            } else {
                                st.bad.insert(coded);
                                recycle(pool, buf, block_len);
                            }
                        }
                        // The worker spent the retry budget (transient) or
                        // the block is gone: demoted to missing, exactly
                        // like the blocking retry loop's exhaustion path.
                        Err(StoreError::TransientIo { .. })
                        | Err(StoreError::MissingBlock { .. }) => {
                            st.missing += 1;
                            st.bad.insert(coded);
                            recycle(pool, buf, block_len);
                        }
                        Err(e) => {
                            recycle(pool, buf, block_len);
                            st.fatal = Some(e);
                            ring.cancel(st.access);
                        }
                    }
                }
                CompletionKind::Cancelled { buf } => {
                    // Cancels are only issued after done/fatal, so a tag
                    // below the resolution point always carries a real
                    // completion; recycle defensively all the same.
                    if let Some(buf) = buf {
                        recycle(pool, buf, block_len);
                    }
                }
                other => unreachable!("read access got {other:?}"),
            }
        }

        // Codes live outside the states so the decoders can borrow them.
        let mut codes: Vec<Option<LtCode>> = Vec::with_capacity(jobs.len());
        for &(i, meta, _) in jobs {
            let spec = &meta.coding;
            match LtCode::plan(spec.k, spec.n, spec.params, spec.seed) {
                Ok(c) => codes.push(Some(c)),
                Err(e) => {
                    sink(i, Err(e.into()));
                    codes.push(None);
                }
            }
        }
        // One state slot per job (None = plan error, already emitted, or
        // finalized); the schedule is computed lazily at each access's
        // arrival time so it sees the freshest telemetry.
        let mut states: Vec<Option<ReadState>> = Vec::with_capacity(jobs.len());
        let mut by_access: BTreeMap<u64, usize> = BTreeMap::new();
        for (si, &(_, meta, arrival_micros)) in jobs.iter().enumerate() {
            let Some(code) = codes[si].as_ref() else {
                states.push(None);
                continue;
            };
            let access = self.system.next_access_id();
            by_access.insert(access, si);
            states.push(Some(ReadState {
                meta,
                decoder: LtDecoder::new(code, block_len),
                order: Vec::new(),
                access,
                window: (2 * meta.layout.len()).max(8),
                limit: 0,
                topup: 0,
                deadline: None,
                deadline_at: None,
                arrival_at: t0 + Duration::from_micros(arrival_micros),
                started: false,
                waves: 0,
                submitted: 0,
                next: 0,
                received: 0,
                parked: BTreeMap::new(),
                fetched: 0,
                retries: 0,
                missing: 0,
                corrupt: 0,
                unverified: 0,
                bad: BTreeSet::new(),
                good: BTreeSet::new(),
                done_decoding: false,
                fatal: None,
            }));
        }

        // The reactor proper: one channel fans every disk's completions
        // back in; each completion advances its access (in tag order) and
        // tops its window back up. Every submitted op yields exactly one
        // completion — serviced or cancelled — so draining needs no
        // timeouts; timers exist only for arrival pacing and deadline
        // budgets. Accesses finalize (and emit) the moment they resolve.
        let (tx, rx) = std::sync::mpsc::channel();
        loop {
            let now = Instant::now();
            for si in 0..states.len() {
                let Some(st) = states[si].as_mut() else {
                    continue;
                };
                // Activate due arrivals: snapshot the live load and build
                // the wave schedule.
                if !st.started && now >= st.arrival_at {
                    let sched = policy.schedule(
                        &wave_slots(st.meta, backend, &avail),
                        st.meta.coding.k,
                        &ring.load_map(),
                    );
                    st.order = sched.order;
                    st.limit = sched.first_wave;
                    st.topup = sched.topup.max(1);
                    st.deadline = sched.deadline_micros.map(Duration::from_micros);
                    st.deadline_at = st.deadline.map(|d| now + d);
                    st.started = true;
                    st.waves = 1;
                    top_up(st, ring, &tx, pool);
                }
                if !st.started {
                    continue;
                }
                if st.done_decoding || st.fatal.is_some() {
                    st.deadline_at = None;
                } else if st.deadline_at.is_some_and(|at| now >= at) && st.limit < st.order.len() {
                    // Deadline budget slipped: release the next wave even
                    // though completions are still trickling in.
                    st.extend(now);
                    top_up(st, ring, &tx, pool);
                }
                if st.stalled() {
                    // Released work ran dry before decode (faulty or
                    // deferred blocks): release the next wave now.
                    st.extend(now);
                    top_up(st, ring, &tx, pool);
                }
                if st.resolved() {
                    // Finalize exactly as the blocking tail does, then
                    // emit and free the state (buffers recycle now, not
                    // at batch end — bounded memory for huge batches).
                    let st = states[si].take().expect("checked above");
                    let i = jobs[si].0;
                    let ReadState {
                        meta,
                        mut decoder,
                        order,
                        submitted,
                        waves,
                        fetched,
                        retries,
                        missing,
                        corrupt,
                        unverified,
                        bad,
                        good,
                        fatal,
                        ..
                    } = st;
                    let r = if let Some(e) = fatal {
                        pool.put_all(decoder.drain_all());
                        Err(e)
                    } else {
                        let complete = decoder.is_complete() || decoder.solve();
                        pool.put_all(decoder.drain_spares());
                        if !complete {
                            pool.put_all(decoder.drain_all());
                            Err(StoreError::Coding(
                                robustore_erasure::CodingError::DecodeFailed,
                            ))
                        } else {
                            let blocks = decoder.into_data().expect("complete decoder yields data");
                            let repaired = if self.system.inner.config.read_repair
                                && !bad.is_empty()
                            {
                                let code = codes[si].as_ref().expect("state implies planned code");
                                self.try_read_repair(meta, code, &blocks, &bad, &good)
                            } else {
                                0
                            };
                            let mut out = Vec::with_capacity(meta.size_bytes as usize);
                            for b in blocks {
                                out.extend_from_slice(&b);
                                pool.put(b);
                            }
                            out.truncate(meta.size_bytes as usize);
                            Ok((
                                out,
                                ReadReport {
                                    blocks_fetched: fetched,
                                    blocks_cancelled: meta.stored_blocks().saturating_sub(fetched),
                                    reception_overhead: fetched as f64 / meta.coding.k as f64 - 1.0,
                                    transient_retries: retries,
                                    blocks_missing: missing,
                                    blocks_corrupt: corrupt,
                                    blocks_unverified: unverified,
                                    blocks_repaired: repaired,
                                    blocks_deferred: order.len() - submitted,
                                    waves: waves.max(1),
                                },
                            ))
                        }
                    };
                    sink(i, r);
                }
            }
            if states.iter().all(Option::is_none) {
                break;
            }
            // Wait for the next event: a completion, the next arrival, or
            // the earliest deadline.
            let outstanding = states.iter().flatten().any(|st| st.received < st.submitted);
            let timer: Option<Instant> = states
                .iter()
                .flatten()
                .filter_map(|st| {
                    if st.started {
                        st.deadline_at
                    } else {
                        Some(st.arrival_at)
                    }
                })
                .min();
            let c = if outstanding {
                match timer {
                    Some(at) => {
                        let wait = at.saturating_duration_since(Instant::now());
                        match rx.recv_timeout(wait) {
                            Ok(c) => Some(c),
                            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                            Err(e) => unreachable!("ring workers outlive the accesses: {e}"),
                        }
                    }
                    None => Some(rx.recv().expect("ring workers outlive the accesses")),
                }
            } else {
                let at = timer.expect("unresolved access with no work has a timer");
                std::thread::sleep(at.saturating_duration_since(Instant::now()));
                None
            };
            if let Some(c) = c {
                let si = by_access[&c.access];
                let st = states[si]
                    .as_mut()
                    .expect("resolved accesses have no completions left");
                st.received += 1;
                st.parked.insert(c.tag, c.kind);
                while let Some(kind) = st.parked.remove(&(st.next as u64)) {
                    let tag = st.next;
                    st.next += 1;
                    process(st, tag, kind, block_len, pool, ring);
                }
                top_up(st, ring, &tx, pool);
            }
        }
    }

    fn read_inner(
        &self,
        meta: &FileMeta,
        code: &LtCode,
        block_len: usize,
        pool: &mut BlockPool,
    ) -> Result<(Vec<u8>, ReadReport), StoreError> {
        let spec = &meta.coding;
        let mut decoder = LtDecoder::new(code, block_len);

        let backend = &self.system.inner.backend;
        let order = arrival_order(meta, backend);

        let retry = self.system.inner.config.read_retry;
        let max_attempts = retry.attempts.max(1);
        // Deterministic backoff jitter: seeded by file identity so a
        // replay under the same fault plan sleeps the same schedule.
        let mut backoff_rng = SeedSequence::new(
            meta.file_id
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(meta.version),
        )
        .fork("read-backoff", 0);

        let mut fetched = 0usize;
        let mut transient_retries = 0u64;
        let mut missing = 0usize;
        let mut corrupt = 0usize;
        let mut unverified = 0usize;
        // Ids the layout stores but the read could not use (missing or
        // failed verification) — the read-repair candidates.
        let mut bad: BTreeSet<u32> = BTreeSet::new();
        // Ids fetched and verified good — exempt from the repair audit.
        let mut good: BTreeSet<u32> = BTreeSet::new();
        let mut fatal: Option<StoreError> = None;
        {
            // Shard-scoped access: each block fetch locks only its own
            // disk's shard (inside the router), so concurrent readers and
            // writers on other disks proceed in parallel.
            'fetch: for (slot, idx) in order {
                let (disk, ids) = &meta.layout[slot];
                let coded = ids[idx];
                // Degraded read: an unreadable block (offline server, lost
                // sector) is simply a block that never arrives — the
                // redundancy absorbs it (§4.1.3). Skip to the disk's next
                // block; decoding fails only if no sufficient subset
                // remains anywhere. Transient errors get a bounded retry
                // first; only then is the block demoted to missing.
                let mut buf = pool.get_scratch();
                let (result, retries) = backend.read_block_retry(
                    *disk,
                    meta.block_key(coded),
                    &mut buf,
                    max_attempts,
                    |attempt| {
                        if retry.backoff_micros > 0 {
                            let jitter = 0.5 + uniform01(&mut backoff_rng);
                            let micros = (retry.backoff_micros << (attempt - 1)) as f64 * jitter;
                            std::thread::sleep(std::time::Duration::from_micros(micros as u64));
                        }
                    },
                );
                transient_retries += retries;
                let outcome = match result {
                    Ok(()) => Ok(()),
                    // Retries exhausted (transient) or the block is gone:
                    // demoted to missing either way.
                    Err(StoreError::TransientIo { .. }) | Err(StoreError::MissingBlock { .. }) => {
                        Err(None)
                    }
                    Err(e) => Err(Some(e)),
                };
                match outcome {
                    Ok(()) => {
                        // Integrity gate: a block that fails its recorded
                        // digest — or arrives short (torn read) — is silent
                        // corruption, demoted to a missing block. Blocks
                        // with no recorded digest (pre-checksum metadata)
                        // are accepted but counted as unverified.
                        let accepted = if buf.len() != block_len {
                            corrupt += 1;
                            false
                        } else {
                            match meta.checksums.get(&coded) {
                                Some(&want) if crc32c(&buf) != want => {
                                    corrupt += 1;
                                    false
                                }
                                Some(_) => true,
                                None => {
                                    unverified += 1;
                                    true
                                }
                            }
                        };
                        if accepted {
                            fetched += 1;
                            good.insert(coded);
                            if decoder.receive(coded as usize, buf) {
                                break; // completion: cancel everything still queued
                            }
                        } else {
                            bad.insert(coded);
                            buf.clear();
                            buf.resize(block_len, 0);
                            pool.put(buf);
                        }
                    }
                    Err(None) => {
                        missing += 1;
                        bad.insert(coded);
                        buf.clear();
                        buf.resize(block_len, 0);
                        pool.put(buf);
                    }
                    Err(Some(e)) => {
                        buf.clear();
                        buf.resize(block_len, 0);
                        pool.put(buf);
                        fatal = Some(e);
                        break 'fetch;
                    }
                }
            }
        }
        if let Some(e) = fatal {
            pool.put_all(decoder.drain_all());
            return Err(e);
        }
        // Every fetchable block is in. If the peel stalled, fall back to
        // Gaussian elimination — the survivors may still span the data
        // (see `LtDecoder::solve`); only rank deficiency fails the read.
        let complete = decoder.is_complete() || decoder.solve();
        pool.put_all(decoder.drain_spares());
        if !complete {
            pool.put_all(decoder.drain_all());
            return Err(StoreError::Coding(
                robustore_erasure::CodingError::DecodeFailed,
            ));
        }
        let blocks = decoder.into_data().expect("complete decoder yields data");

        // Read-repair: the decode just reconstructed everything the bad
        // blocks encoded, so put them back while the data is in hand.
        // Strictly best-effort — a successful read never fails here.
        let repaired = if self.system.inner.config.read_repair && !bad.is_empty() {
            self.try_read_repair(meta, code, &blocks, &bad, &good)
        } else {
            0
        };

        let mut out = Vec::with_capacity(meta.size_bytes as usize);
        for b in blocks {
            out.extend_from_slice(&b);
            pool.put(b); // decoded buffers recycle too
        }
        out.truncate(meta.size_bytes as usize);
        Ok((
            out,
            ReadReport {
                blocks_fetched: fetched,
                blocks_cancelled: meta.stored_blocks().saturating_sub(fetched),
                reception_overhead: fetched as f64 / spec.k as f64 - 1.0,
                transient_retries,
                blocks_missing: missing,
                blocks_corrupt: corrupt,
                blocks_unverified: unverified,
                blocks_repaired: repaired,
                blocks_deferred: 0,
                waves: 1,
            },
        ))
    }

    /// Best-effort read-repair. Re-encodes the coded blocks a read found
    /// missing or corrupt and re-places them:
    ///
    /// - **In place** (same disk, same key) whenever the home disk takes
    ///   the write — coded bytes are a deterministic function of content
    ///   and the key parity is per-id, so the rewrite is idempotent and
    ///   needs no metadata change.
    /// - **Relocated** to another layout disk when the home refuses. A
    ///   relocation moves the id in the layout, which needs a metadata
    ///   commit — taken only if this reader can upgrade its reader lock
    ///   (i.e. it is the sole reader; `update` holds the writer lock so
    ///   it can never race this commit). Otherwise relocations roll back.
    ///
    /// The repair set is **canonical**: which damaged blocks a read
    /// *encounters* before its decoder completes depends on the wave
    /// schedule's prefix (adaptive scheduling reorders it under load), so
    /// repairing only the encountered set would make committed state
    /// arrival-order-sensitive. Once any damage is seen, every stored id
    /// the read did not itself verify is audited (read + checksum, or
    /// compared against a re-encode for digest-less legacy blocks) and
    /// the full damage set is repaired — byte-identical committed state
    /// whatever prefix the read happened to fetch.
    ///
    /// Returns the number of blocks restored. Never fails the read.
    fn try_read_repair(
        &self,
        meta: &FileMeta,
        code: &LtCode,
        blocks: &[Block],
        bad: &BTreeSet<u32>,
        good: &BTreeSet<u32>,
    ) -> usize {
        let mut slot_of: BTreeMap<u32, usize> = BTreeMap::new();
        for (slot, (_, ids)) in meta.layout.iter().enumerate() {
            for &id in ids {
                slot_of.insert(id, slot);
            }
        }
        // Audit everything the read neither verified nor already condemned.
        let block_len = meta.coding.block_bytes as usize;
        let max_attempts = self.system.inner.config.read_retry.attempts.max(1);
        let backend = &self.system.inner.backend;
        let mut damage = bad.clone();
        let mut scratch = Vec::new();
        for (disk, ids) in &meta.layout {
            for &id in ids {
                if good.contains(&id) || damage.contains(&id) {
                    continue;
                }
                let (result, _) = backend.read_block_retry(
                    *disk,
                    meta.block_key(id),
                    &mut scratch,
                    max_attempts,
                    |_| {},
                );
                let ok = result.is_ok()
                    && scratch.len() == block_len
                    && match meta.checksums.get(&id) {
                        Some(&want) => crc32c(&scratch) == want,
                        // Legacy digest-less block: the decoded data is
                        // ground truth, compare against the re-encode.
                        None => scratch == code.encode_block(blocks, id as usize),
                    };
                if !ok {
                    damage.insert(id);
                }
            }
        }
        let mut repaired = 0usize;
        let mut relocations: Vec<(u32, usize, usize)> = Vec::new();
        // Relocation writes only — rolled back if the commit is skipped.
        let mut placed: Vec<(usize, u64)> = Vec::new();
        for &id in &damage {
            let Some(&home) = slot_of.get(&id) else {
                continue;
            };
            let key = meta.block_key(id);
            let mut data = code.encode_block(blocks, id as usize);
            match backend.write_block(meta.layout[home].0, key, data) {
                Ok(()) => {
                    repaired += 1;
                    continue;
                }
                Err(rw) => match rw.error {
                    StoreError::MissingBlock { .. } => data = rw.data,
                    _ => continue, // hard failure: give up on this block
                },
            }
            for attempt in 1..meta.layout.len() {
                let slot = (home + attempt) % meta.layout.len();
                let disk = meta.layout[slot].0;
                match backend.write_block(disk, key, data) {
                    Ok(()) => {
                        relocations.push((id, home, slot));
                        placed.push((disk, key));
                        break;
                    }
                    Err(rw) => match rw.error {
                        StoreError::MissingBlock { .. } => data = rw.data,
                        _ => break,
                    },
                }
            }
        }
        if !relocations.is_empty() {
            let mut meta_srv = self.system.inner.meta.lock();
            if meta_srv.try_upgrade(&meta.name) {
                let mut new_meta = meta.clone();
                new_meta.version += 1;
                for &(id, old_slot, new_slot) in &relocations {
                    new_meta.layout[old_slot].1.retain(|&x| x != id);
                    new_meta.layout[new_slot].1.push(id);
                }
                let committed = meta_srv.commit(new_meta).is_ok();
                meta_srv.downgrade(&meta.name);
                drop(meta_srv);
                if committed {
                    repaired += relocations.len();
                    // Corrupt leftovers at the old homes are garbage now.
                    for &(id, old_slot, _) in &relocations {
                        let _ = backend.delete_block(meta.layout[old_slot].0, meta.block_key(id));
                    }
                } else {
                    delete_written(backend, &placed);
                }
            } else {
                // Overlapping readers: keep the file exactly as committed.
                drop(meta_srv);
                delete_written(backend, &placed);
            }
        }
        repaired
    }

    /// Update `patch.len()` bytes at `offset` — §4.3.4: regenerate only
    /// the coded blocks touching the changed originals.
    pub fn update(
        &self,
        handle: &mut FileHandle,
        offset: u64,
        patch: &[u8],
    ) -> Result<UpdateReport, StoreError> {
        if handle.mode != AccessMode::Write || handle.closed {
            return Err(StoreError::WrongMode);
        }
        let meta = handle.meta.clone().ok_or(StoreError::StaleHandle)?;
        if patch.is_empty() || offset + patch.len() as u64 > meta.size_bytes {
            return Err(StoreError::OutOfRange);
        }
        let spec = meta.coding.clone();
        let code = LtCode::plan(spec.k, spec.n, spec.params, spec.seed)?;

        // Current content, patched.
        let (mut data, _) = self.read_with_report(handle)?;
        data[offset as usize..offset as usize + patch.len()].copy_from_slice(patch);
        let blocks = split_blocks(&data, spec.block_bytes as usize, spec.k);

        // Originals covered by the patch → coded blocks to regenerate.
        let first = (offset / spec.block_bytes) as usize;
        let last = ((offset + patch.len() as u64 - 1) / spec.block_bytes) as usize;
        let mut dirty_coded: Vec<u32> = (first..=last)
            .flat_map(|orig| code.blocks_touching(orig))
            .map(|j| j as u32)
            .collect();
        dirty_coded.sort_unstable();
        dirty_coded.dedup();

        // coded id → disk map from the layout.
        let mut disk_of = std::collections::HashMap::new();
        for (disk, ids) in &meta.layout {
            for &id in ids {
                disk_of.insert(id, *disk);
            }
        }
        for &coded in &dirty_coded {
            if !disk_of.contains_key(&coded) {
                return Err(StoreError::MissingBlock {
                    disk: usize::MAX,
                    block: coded as u64,
                });
            }
        }
        // Copy-on-write in place: each regenerated block lands under the
        // opposite-parity key of its current one, so the committed version
        // stays readable until the metadata commit flips the parities.
        let mut new_odd = meta.odd_keys.clone();
        for &id in &dirty_coded {
            if !new_odd.remove(&id) {
                new_odd.insert(id);
            }
        }
        let mut new_meta = meta.clone();
        new_meta.version += 1;
        new_meta.odd_keys = new_odd.clone();
        {
            let backend = &self.system.inner.backend;
            let mut written: Vec<(usize, u64)> = Vec::new();
            // Regenerated blocks get fresh digests; untouched ones keep
            // theirs (legacy files may have partial maps — that's fine).
            let mut new_checksums = meta.checksums.clone();
            // Regenerated blocks are independent too — the same bounded
            // encode/write pipeline as the write path. An update has no
            // rateless slack (each block's disk is fixed by the layout),
            // so *any* write failure aborts and rolls back.
            let result = if let Some(ring) = self.system.inner.ring.as_ref() {
                let batch_cap = self.system.inner.config.group_commit.max(1);
                let window = (2 * batch_cap)
                    .max(self.system.inner.config.pipeline_depth)
                    .max(4);
                let access = self.system.next_access_id();
                let mut writer = RingWriter::new(ring, access, window);
                let mut on_write = |tag: u64, outcome: WriteOutcome| -> Result<(), StoreError> {
                    let coded = dirty_coded[tag as usize];
                    match outcome {
                        WriteOutcome::Done => {
                            let key = gen_key(meta.file_id, coded, new_odd.contains(&coded));
                            written.push((disk_of[&coded], key));
                            Ok(())
                        }
                        // No rateless slack on an update: a refusal aborts,
                        // exactly like the blocking path.
                        WriteOutcome::Refused { error, .. } => Err(error),
                        WriteOutcome::Fault(e) => Err(e),
                        WriteOutcome::Aborted { disk } => Err(StoreError::DiskFault { disk }),
                    }
                };
                let r = encode_write_pipelined(
                    &code,
                    &blocks,
                    &dirty_coded,
                    self.system.inner.config.encode_threads,
                    self.system.inner.config.pipeline_depth,
                    |_, coded, data| {
                        let disk = disk_of[&coded];
                        let key = gen_key(meta.file_id, coded, new_odd.contains(&coded));
                        new_checksums.insert(coded, crc32c(&data));
                        writer.submit(disk, key, data, &mut on_write)
                    },
                )
                .and_then(|()| writer.finish(&mut on_write));
                if r.is_err() {
                    writer.drain_aborted(&mut written);
                }
                r
            } else {
                encode_write_pipelined(
                    &code,
                    &blocks,
                    &dirty_coded,
                    self.system.inner.config.encode_threads,
                    self.system.inner.config.pipeline_depth,
                    |_, coded, data| {
                        let disk = disk_of[&coded];
                        let key = gen_key(meta.file_id, coded, new_odd.contains(&coded));
                        new_checksums.insert(coded, crc32c(&data));
                        match backend.write_block(disk, key, data) {
                            Ok(()) => {
                                written.push((disk, key));
                                Ok(())
                            }
                            Err(rw) => Err(rw.error),
                        }
                    },
                )
            };
            if let Err(e) = result {
                delete_written(backend, &written);
                return Err(e);
            }
            new_meta.checksums = new_checksums;
            // Commit point, then garbage-collect the superseded blocks.
            if let Err(e) = self.system.inner.meta.lock().commit(new_meta.clone()) {
                delete_written(backend, &written);
                return Err(e);
            }
            for &coded in &dirty_coded {
                let _ = backend.delete_block(disk_of[&coded], meta.block_key(coded));
            }
        }
        handle.meta = Some(new_meta);

        Ok(UpdateReport {
            originals_changed: last - first + 1,
            coded_rewritten: dirty_coded.len(),
            fraction_rewritten: dirty_coded.len() as f64 / spec.n as f64,
        })
    }

    /// Delete a file: remove its coded blocks from every disk and drop its
    /// metadata. Requires owner (or W-granting chain via an already-open
    /// write handle path); takes the writer lock internally.
    pub fn delete(&self, name: &str) -> Result<(), StoreError> {
        let handle = self.open(name, AccessMode::Write, QosOptions::best_effort())?;
        let result = (|| {
            let meta = handle
                .meta
                .clone()
                .ok_or_else(|| StoreError::NotFound(name.into()))?;
            {
                let backend = &self.system.inner.backend;
                if let Some(ring) = self.system.inner.ring.as_ref() {
                    // Fan the deletes out across the per-disk queues and
                    // wait for all of them (delete failures are ignored
                    // either way: the block never landed or is gone).
                    let access = self.system.next_access_id();
                    let (tx, rx) = std::sync::mpsc::channel();
                    let mut n = 0u64;
                    for (disk, ids) in &meta.layout {
                        for &id in ids {
                            ring.submit(
                                *disk,
                                access,
                                n,
                                SubmitOp::Delete {
                                    key: meta.block_key(id),
                                },
                                &tx,
                            );
                            n += 1;
                        }
                    }
                    for _ in 0..n {
                        let _ = rx.recv();
                    }
                } else {
                    for (disk, ids) in &meta.layout {
                        for &id in ids {
                            let _ = backend.delete_block(*disk, meta.block_key(id));
                        }
                    }
                }
            }
            self.system.inner.meta.lock().remove(name)?;
            Ok(())
        })();
        self.close(handle)?;
        result
    }

    /// Verify and restore one file to full strength — the scrubber's
    /// per-file pass (see [`crate::scrub::Scrubber`] for the sweep over a
    /// whole store).
    ///
    /// Unlike a read, a scrub visits *every* stored block (no early
    /// cancel): it verifies checksums disk by disk, decodes the file,
    /// re-encodes whatever is missing or corrupt, re-places it on the
    /// least-loaded disks (colonising disks the file never used if that's
    /// where the space is), and commits metadata carrying a complete
    /// checksum map — so a legacy, pre-checksum file comes out fully
    /// verifiable.
    ///
    /// Legacy blocks with no recorded digest are fed to the decoder
    /// optimistically and audited afterwards against a re-encode of the
    /// decoded data; a mismatch means corruption reached the decoder, so
    /// the scrub fails with `DecodeFailed` rather than commit anything
    /// derived from it.
    pub fn scrub(&self, name: &str) -> Result<ScrubReport, StoreError> {
        self.scrub_with(name, &ScrubOptions::default())
    }

    /// [`Client::scrub`] with repair-service controls: an optional
    /// token-bucket throttle charged per block of repair I/O, background
    /// scheduling class on ring submissions (so repair traffic waits
    /// behind every queued foreground op), and load-aware re-placement
    /// that consults the ring's live load map so restored blocks land on
    /// genuinely least-loaded disks. The default options reproduce
    /// [`Client::scrub`] exactly.
    pub fn scrub_with(
        &self,
        name: &str,
        opts: &ScrubOptions<'_>,
    ) -> Result<ScrubReport, StoreError> {
        let handle = self.open(name, AccessMode::Write, QosOptions::best_effort())?;
        let result = self.scrub_admitted_with(&handle, opts);
        self.close(handle)?;
        result
    }

    fn scrub_admitted_with(
        &self,
        handle: &FileHandle,
        opts: &ScrubOptions<'_>,
    ) -> Result<ScrubReport, StoreError> {
        let meta = handle
            .meta
            .clone()
            .ok_or_else(|| StoreError::NotFound(handle.name.clone()))?;
        let spec = meta.coding.clone();
        let code = LtCode::plan(spec.k, spec.n, spec.params, spec.seed)?;
        let block_len = spec.block_bytes as usize;
        let mut pool = match self.system.inner.pool.lock().take() {
            Some(p) if p.block_len() == block_len => p,
            _ => BlockPool::new(block_len),
        };
        let result = self.scrub_inner(&meta, &code, block_len, &mut pool, opts);
        {
            let mut slot = self.system.inner.pool.lock();
            match slot.as_mut() {
                Some(existing) if existing.block_len() == block_len => existing.absorb(pool),
                _ => *slot = Some(pool),
            }
        }
        result
    }

    fn scrub_inner(
        &self,
        meta: &FileMeta,
        code: &LtCode,
        block_len: usize,
        pool: &mut BlockPool,
        opts: &ScrubOptions<'_>,
    ) -> Result<ScrubReport, StoreError> {
        let spec = &meta.coding;
        let priority = if opts.background {
            Priority::Background
        } else {
            Priority::Foreground
        };
        let charge = |bytes: usize| {
            if let Some(bucket) = opts.throttle {
                bucket.acquire(bytes as u64);
            }
        };
        let max_attempts = self.system.inner.config.read_retry.attempts.max(1);
        let mut decoder = LtDecoder::new(code, block_len);
        let mut verified: BTreeSet<u32> = BTreeSet::new();
        // Readable blocks not covered by the checksum map: id → CRC of the
        // bytes actually read, audited against a re-encode after decode.
        let mut legacy: BTreeMap<u32, u32> = BTreeMap::new();
        let mut corrupt: BTreeSet<u32> = BTreeSet::new();
        // Disk each corrupt block currently occupies (stale-copy cleanup).
        let mut corrupt_home: BTreeMap<u32, usize> = BTreeMap::new();
        let mut missing = 0usize;
        let mut complete = false;
        let backend = &self.system.inner.backend;
        {
            // Shared acceptance ladder for one fetched (or failed) block —
            // used verbatim by both fetch modes below, so their accounting
            // is identical. Returns the buffer when it should be recycled
            // (the decoder keeps accepted blocks until it completes).
            let mut ingest =
                |disk: usize, id: u32, read_ok: bool, buf: Vec<u8>| -> Option<Vec<u8>> {
                    let mut accepted = false;
                    if read_ok {
                        if buf.len() == block_len {
                            match meta.checksums.get(&id) {
                                Some(&want) => {
                                    if crc32c(&buf) == want {
                                        verified.insert(id);
                                        accepted = true;
                                    }
                                }
                                None => {
                                    legacy.insert(id, crc32c(&buf));
                                    accepted = true;
                                }
                            }
                        }
                        if !accepted {
                            corrupt.insert(id);
                            corrupt_home.insert(id, disk);
                        }
                    } else {
                        missing += 1;
                    }
                    if accepted && !complete {
                        complete = decoder.receive(id as usize, buf);
                        None
                    } else {
                        Some(buf)
                    }
                };
            let recycle = |pool: &mut BlockPool, mut buf: Vec<u8>| {
                buf.clear();
                buf.resize(block_len, 0);
                pool.put(buf);
            };
            if let Some(ring) = self.system.inner.ring.as_ref() {
                // Ring fetch: a scrub visits *every* stored block (no
                // cancellation), but the requests stream through the
                // per-disk queues with a bounded window so all the file's
                // disks service it in parallel. Completions are consumed
                // strictly in job order, and the worker runs the same
                // bounded transient retry (and counts the read), so the
                // accounting matches the sequential loop below.
                let jobs: Vec<(usize, u32)> = meta
                    .layout
                    .iter()
                    .flat_map(|(d, ids)| ids.iter().map(move |&id| (*d, id)))
                    .collect();
                let window = (4 * meta.layout.len()).max(16);
                let access = self.system.next_access_id();
                let (tx, rx) = std::sync::mpsc::channel();
                let mut submitted = 0usize;
                let mut next = 0usize;
                let mut parked: BTreeMap<u64, CompletionKind> = BTreeMap::new();
                while next < jobs.len() {
                    while submitted < jobs.len() && submitted - next < window {
                        let (disk, id) = jobs[submitted];
                        // The throttle paces *submission*: tokens are
                        // charged before an op may enter the queue, so
                        // repair I/O never bursts past the budget no
                        // matter how deep the window is.
                        charge(block_len);
                        ring.submit_with(
                            disk,
                            access,
                            submitted as u64,
                            SubmitOp::Read {
                                key: meta.block_key(id),
                                buf: pool.get_scratch(),
                            },
                            priority,
                            &tx,
                        );
                        submitted += 1;
                    }
                    let c = rx.recv().expect("ring workers outlive the access");
                    parked.insert(c.tag, c.kind);
                    while let Some(kind) = parked.remove(&(next as u64)) {
                        let (disk, id) = jobs[next];
                        next += 1;
                        let CompletionKind::Read { result, buf, .. } = kind else {
                            unreachable!("scrub submits only reads");
                        };
                        if let Some(buf) = ingest(disk, id, result.is_ok(), buf) {
                            recycle(pool, buf);
                        }
                    }
                }
            } else {
                for (disk, ids) in &meta.layout {
                    for &id in ids {
                        let mut buf = pool.get_scratch();
                        charge(block_len);
                        // Shared retry helper, no backoff sleep: scrub is
                        // a background sweep and the simulated backends
                        // recover instantly.
                        let (result, _) = backend.read_block_retry(
                            *disk,
                            meta.block_key(id),
                            &mut buf,
                            max_attempts,
                            |_| {},
                        );
                        if let Some(buf) = ingest(*disk, id, result.is_ok(), buf) {
                            recycle(pool, buf);
                        }
                    }
                }
            }
        }
        // Same completion ladder as the read path: peel, then the GE
        // fallback; only genuine rank deficiency fails the scrub.
        let complete = decoder.is_complete() || decoder.solve();
        pool.put_all(decoder.drain_spares());
        if !complete {
            pool.put_all(decoder.drain_all());
            return Err(StoreError::Coding(
                robustore_erasure::CodingError::DecodeFailed,
            ));
        }
        let blocks = decoder.into_data().expect("complete decoder yields data");
        // Audit the optimistically-accepted legacy blocks now that the
        // decoded data is in hand: their bytes must equal the re-encode.
        for (&id, &crc_read) in &legacy {
            if crc32c(&code.encode_block(&blocks, id as usize)) != crc_read {
                pool.put_all(blocks);
                return Err(StoreError::Coding(
                    robustore_erasure::CodingError::DecodeFailed,
                ));
            }
        }

        // Everything the code can generate, minus what is demonstrably
        // good on disk, gets re-placed — restoring the file to its full
        // target of N coded blocks (this also heals blocks a write-time
        // refusal dropped entirely).
        let present: BTreeSet<u32> = verified.iter().chain(legacy.keys()).copied().collect();
        let absent: Vec<u32> = (0..spec.n as u32)
            .filter(|id| !present.contains(id))
            .collect();
        let mut new_layout = meta.layout.clone();
        for (_, ids) in new_layout.iter_mut() {
            ids.retain(|id| present.contains(id));
        }
        let mut new_checksums: BTreeMap<u32, u32> = BTreeMap::new();
        for &id in &verified {
            new_checksums.insert(id, meta.checksums[&id]);
        }
        for (&id, &crc) in &legacy {
            new_checksums.insert(id, crc);
        }

        let mut restored = 0usize;
        let mut final_disk: BTreeMap<u32, usize> = BTreeMap::new();
        // Writes to a *new* location for an id — rolled back if the
        // metadata commit fails. In-place overwrites of corrupt copies
        // need no rollback: they restore exactly the committed bytes.
        let mut relocated: Vec<(usize, u64)> = Vec::new();
        let report = {
            let num_disks = backend.num_disks();
            let mut count: Vec<usize> = vec![0; num_disks];
            for (disk, ids) in &new_layout {
                count[*disk] += ids.len();
            }
            let mut slot_of_disk: BTreeMap<usize, usize> = new_layout
                .iter()
                .enumerate()
                .map(|(slot, (d, _))| (*d, slot))
                .collect();
            // Background repair writes go through the ring one at a time
            // at background priority — a foreground burst can always
            // overtake. A refusal hands the payload back for the next
            // candidate disk; a hard fault consumes it and the block is
            // left for the next repair cycle.
            let ring_bg = if opts.background {
                self.system.inner.ring.as_ref()
            } else {
                None
            };
            let place_access = ring_bg.map(|_| self.system.next_access_id());
            let place = |disk: usize, key: u64, data: Vec<u8>| -> Result<(), Option<Vec<u8>>> {
                match ring_bg {
                    Some(ring) => {
                        let (wtx, wrx) = std::sync::mpsc::channel();
                        ring.submit_with(
                            disk,
                            place_access.unwrap_or(0),
                            0,
                            SubmitOp::Write { key, data },
                            Priority::Background,
                            &wtx,
                        );
                        match wrx.recv().expect("ring workers outlive the access").kind {
                            CompletionKind::Write(WriteOutcome::Done) => Ok(()),
                            CompletionKind::Write(WriteOutcome::Refused { data, .. }) => {
                                Err(Some(data))
                            }
                            CompletionKind::Write(_) => Err(None),
                            other => unreachable!("write submission got {other:?}"),
                        }
                    }
                    None => backend
                        .write_block(disk, key, data)
                        .map_err(|rw| Some(rw.data)),
                }
            };
            for &id in &absent {
                let key = gen_key(meta.file_id, id, meta.odd_keys.contains(&id));
                let mut data = code.encode_block(&blocks, id as usize);
                let crc = crc32c(&data);
                charge(block_len);
                // Candidate disks: live queue pressure first when the
                // repair service asks for load-aware placement (quiescent
                // disks tie at zero and the order degenerates to the
                // default), then per-file balance, then lowest id.
                // Refusals just move to the next candidate — best effort.
                let mut order: Vec<usize> = (0..num_disks).collect();
                match opts
                    .load_aware
                    .then(|| self.system.inner.ring.as_ref())
                    .flatten()
                {
                    Some(ring) => {
                        let lm = ring.load_map();
                        order.sort_by_key(|&d| {
                            let backlog = lm.get(d).map_or(0, |l| l.queued + l.in_flight);
                            (backlog, count[d], d)
                        });
                    }
                    None => order.sort_by_key(|&d| (count[d], d)),
                }
                let mut placed_on = None;
                for &disk in &order {
                    match place(disk, key, data) {
                        Ok(()) => {
                            placed_on = Some(disk);
                            break;
                        }
                        Err(Some(back)) => data = back,
                        Err(None) => break, // hard fault consumed the payload
                    }
                }
                let Some(disk) = placed_on else { continue };
                count[disk] += 1;
                let slot = *slot_of_disk.entry(disk).or_insert_with(|| {
                    new_layout.push((disk, Vec::new()));
                    new_layout.len() - 1
                });
                new_layout[slot].1.push(id);
                new_checksums.insert(id, crc);
                final_disk.insert(id, disk);
                if corrupt_home.get(&id) != Some(&disk) {
                    relocated.push((disk, key));
                }
                restored += 1;
            }
            let blocks_stored_after: usize = new_layout.iter().map(|(_, ids)| ids.len()).sum();
            let checksums_added = new_checksums.len().saturating_sub(meta.checksums.len());
            let mut new_meta = meta.clone();
            new_meta.version += 1;
            new_meta.layout = new_layout;
            new_meta.checksums = new_checksums;
            if let Err(e) = self.system.inner.meta.lock().commit(new_meta) {
                delete_written(backend, &relocated);
                pool.put_all(blocks);
                return Err(e);
            }
            // Stale corrupt copies that were re-placed elsewhere (or not
            // restorable at all, and so dropped from the layout) are
            // garbage now.
            for (&id, &home) in &corrupt_home {
                if final_disk.get(&id) != Some(&home) {
                    let _ = backend.delete_block(home, meta.block_key(id));
                }
            }
            ScrubReport {
                file: meta.name.clone(),
                blocks_target: spec.n,
                blocks_verified: verified.len(),
                blocks_unverified: legacy.len(),
                blocks_corrupt: corrupt.len(),
                blocks_missing: missing,
                blocks_restored: restored,
                blocks_stored_after,
                checksums_added,
            }
        };
        pool.put_all(blocks);
        Ok(report)
    }

    /// `close(fdescriptor)` — release locks; metadata was committed by
    /// write/update.
    pub fn close(&self, mut handle: FileHandle) -> Result<(), StoreError> {
        if handle.closed {
            return Err(StoreError::StaleHandle);
        }
        handle.closed = true;
        self.system
            .inner
            .meta
            .lock()
            .close(&handle.name, handle.mode);
        Ok(())
    }
}

/// The virtual-arrival service order of a file's stored blocks: per-disk
/// streams are merged by arrival time, block `idx` on a disk of speed `s`
/// arriving at `(idx+1)·block_bytes/s` (BinaryHeap is a max-heap, so the
/// merge orders by `Reverse` of time). This is the exact order the
/// blocking read loop fetches in *and* the order the ring read reactor
/// submits in — precomputable because the blocking loop always schedules
/// a slot's successor regardless of the fetch outcome, so the two paths
/// consume blocks in the same deterministic sequence.
fn arrival_order(meta: &FileMeta, backend: &ShardedBackend) -> Vec<(usize, usize)> {
    AdaptiveReadPolicy::static_schedule(&wave_slots(meta, backend, &[])).order
}

/// Describe a file's layout to the wave scheduler: one [`WaveSlot`] per
/// layout entry, with the nominal per-block service time from the disk's
/// catalogued speed. `avail` maps disk id → availability (empty when the
/// caller doesn't need the mixing rule, e.g. for the static order).
fn wave_slots(meta: &FileMeta, backend: &ShardedBackend, avail: &[f64]) -> Vec<WaveSlot> {
    meta.layout
        .iter()
        .map(|(d, ids)| WaveSlot {
            disk: *d,
            blocks: ids.len(),
            nominal_micros: meta.coding.block_bytes as f64 / backend.disk_speed(*d) * 1e6,
            availability: avail.get(*d).copied().unwrap_or(1.0),
        })
        .collect()
}

/// Windowed write submitter over the [`IoRing`] — the write-path analogue
/// of the blocking group-commit loop. Writes are submitted in job order
/// with a bounded number in flight; completions are consumed strictly in
/// tag (= job) order via a reorder buffer, so the caller's bookkeeping
/// closure observes the exact sequence the blocking path would produce.
/// The window is kept deliberately small: a lone writer stays close to
/// the blocking path's cadence (cross-access fan-out is the read
/// reactor's job), while overlapping writers still coalesce into the
/// workers' cross-access batches.
struct RingWriter<'a> {
    ring: &'a IoRing,
    access: u64,
    tx: std::sync::mpsc::Sender<Completion>,
    rx: std::sync::mpsc::Receiver<Completion>,
    window: u64,
    /// Tags 0..submitted have been pushed to the ring.
    submitted: u64,
    /// Tags 0..next have been processed (in order) by the handler.
    next: u64,
    /// Completions received so far (processed or parked).
    received: u64,
    /// Out-of-order completions parked until `next` reaches their tag.
    parked: BTreeMap<u64, CompletionKind>,
    /// `(disk, key)` per tag — rollback bookkeeping for writes that land
    /// after the access has already failed.
    targets: Vec<(usize, u64)>,
}

impl<'a> RingWriter<'a> {
    fn new(ring: &'a IoRing, access: u64, window: usize) -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        RingWriter {
            ring,
            access,
            tx,
            rx,
            window: window.max(1) as u64,
            submitted: 0,
            next: 0,
            received: 0,
            parked: BTreeMap::new(),
            targets: Vec::new(),
        }
    }

    /// Submit one write, first processing completions until the in-flight
    /// count drops below the window. `handle` sees `(tag, outcome)` in
    /// strict tag order.
    fn submit(
        &mut self,
        disk: usize,
        key: u64,
        data: Block,
        handle: &mut impl FnMut(u64, WriteOutcome) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        while self.submitted - self.next >= self.window {
            self.pump(handle)?;
        }
        let tag = self.submitted;
        self.targets.push((disk, key));
        self.ring.submit(
            disk,
            self.access,
            tag,
            SubmitOp::Write { key, data },
            &self.tx,
        );
        self.submitted += 1;
        Ok(())
    }

    /// Receive one completion, then hand every in-order completion to
    /// `handle`.
    fn pump(
        &mut self,
        handle: &mut impl FnMut(u64, WriteOutcome) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let c = self.rx.recv().expect("ring workers outlive the access");
        self.received += 1;
        self.parked.insert(c.tag, c.kind);
        while let Some(kind) = self.parked.remove(&self.next) {
            let tag = self.next;
            self.next += 1;
            let outcome = match kind {
                CompletionKind::Write(outcome) => outcome,
                other => unreachable!("write access got {other:?}"),
            };
            handle(tag, outcome)?;
        }
        Ok(())
    }

    /// Process every outstanding completion in order.
    fn finish(
        &mut self,
        handle: &mut impl FnMut(u64, WriteOutcome) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        while self.next < self.submitted {
            self.pump(handle)?;
        }
        Ok(())
    }

    /// The access failed: cancel everything still queued, drain every
    /// outstanding completion, and record any write that nevertheless
    /// landed into `written` so the caller's rollback deletes it.
    fn drain_aborted(mut self, written: &mut Vec<(usize, u64)>) {
        self.ring.cancel(self.access);
        while self.received < self.submitted {
            let c = self.rx.recv().expect("ring workers outlive the access");
            self.received += 1;
            self.parked.insert(c.tag, c.kind);
        }
        for (tag, kind) in std::mem::take(&mut self.parked) {
            if matches!(kind, CompletionKind::Write(WriteOutcome::Done)) {
                written.push(self.targets[tag as usize]);
            }
        }
    }
}

/// Roll back a partially written generation: delete every block the
/// aborted access put down, so no orphans survive an error return. Delete
/// failures are ignored — the block either never landed or is gone.
fn delete_written(backend: &ShardedBackend, written: &[(usize, u64)]) {
    for &(disk, key) in written {
        let _ = backend.delete_block(disk, key);
    }
}

/// Flush one group-commit batch to `disk`, folding each entry's outcome
/// into the write-path bookkeeping exactly as an unbatched write loop
/// would: success keeps the id in its layout slot and records the key for
/// rollback, a refusal sets the block (with its bytes) aside for
/// redirection, and a hard fault aborts the access — entries after it
/// were never attempted, because [`crate::backend::DiskShard::commit_batch`]
/// stops there, keeping fault budgets identical to unbatched writes.
fn flush_batch(
    backend: &ShardedBackend,
    disk: usize,
    batch: Vec<(usize, u32, u64, Block)>,
    kept: &mut [Vec<u32>],
    written: &mut Vec<(usize, u64)>,
    displaced: &mut Vec<(u32, Block)>,
) -> Result<(), StoreError> {
    let tags: Vec<(usize, u32, u64)> = batch
        .iter()
        .map(|&(slot, coded, key, _)| (slot, coded, key))
        .collect();
    let results = backend.commit_batch(
        disk,
        batch
            .into_iter()
            .map(|(_, _, key, data)| (key, data))
            .collect(),
    );
    for ((slot, coded, key), result) in tags.into_iter().zip(results) {
        match result {
            Ok(()) => {
                kept[slot].push(coded);
                written.push((disk, key));
            }
            Err(rw) => match rw.error {
                StoreError::MissingBlock { .. } => displaced.push((coded, rw.data)),
                e => return Err(e),
            },
        }
    }
    Ok(())
}

/// Encode the coded blocks named by `ids` on up to `threads` workers and
/// feed each encoded block to `consume` **in `ids` order**, overlapping
/// encode (CPU) with whatever `consume` does (disk I/O) — the bounded
/// producer/consumer pipeline of the write path.
///
/// Workers claim indices from a shared counter and may run at most
/// `depth` blocks ahead of the consumer (the reordering window doubles as
/// backpressure, so memory stays bounded at `depth` blocks). The consumer
/// runs on the calling thread and takes blocks strictly by index, so
/// `consume` observes the exact sequence a sequential encode-then-write
/// loop would produce — byte-identical at every `threads`/`depth`
/// combination. `depth == 0` is the barrier mode: encode everything via
/// [`encode_ids_parallel`], then consume.
///
/// An error from `consume` stops the pipeline: workers drain promptly
/// (in-flight buffers are dropped) and the error is returned.
fn encode_write_pipelined<F>(
    code: &LtCode,
    blocks: &[Vec<u8>],
    ids: &[u32],
    threads: usize,
    depth: usize,
    mut consume: F,
) -> Result<(), StoreError>
where
    F: FnMut(usize, u32, Block) -> Result<(), StoreError>,
{
    if depth == 0 || ids.len() <= 1 {
        let encoded = encode_ids_parallel(code, blocks, ids, threads);
        for (i, (&coded, data)) in ids.iter().zip(encoded).enumerate() {
            consume(i, coded, data)?;
        }
        return Ok(());
    }
    let threads = threads.clamp(1, ids.len());
    let block_len = blocks.first().map_or(0, |b| b.len());

    use std::sync::{Condvar, Mutex as StdMutex};
    struct Shared {
        /// Encoded blocks parked until the consumer reaches their index.
        slots: Vec<Option<Block>>,
        /// Next index the consumer will take; workers stay < cursor+depth.
        cursor: usize,
        /// Abort flag (consumer error): workers drain without depositing.
        stop: bool,
    }
    let shared = StdMutex::new(Shared {
        slots: vec![None; ids.len()],
        cursor: 0,
        stop: false,
    });
    let ready = Condvar::new(); // worker → consumer: a slot was filled
    let space = Condvar::new(); // consumer → workers: the window advanced
    let next = AtomicUsize::new(0);

    let mut result: Result<(), StoreError> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut pool = BlockPool::new(block_len);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ids.len() {
                        break;
                    }
                    {
                        let mut s = shared.lock().unwrap();
                        while !s.stop && i >= s.cursor + depth {
                            s = space.wait(s).unwrap();
                        }
                        if s.stop {
                            break;
                        }
                    }
                    let mut buf = pool.get_scratch();
                    code.encode_block_into(blocks, ids[i] as usize, &mut buf);
                    pool.mark_consumed(1); // ownership moves to the consumer
                    let mut s = shared.lock().unwrap();
                    if s.stop {
                        break;
                    }
                    s.slots[i] = Some(buf);
                    ready.notify_all();
                }
            });
        }
        let mut s = shared.lock().unwrap();
        for (i, &coded) in ids.iter().enumerate() {
            let data = loop {
                if let Some(d) = s.slots[i].take() {
                    break d;
                }
                s = ready.wait(s).unwrap();
            };
            // Open the window before the (slow) consume call, so workers
            // encode the next blocks while this one is being written.
            s.cursor = i + 1;
            space.notify_all();
            drop(s);
            if let Err(e) = consume(i, coded, data) {
                result = Err(e);
                shared.lock().unwrap().stop = true;
                space.notify_all();
                break;
            }
            s = shared.lock().unwrap();
        }
        // Scope exit joins the workers; with `stop` set they bail out.
    });
    result
}

/// Encode the coded blocks named by `ids` across up to `threads` worker
/// threads, returning the encoded blocks *in `ids` order* — the output is
/// byte-identical to a sequential `encode_block` loop at any thread
/// count, because each coded block depends only on the read-only segment
/// data and the output slot order is fixed up front.
///
/// Each worker owns a per-worker [`BlockPool`] for its output buffers, so
/// the zero-copy discipline holds across threads without sharing: a
/// worker's buffers are drawn from its own free list (warm when the pool
/// carries over), encoded into in place, and then moved out — ownership
/// transfers to the caller (and ultimately the backend) with no copies.
fn encode_ids_parallel(
    code: &LtCode,
    blocks: &[Vec<u8>],
    ids: &[u32],
    threads: usize,
) -> Vec<Block> {
    let block_len = blocks.first().map_or(0, |b| b.len());
    let threads = threads.clamp(1, ids.len().max(1));
    if threads == 1 {
        return ids
            .iter()
            .map(|&j| code.encode_block(blocks, j as usize))
            .collect();
    }
    let chunk = ids.len().div_ceil(threads);
    let mut out: Vec<Block> = vec![Vec::new(); ids.len()];
    std::thread::scope(|scope| {
        for (slots, id_chunk) in out.chunks_mut(chunk).zip(ids.chunks(chunk)) {
            scope.spawn(move || {
                let mut pool = BlockPool::new(block_len);
                for (slot, &j) in slots.iter_mut().zip(id_chunk) {
                    let mut buf = pool.get_scratch();
                    code.encode_block_into(blocks, j as usize, &mut buf);
                    *slot = buf;
                }
            });
        }
    });
    out
}

/// Split `data` into exactly `k` blocks of `block_bytes`, zero-padding the
/// tail.
fn split_blocks(data: &[u8], block_bytes: usize, k: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let start = i * block_bytes;
        let end = ((i + 1) * block_bytes).min(data.len());
        let mut b = if start < data.len() {
            data[start..end].to_vec()
        } else {
            Vec::new()
        };
        b.resize(block_bytes, 0);
        out.push(b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_system() -> System {
        // 8 disks with a 5x speed spread; 4 KB blocks keep tests quick.
        let speeds: Vec<f64> = (0..8).map(|i| 10e6 + i as f64 * 6e6).collect();
        System::new(
            InMemoryBackend::new(speeds),
            SystemConfig {
                block_bytes: 4 << 10,
                ..Default::default()
            },
        )
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 251) as u8).collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let sys = test_system();
        let alice = sys.register_user();
        let client = Client::connect(&sys, alice);
        let data = payload(100_000);

        let mut h = client
            .open("genome.dat", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        let report = client.write(&mut h, &data).unwrap();
        assert!(report.blocks_written > report.disks);
        client.close(h).unwrap();

        let h = client
            .open("genome.dat", AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        let (got, rr) = client.read_with_report(&h).unwrap();
        assert_eq!(got, data);
        assert!(rr.blocks_cancelled > 0, "speculative read must cancel some");
        client.close(h).unwrap();
    }

    #[test]
    fn repeated_reads_recycle_buffers() {
        // The shared BlockPool's allocation counter proves the whole
        // fetch→decode path is allocation-free once warm: read 1 fills
        // the pool, read 2 onward reuse its buffers exclusively.
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let data = payload(120_000);
        let mut h = client
            .open("pooled", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client.write(&mut h, &data).unwrap();
        client.close(h).unwrap();

        assert_eq!(sys.pool_stats(), (0, 0), "no reads yet");
        let h = client
            .open("pooled", AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        assert_eq!(client.read(&h).unwrap(), data);
        let (fresh_after_first, _) = sys.pool_stats();
        assert!(fresh_after_first > 0);
        for _ in 0..3 {
            assert_eq!(client.read(&h).unwrap(), data);
        }
        let (fresh, reuses) = sys.pool_stats();
        assert_eq!(
            fresh, fresh_after_first,
            "warm reads must not allocate (hidden copy otherwise)"
        );
        assert!(
            reuses >= 3 * fresh_after_first,
            "warm reads run on the pool"
        );
        client.close(h).unwrap();
    }

    #[test]
    fn parallel_encode_is_deterministic_across_thread_counts() {
        // Same data, same seed, different encode_threads: the committed
        // layouts and the decoded bytes must be identical — parallelism
        // can only change wall-clock, never content.
        let data = payload(300_000);
        let speeds: Vec<f64> = (0..8).map(|i| 10e6 + i as f64 * 6e6).collect();
        let mut metas = Vec::new();
        for threads in [1usize, 3, 7] {
            let sys = System::new(
                InMemoryBackend::new(speeds.clone()),
                SystemConfig {
                    block_bytes: 4 << 10,
                    encode_threads: threads,
                    ..Default::default()
                },
            );
            let u = sys.register_user();
            let client = Client::connect(&sys, u);
            let mut h = client
                .open(
                    "f",
                    AccessMode::Write,
                    QosOptions::best_effort().with_redundancy(2.0),
                )
                .unwrap();
            client.write(&mut h, &data).unwrap();
            // Exercise the parallel update path too.
            client.update(&mut h, 9_000, &vec![0xC3u8; 2_000]).unwrap();
            let meta = h.meta().unwrap().clone();
            client.close(h).unwrap();

            let h = client
                .open("f", AccessMode::Read, QosOptions::best_effort())
                .unwrap();
            let got = client.read(&h).unwrap();
            client.close(h).unwrap();
            let mut expect = data.clone();
            expect[9_000..11_000].copy_from_slice(&vec![0xC3u8; 2_000]);
            assert_eq!(got, expect, "threads={threads}");
            metas.push((threads, meta));
        }
        let (_, base) = &metas[0];
        for (threads, meta) in &metas[1..] {
            assert_eq!(
                meta.layout, base.layout,
                "threads={threads}: layout must not depend on thread count"
            );
        }
    }

    #[test]
    fn parallel_reads_return_every_buffer() {
        // Concurrent readers each borrow (or create) a pool; merging on
        // return keeps accounting exact: when the dust settles, zero
        // bytes are still checked out and fresh+reused covers every get.
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let data = payload(150_000);
        let mut h = client
            .open("shared", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client.write(&mut h, &data).unwrap();
        client.close(h).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sys = sys.clone();
                let data = &data;
                scope.spawn(move || {
                    let c = Client::connect(&sys, u);
                    for _ in 0..3 {
                        let h = c
                            .open("shared", AccessMode::Read, QosOptions::best_effort())
                            .unwrap();
                        assert_eq!(&c.read(&h).unwrap(), data);
                        c.close(h).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            sys.pool_outstanding_bytes(),
            0,
            "a completed parallel read leaked pool buffers"
        );
        let (fresh, reuses) = sys.pool_stats();
        assert!(fresh > 0, "reads allocated through the pool");
        assert!(reuses > 0, "repeated reads recycled buffers");
    }

    #[test]
    fn speculative_read_fetches_fraction_of_stored() {
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let data = payload(400_000); // ~98 blocks at 4 KB

        let mut h = client
            .open(
                "f",
                AccessMode::Write,
                QosOptions::best_effort().with_redundancy(3.0),
            )
            .unwrap();
        let wr = client.write(&mut h, &data).unwrap();
        client.close(h).unwrap();

        let h = client
            .open("f", AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        let (_, rr) = client.read_with_report(&h).unwrap();
        client.close(h).unwrap();
        // With 3x redundancy, roughly (1+ε)K of 4K blocks are fetched.
        assert!(
            rr.blocks_fetched < wr.blocks_written * 2 / 3,
            "fetched {} of {}",
            rr.blocks_fetched,
            wr.blocks_written
        );
        assert!(rr.reception_overhead < 1.2);
    }

    #[test]
    fn degraded_read_survives_seeded_block_loss() {
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let data = payload(200_000);

        let mut h = client
            .open(
                "f",
                AccessMode::Write,
                QosOptions::best_effort().with_redundancy(3.0),
            )
            .unwrap();
        client.write(&mut h, &data).unwrap();
        client.close(h).unwrap();

        // Deterministically lose a third of every disk's blocks: the
        // same seed loses the same blocks, and 3x redundancy absorbs it.
        let seq = SeedSequence::new(21);
        let mut lost = 0;
        for disk in 0..8 {
            lost += sys.lose_blocks(disk, 0.33, &seq).len();
        }
        assert!(lost > 0, "p=0.33 must lose something");

        let h = client
            .open("f", AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        assert_eq!(client.read(&h).unwrap(), data);
        client.close(h).unwrap();
    }

    #[test]
    fn update_rewrites_small_fraction() {
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let data = payload(256 << 10); // 64 originals

        let mut h = client
            .open(
                "f",
                AccessMode::Write,
                QosOptions::best_effort().with_redundancy(3.0),
            )
            .unwrap();
        client.write(&mut h, &data).unwrap();
        // Patch 100 bytes inside one original block.
        let patch = vec![0xAB; 100];
        let rep = client.update(&mut h, 5000, &patch).unwrap();
        assert_eq!(rep.originals_changed, 1);
        assert!(
            rep.fraction_rewritten < 0.25,
            "one-block update rewrote {:.1}% of coded blocks",
            rep.fraction_rewritten * 100.0
        );
        client.close(h).unwrap();

        let h = client
            .open("f", AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        let got = client.read(&h).unwrap();
        client.close(h).unwrap();
        let mut expect = data;
        expect[5000..5100].copy_from_slice(&patch);
        assert_eq!(got, expect);
    }

    #[test]
    fn locks_exclude_concurrent_writers() {
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let mut h = client
            .open("f", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client.write(&mut h, &payload(10_000)).unwrap();
        assert!(matches!(
            client.open("f", AccessMode::Write, QosOptions::best_effort()),
            Err(StoreError::LockConflict(_))
        ));
        client.close(h).unwrap();
        let h = client
            .open("f", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client.close(h).unwrap();
    }

    #[test]
    fn non_owner_needs_credentials() {
        let sys = test_system();
        let alice = sys.register_user();
        let bob = sys.register_user();
        let a = Client::connect(&sys, alice);
        let b = Client::connect(&sys, bob);

        let mut h = a
            .open("private", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        a.write(&mut h, &payload(20_000)).unwrap();
        a.close(h).unwrap();

        // Bob without credentials: denied.
        assert!(matches!(
            b.open("private", AccessMode::Read, QosOptions::best_effort()),
            Err(StoreError::AccessDenied(_))
        ));

        // Alice delegates read to Bob.
        let cred = sys
            .issue_credential(alice, bob, Rights::R, "private", 1_000)
            .unwrap();
        let chain = CredentialChain(vec![cred]);
        let h = b
            .open_with_chain(
                "private",
                AccessMode::Read,
                QosOptions::best_effort(),
                &chain,
            )
            .unwrap();
        assert_eq!(b.read(&h).unwrap(), payload(20_000));
        b.close(h).unwrap();

        // Read credential does not grant write.
        assert!(matches!(
            b.open_with_chain(
                "private",
                AccessMode::Write,
                QosOptions::best_effort(),
                &chain
            ),
            Err(StoreError::AccessDenied(_))
        ));

        // Expired credential is rejected.
        sys.advance_clock(2_000);
        assert!(matches!(
            b.open_with_chain(
                "private",
                AccessMode::Read,
                QosOptions::best_effort(),
                &chain
            ),
            Err(StoreError::AccessDenied(_))
        ));
    }

    #[test]
    fn admission_denial_when_servers_full() {
        let speeds = vec![20e6; 2];
        let sys = System::new(
            InMemoryBackend::new(speeds),
            SystemConfig {
                block_bytes: 4 << 10,
                admission_capacity: 1,
                ..Default::default()
            },
        );
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        // Outside tenants hold the only slot on both servers.
        assert!(sys.occupy_admission(0, 999));
        assert!(sys.occupy_admission(1, 999));
        let mut h = client
            .open("f", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        assert!(matches!(
            client.write(&mut h, &payload(10_000)),
            Err(StoreError::AdmissionDenied { .. })
        ));
        // Tenants leave; the write proceeds.
        sys.release_admission(0, 999);
        sys.release_admission(1, 999);
        client.write(&mut h, &payload(10_000)).unwrap();
        client.close(h).unwrap();
    }

    #[test]
    fn rewrite_replaces_old_generation() {
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let v1 = payload(50_000);
        let v2: Vec<u8> = payload(80_000).iter().map(|b| b ^ 0xFF).collect();

        let mut h = client
            .open("f", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client.write(&mut h, &v1).unwrap();
        client.write(&mut h, &v2).unwrap();
        let meta = h.meta().unwrap().clone();
        client.close(h).unwrap();

        // The old generation was garbage-collected after the commit: the
        // backend holds exactly the committed blocks, nothing more.
        let committed_bytes = meta.stored_blocks() as u64 * meta.coding.block_bytes;
        assert_eq!(
            sys.total_used(),
            committed_bytes,
            "overwrite left orphaned blocks behind"
        );

        let h = client
            .open("f", AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        assert_eq!(client.read(&h).unwrap(), v2);
        client.close(h).unwrap();
    }

    #[test]
    fn pipelined_writes_are_byte_identical_to_barriered() {
        // The pipeline is a wall-clock optimisation only: at every
        // (encode_threads, pipeline_depth) combination — including the
        // depth=0 barrier mode — the committed layout, generation
        // parities, per-disk byte counts, and decoded contents must match
        // the sequential baseline exactly, across write, overwrite, and
        // update.
        let data = payload(300_000);
        let v2: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
        let speeds: Vec<f64> = (0..8).map(|i| 10e6 + i as f64 * 6e6).collect();
        let mut outcomes = Vec::new();
        for (threads, depth) in [(1, 0), (1, 2), (2, 1), (4, 8), (16, 4), (16, 64)] {
            let sys = System::new(
                InMemoryBackend::new(speeds.clone()),
                SystemConfig {
                    block_bytes: 4 << 10,
                    encode_threads: threads,
                    pipeline_depth: depth,
                    ..Default::default()
                },
            );
            let u = sys.register_user();
            let client = Client::connect(&sys, u);
            let mut h = client
                .open(
                    "f",
                    AccessMode::Write,
                    QosOptions::best_effort().with_redundancy(2.0),
                )
                .unwrap();
            client.write(&mut h, &data).unwrap();
            client.write(&mut h, &v2).unwrap();
            client.update(&mut h, 7_000, &vec![0x11u8; 3_000]).unwrap();
            let meta = h.meta().unwrap().clone();
            client.close(h).unwrap();

            let h = client
                .open("f", AccessMode::Read, QosOptions::best_effort())
                .unwrap();
            let got = client.read(&h).unwrap();
            client.close(h).unwrap();
            let used: Vec<u64> = (0..8).map(|d| sys.disk_used(d)).collect();
            outcomes.push((threads, depth, meta, got, used));
        }
        let mut expect = v2.clone();
        expect[7_000..10_000].copy_from_slice(&vec![0x11u8; 3_000]);
        let (_, _, base_meta, base_got, base_used) = &outcomes[0];
        assert_eq!(base_got, &expect);
        for (threads, depth, meta, got, used) in &outcomes[1..] {
            let tag = format!("threads={threads} depth={depth}");
            assert_eq!(meta.layout, base_meta.layout, "{tag}: layout diverged");
            assert_eq!(
                meta.odd_keys, base_meta.odd_keys,
                "{tag}: generation parity diverged"
            );
            assert_eq!(got, base_got, "{tag}: decoded bytes diverged");
            assert_eq!(used, base_used, "{tag}: on-disk bytes diverged");
        }
    }

    #[test]
    fn pipeline_stops_and_rolls_back_on_write_error() {
        // A hard mid-write fault aborts the access; the pipeline must
        // drain its workers, delete the partial new generation, and leave
        // the pool/backed accounting clean (no leaked or orphaned blocks).
        use crate::chaos::ChaosBackend;
        let speeds: Vec<f64> = (0..8).map(|i| 10e6 + i as f64 * 6e6).collect();
        let (backend, switch) = ChaosBackend::new(InMemoryBackend::new(speeds));
        let sys = System::with_backend(
            Box::new(backend),
            SystemConfig {
                block_bytes: 4 << 10,
                encode_threads: 4,
                pipeline_depth: 8,
                // Blocking path pinned: this test asserts the *exact*
                // injected-fault count, and with the ring a queued write
                // to the faulted disk may still be serviced (then rolled
                // back) after the abort, consuming extra fault budget.
                io_ring: false,
                ..Default::default()
            },
        );
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        switch.fail_disk_after(3, 5);
        let mut h = client
            .open("f", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        let err = client.write(&mut h, &payload(200_000)).unwrap_err();
        assert!(matches!(err, StoreError::DiskFault { disk: 3 }), "{err:?}");
        assert_eq!(switch.injected_hard_faults(), 1);
        assert_eq!(sys.total_used(), 0, "aborted write left orphans");
        assert!(h.meta().is_none(), "nothing was committed");
        // The system stays usable once the fault clears.
        switch.clear();
        client.write(&mut h, &payload(200_000)).unwrap();
        client.close(h).unwrap();
    }

    #[test]
    fn faster_disks_get_more_blocks() {
        let sys = test_system(); // speeds 10..52 MB/s
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        let mut h = client
            .open(
                "f",
                AccessMode::Write,
                QosOptions::best_effort().with_redundancy(3.0),
            )
            .unwrap();
        client.write(&mut h, &payload(200_000)).unwrap();
        let meta = h.meta().unwrap().clone();
        client.close(h).unwrap();
        let mut by_disk: Vec<(usize, usize)> =
            meta.layout.iter().map(|(d, ids)| (*d, ids.len())).collect();
        by_disk.sort();
        // Disk 7 (fastest) stores more than disk 0 (slowest).
        let slow = by_disk
            .iter()
            .find(|(d, _)| *d == 0)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let fast = by_disk
            .iter()
            .find(|(d, _)| *d == 7)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(fast > slow, "fast {fast} vs slow {slow}: {by_disk:?}");
    }

    #[test]
    fn read_of_missing_file_fails() {
        let sys = test_system();
        let u = sys.register_user();
        let client = Client::connect(&sys, u);
        assert!(matches!(
            client.open("ghost", AccessMode::Read, QosOptions::best_effort()),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn split_blocks_pads_tail() {
        let blocks = split_blocks(&[1, 2, 3, 4, 5], 2, 3);
        assert_eq!(blocks, vec![vec![1, 2], vec![3, 4], vec![5, 0]]);
    }
}
