//! Property tests for the cluster substrate.

use proptest::prelude::*;
use robustore_cluster::server::{line_address, lines_per_block};
use robustore_cluster::{
    BackgroundPolicy, Cluster, ClusterConfig, LayoutPolicy, SetAssociativeCache,
};
use robustore_simkit::SeedSequence;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A line accessed and not displaced by ≥ `ways` conflicting inserts
    /// is still resident; hit/miss counters account for every access.
    #[test]
    fn cache_accounting_is_exact(lines in proptest::collection::vec(0u64..5_000, 1..300)) {
        let mut c = SetAssociativeCache::new(1 << 22, 4 << 10, 4);
        let mut hits = 0u64;
        for &l in &lines {
            if c.access(l) {
                hits += 1;
            }
        }
        prop_assert_eq!(c.hits(), hits);
        prop_assert_eq!(c.misses(), lines.len() as u64 - hits);
    }

    /// Immediately re-accessing any line hits (it was just inserted).
    #[test]
    fn immediate_reaccess_hits(line in any::<u64>()) {
        let mut c = SetAssociativeCache::new(1 << 20, 4 << 10, 4);
        c.access(line);
        prop_assert!(c.access(line));
    }

    /// Line addresses are injective over (disk, tag, line-in-block) for
    /// realistic ranges.
    #[test]
    fn line_addresses_injective(
        a in (0usize..256, 0u64..1u64 << 20, 0u64..256),
        b in (0usize..256, 0u64..1u64 << 20, 0u64..256),
    ) {
        let la = line_address(a.0, a.1 << 8, a.2);
        let lb = line_address(b.0, b.1 << 8, b.2);
        if a != b {
            prop_assert_ne!(la, lb);
        } else {
            prop_assert_eq!(la, lb);
        }
    }

    /// lines_per_block rounds up and never loses bytes.
    #[test]
    fn lines_cover_block(block in 1u64..1u64 << 26, line in 1u64..1u64 << 16) {
        let n = lines_per_block(block, line);
        prop_assert!(n * line >= block);
        prop_assert!((n - 1) * line < block);
    }

    /// Cluster builds are valid for arbitrary sizes: every disk maps to a
    /// server, layouts validate, determinism holds.
    #[test]
    fn cluster_builds_consistently(
        num_disks in 1usize..64,
        per_server in 1usize..16,
        seed in any::<u64>(),
    ) {
        let cfg = ClusterConfig {
            num_disks,
            disks_per_server: per_server,
            ..ClusterConfig::default()
        };
        let seq = SeedSequence::new(seed);
        let c = Cluster::build(cfg.clone(), LayoutPolicy::Heterogeneous, BackgroundPolicy::None, &seq);
        prop_assert_eq!(c.num_disks(), num_disks);
        for d in 0..num_disks {
            prop_assert!(c.disk(d).layout().is_valid());
            let s = cfg.server_of_disk(d);
            prop_assert!(s < cfg.num_servers());
        }
        let c2 = Cluster::build(cfg, LayoutPolicy::Heterogeneous, BackgroundPolicy::None, &seq);
        for d in 0..num_disks {
            prop_assert_eq!(c.disk(d).layout(), c2.disk(d).layout());
        }
    }
}
