#![warn(missing_docs)]

//! Storage-server and cluster model for RobuSTore.
//!
//! The paper's virtual server (§6.2.2) is a *filer* fronting eight disks:
//! the filer charges a fixed network round-trip per request, maintains a
//! 2 GB LRU 4-way set-associative filesystem cache with 4 KB lines, and
//! forwards misses to its disks. The experiment system (Figure 6-4) is 16
//! such filers — 128 disks — reached over a network whose *bandwidth* is
//! presumed plentiful and whose *latency* is a fixed RTT between 1 and
//! 100 ms (§6.2.5).
//!
//! * [`cache`] — the set-associative LRU filesystem cache.
//! * [`config`] — cluster-level configuration (counts, RTT, cache, layout
//!   and background-workload policies).
//! * [`server`] — one filer: cache + the identity of its disks.
//! * [`cluster`] — the assembled cluster: servers, disks, and per-disk
//!   background loads, built deterministically from a seed.
//!
//! Like the disk model, everything here is passive: the scheme coordinator
//! in `robustore-schemes` owns the event loop and drives these objects.

pub mod cache;
pub mod cluster;
pub mod config;
pub mod server;

pub use cache::SetAssociativeCache;
pub use cluster::{BackgroundPolicy, Cluster, LayoutPolicy};
pub use config::ClusterConfig;
pub use server::StorageServer;
