//! Cluster configuration.
//!
//! Defaults follow the experiment system of Figure 6-4 / §6.2.5: 128 disks
//! behind 16 filers, 1 ms RTT, a 10 Gb/s client NIC, 2 GB filer caches
//! (disabled by default — the paper enables caching only for the
//! Figure 6-35/36 experiments), and a 5 ms metadata/connection overhead
//! per access.

use robustore_diskmodel::QueueDiscipline;
use robustore_simkit::SimDuration;

/// Static description of the simulated storage system.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total disks in the system (the paper's pool is 128; accesses select
    /// a subset).
    pub num_disks: usize,
    /// Disks attached to each filer (8 in Figure 6-4).
    pub disks_per_server: usize,
    /// Fixed network round-trip time between client and servers.
    pub rtt: SimDuration,
    /// Client NIC bandwidth, bytes/second (10 Gb/s in §5.2.2). Bandwidth
    /// inside the network core is presumed plentiful; the client link is
    /// the only serialisation point we model.
    pub client_bandwidth: f64,
    /// Filesystem cache per filer, bytes; `None` disables caching.
    pub cache_bytes: Option<u64>,
    /// Cache line size (4 KB).
    pub cache_line_bytes: u64,
    /// Cache associativity (4-way).
    pub cache_ways: usize,
    /// Metadata-server access / connection setup charge per access
    /// (§6.2.2: "modeled as a constant latency of five milliseconds").
    pub metadata_overhead: SimDuration,
    /// Disk queue discipline (FCFS in the paper's evaluation).
    pub discipline: QueueDiscipline,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_disks: 128,
            disks_per_server: 8,
            rtt: SimDuration::from_millis(1),
            client_bandwidth: 1.25e9, // 10 Gb/s
            cache_bytes: None,
            cache_line_bytes: 4 << 10,
            cache_ways: 4,
            metadata_overhead: SimDuration::from_millis(5),
            discipline: QueueDiscipline::Fcfs,
        }
    }
}

impl ClusterConfig {
    /// Number of filers (⌈disks / disks-per-server⌉).
    pub fn num_servers(&self) -> usize {
        self.num_disks.div_ceil(self.disks_per_server)
    }

    /// Which server fronts a disk.
    pub fn server_of_disk(&self, disk: usize) -> usize {
        assert!(disk < self.num_disks, "disk id out of range");
        disk / self.disks_per_server
    }

    /// Enable the paper's filer cache (2 GB unless overridden).
    pub fn with_cache(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Set the network RTT.
    pub fn with_rtt(mut self, rtt: SimDuration) -> Self {
        self.rtt = rtt;
        self
    }

    /// Sanity checks; called by the cluster builder.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_disks == 0 {
            return Err("num_disks must be positive".into());
        }
        if self.disks_per_server == 0 {
            return Err("disks_per_server must be positive".into());
        }
        if self.client_bandwidth <= 0.0 {
            return Err("client_bandwidth must be positive".into());
        }
        if let Some(bytes) = self.cache_bytes {
            if bytes < self.cache_line_bytes * self.cache_ways as u64 {
                return Err("cache capacity below one set".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline_pool() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_disks, 128);
        assert_eq!(c.num_servers(), 16);
        assert_eq!(c.rtt, SimDuration::from_millis(1));
        assert!(c.cache_bytes.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn server_mapping() {
        let c = ClusterConfig::default();
        assert_eq!(c.server_of_disk(0), 0);
        assert_eq!(c.server_of_disk(7), 0);
        assert_eq!(c.server_of_disk(8), 1);
        assert_eq!(c.server_of_disk(127), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_disk_panics() {
        ClusterConfig::default().server_of_disk(128);
    }

    #[test]
    fn builders() {
        let c = ClusterConfig::default()
            .with_cache(2 << 30)
            .with_rtt(SimDuration::from_millis(40));
        assert_eq!(c.cache_bytes, Some(2 << 30));
        assert_eq!(c.rtt, SimDuration::from_millis(40));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let c = ClusterConfig {
            num_disks: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            client_bandwidth: 0.0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig::default().with_cache(1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn uneven_server_division_rounds_up() {
        let c = ClusterConfig {
            num_disks: 10,
            disks_per_server: 8,
            ..ClusterConfig::default()
        };
        assert_eq!(c.num_servers(), 2);
        assert_eq!(c.server_of_disk(9), 1);
    }
}
