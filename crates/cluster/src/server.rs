//! One storage server (virtual filer).
//!
//! The filer's roles in the simulator (§6.2.2): charge the network
//! round-trip, consult the filesystem cache, and forward misses to its
//! disks. The cache is per-filer and shared by the filer's disks.

use crate::cache::SetAssociativeCache;

/// A filer: an optional filesystem cache plus an id. (Network timing and
/// disk queues live with the coordinator and the disks themselves.)
#[derive(Debug)]
pub struct StorageServer {
    id: usize,
    cache: Option<SetAssociativeCache>,
}

impl StorageServer {
    /// A server with the given cache (or none — the paper's default
    /// experiments run uncached).
    pub fn new(id: usize, cache: Option<SetAssociativeCache>) -> Self {
        StorageServer { id, cache }
    }

    /// Server id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether this server caches at all.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Read-side cache access for a whole block: returns `true` on a *full*
    /// hit (every line present — the block can be served from memory) and
    /// populates all the block's lines either way, modelling the fill that
    /// accompanies the disk read. Uncached servers always miss.
    pub fn cache_read_block(&mut self, first_line: u64, lines: u64) -> bool {
        match &mut self.cache {
            Some(c) => c.access_range(first_line, lines) == lines,
            None => false,
        }
    }

    /// Probe without touching LRU state: fraction of the block's lines
    /// present.
    pub fn cache_probe_block(&self, first_line: u64, lines: u64) -> f64 {
        match &self.cache {
            Some(c) => c.probe_range(first_line, lines) as f64 / lines as f64,
            None => 0.0,
        }
    }

    /// Cache statistics `(hits, misses)`; zeros when uncached.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache
            .as_ref()
            .map(|c| (c.hits(), c.misses()))
            .unwrap_or((0, 0))
    }

    /// Drop cache contents (between trials that must start cold).
    pub fn clear_cache(&mut self) {
        if let Some(c) = &mut self.cache {
            c.clear();
        }
    }
}

/// Encode a (disk, block tag, line-within-block) into a global cache line
/// address. Disk ids and tags are both far below 2²⁰/2³² in practice.
pub fn line_address(disk: usize, tag: u64, line_in_block: u64) -> u64 {
    ((disk as u64) << 44) | (tag << 12) | line_in_block
}

/// Lines per block for a given block size and line size.
pub fn lines_per_block(block_bytes: u64, line_bytes: u64) -> u64 {
    block_bytes.div_ceil(line_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncached_server_always_misses() {
        let mut s = StorageServer::new(0, None);
        assert!(!s.cache_read_block(0, 256));
        assert!(!s.cache_read_block(0, 256));
        assert_eq!(s.cache_stats(), (0, 0));
    }

    #[test]
    fn cached_server_hits_on_refetch() {
        let mut s = StorageServer::new(1, Some(SetAssociativeCache::new(64 << 20, 4 << 10, 4)));
        let lines = lines_per_block(1 << 20, 4 << 10);
        assert_eq!(lines, 256);
        let addr = line_address(3, 17, 0);
        assert!(!s.cache_read_block(addr, lines), "cold read misses");
        assert!(s.cache_read_block(addr, lines), "warm read hits");
        assert!(s.cache_probe_block(addr, lines) == 1.0);
    }

    #[test]
    fn partial_residency_is_not_a_hit() {
        let mut s = StorageServer::new(2, Some(SetAssociativeCache::new(64 << 20, 4 << 10, 4)));
        let addr = line_address(0, 5, 0);
        s.cache_read_block(addr, 128); // half the block
        assert!(
            !s.cache_read_block(addr, 256),
            "half-resident block must be a miss"
        );
        assert!(s.cache_read_block(addr, 256), "now fully resident");
    }

    #[test]
    fn line_addresses_disjoint_across_disks_and_tags() {
        let a = line_address(1, 0, 0)..line_address(1, 0, 0) + 256;
        let b = line_address(1, 1, 0)..line_address(1, 1, 0) + 256;
        let c = line_address(2, 0, 0)..line_address(2, 0, 0) + 256;
        assert!(a.end <= b.start || b.end <= a.start);
        assert!(a.end <= c.start || c.end <= a.start);
    }

    #[test]
    fn clear_cache_forgets() {
        let mut s = StorageServer::new(3, Some(SetAssociativeCache::new(64 << 20, 4 << 10, 4)));
        s.cache_read_block(0, 256);
        s.clear_cache();
        assert!(!s.cache_read_block(0, 256));
    }
}
