//! Cluster assembly: disks, filers, and background loads from one seed.

use rand::Rng;
use robustore_diskmodel::background::BackgroundLoad;
use robustore_diskmodel::{Disk, DiskGeometry, DiskHealth, DiskRequest, LayoutConfig};
use robustore_simkit::{FaultKind, FaultPlan, SeedSequence, SimDuration, SimTime};

use crate::cache::SetAssociativeCache;
use crate::config::ClusterConfig;
use crate::server::StorageServer;

/// How per-disk in-file layouts are drawn (§6.2.5, Figure 6-1 context).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayoutPolicy {
    /// The paper's heterogeneous layout: random blocking factor, random
    /// sequentiality, random zone per disk — the ~100× bandwidth spread.
    Heterogeneous,
    /// Homogeneous layout: every disk sequential at the largest blocking
    /// factor; only zone placement varies (≈2× spread, Figures 6-24/25).
    Homogeneous,
    /// All disks share one fixed configuration (tests, calibration).
    Fixed(LayoutConfig),
}

/// How per-disk competitive workloads are configured (§6.3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackgroundPolicy {
    /// Idle disks: variation comes from layout only.
    None,
    /// Every disk sees the same mean arrival interval (Figures 6-5, 6-24).
    Uniform(SimDuration),
    /// Each disk draws its mean interval uniformly from [6, 200] ms
    /// (the heterogeneous competitive workloads of Figures 6-26..34).
    Heterogeneous,
}

/// The assembled storage system.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<StorageServer>,
    disks: Vec<Disk>,
    backgrounds: Vec<Option<BackgroundLoad>>,
}

impl Cluster {
    /// Build a cluster deterministically from `seeds`. Layout draws,
    /// background intervals, and all disk service randomness derive from
    /// labelled streams, so trials with different seeds are independent
    /// and identical seeds reproduce exactly.
    pub fn build(
        config: ClusterConfig,
        layout: LayoutPolicy,
        background: BackgroundPolicy,
        seeds: &SeedSequence,
    ) -> Self {
        config.validate().expect("invalid cluster config");
        let geometry = DiskGeometry::default();
        let mut layout_rng = seeds.fork("layout-draw", 0);
        let mut bg_rng = seeds.fork("background-draw", 0);

        let disks: Vec<Disk> = (0..config.num_disks)
            .map(|i| {
                let lc = match layout {
                    LayoutPolicy::Heterogeneous => {
                        LayoutConfig::random_heterogeneous(&mut layout_rng)
                    }
                    LayoutPolicy::Homogeneous => LayoutConfig::homogeneous(&mut layout_rng),
                    LayoutPolicy::Fixed(lc) => lc,
                };
                Disk::new(i, geometry.clone(), lc, seeds.fork("disk", i as u64))
                    .with_discipline(config.discipline)
            })
            .collect();

        let backgrounds: Vec<Option<BackgroundLoad>> = (0..config.num_disks)
            .map(|i| match background {
                BackgroundPolicy::None => None,
                BackgroundPolicy::Uniform(interval) => Some(BackgroundLoad::new(
                    interval,
                    seeds.fork("background", i as u64),
                )),
                BackgroundPolicy::Heterogeneous => {
                    let ms = bg_rng.gen_range(
                        robustore_diskmodel::background::INTERVAL_RANGE_MS.0
                            ..=robustore_diskmodel::background::INTERVAL_RANGE_MS.1,
                    );
                    Some(BackgroundLoad::new(
                        SimDuration::from_millis(ms),
                        seeds.fork("background", i as u64),
                    ))
                }
            })
            .collect();

        let servers: Vec<StorageServer> = (0..config.num_servers())
            .map(|s| {
                let cache = config.cache_bytes.map(|b| {
                    SetAssociativeCache::new(b, config.cache_line_bytes, config.cache_ways)
                });
                StorageServer::new(s, cache)
            })
            .collect();

        Cluster {
            config,
            servers,
            disks,
            backgrounds,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Total disks.
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Immutable disk access.
    pub fn disk(&self, i: usize) -> &Disk {
        &self.disks[i]
    }

    /// Mutable disk access (the coordinator submits/cancels through this).
    pub fn disk_mut(&mut self, i: usize) -> &mut Disk {
        &mut self.disks[i]
    }

    /// The filer fronting disk `i`, mutably (cache operations).
    pub fn server_of_disk_mut(&mut self, disk: usize) -> &mut StorageServer {
        let s = self.config.server_of_disk(disk);
        &mut self.servers[s]
    }

    /// The filer fronting disk `i`.
    pub fn server_of_disk(&self, disk: usize) -> &StorageServer {
        &self.servers[self.config.server_of_disk(disk)]
    }

    /// All servers.
    pub fn servers(&self) -> &[StorageServer] {
        &self.servers
    }

    /// Background load generator of disk `i`, if configured.
    pub fn background_mut(&mut self, disk: usize) -> Option<&mut BackgroundLoad> {
        self.backgrounds[disk].as_mut()
    }

    /// Whether any disk has a background load.
    pub fn has_background(&self) -> bool {
        self.backgrounds.iter().any(|b| b.is_some())
    }

    /// Apply a health-affecting fault from `plan` to disk `gdisk`
    /// (occupying slot `slot` of the faulted access). Slowdown and
    /// flaky windows take effect immediately; a permanent failure
    /// returns the dropped queued requests so the coordinator can
    /// account them as failed. Load bursts are coordinator-level —
    /// they need fresh request ids and completion scheduling — and are
    /// rejected here.
    pub fn apply_fault(
        &mut self,
        now: SimTime,
        gdisk: usize,
        slot: usize,
        kind: &FaultKind,
        plan: &FaultPlan,
    ) -> Vec<DiskRequest> {
        let disk = &mut self.disks[gdisk];
        match *kind {
            FaultKind::Slowdown { factor, duration } => {
                disk.slow_down(now, factor, duration);
                Vec::new()
            }
            FaultKind::Flaky {
                error_prob,
                duration,
            } => {
                disk.make_flaky(now, error_prob, duration, plan.fault_rng(slot));
                Vec::new()
            }
            FaultKind::PermanentFailure => disk.fail(),
            FaultKind::LoadBurst { .. } => {
                panic!("load bursts are scheduled by the access coordinator")
            }
        }
    }

    /// Health of disk `i` as of `now`.
    pub fn disk_health(&self, i: usize, now: SimTime) -> DiskHealth {
        self.disks[i].health(now)
    }

    /// Clear every filer cache (cold-start a trial).
    pub fn clear_caches(&mut self) {
        for s in &mut self.servers {
            s.clear_cache();
        }
    }

    /// Quiesce every disk: drop queued and in-service requests. A new
    /// access coordinator must call this before reusing a cluster whose
    /// previous coordinator has gone away (its completion events died
    /// with its event queue).
    pub fn quiesce(&mut self) {
        for d in &mut self.disks {
            d.quiesce();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_simkit::SeedSequence;

    fn seeds() -> SeedSequence {
        SeedSequence::new(1234)
    }

    #[test]
    fn build_default_shape() {
        let c = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Heterogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        assert_eq!(c.num_disks(), 128);
        assert_eq!(c.servers().len(), 16);
        assert!(!c.has_background());
        assert!(!c.server_of_disk(0).has_cache());
    }

    #[test]
    fn heterogeneous_layouts_differ_across_disks() {
        let c = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Heterogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        let distinct: std::collections::HashSet<_> = (0..c.num_disks())
            .map(|i| {
                let l = c.disk(i).layout();
                (l.blocking_factor, l.seq_prob as u32)
            })
            .collect();
        assert!(
            distinct.len() >= 8,
            "expected layout diversity, got {distinct:?}"
        );
    }

    #[test]
    fn homogeneous_layouts_share_blocking_factor() {
        let c = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Homogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        for i in 0..c.num_disks() {
            let l = c.disk(i).layout();
            assert_eq!(l.blocking_factor, 1024);
            assert_eq!(l.seq_prob, 1.0);
        }
    }

    #[test]
    fn background_policies() {
        let mut uniform = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Homogeneous,
            BackgroundPolicy::Uniform(SimDuration::from_millis(50)),
            &seeds(),
        );
        assert!(uniform.has_background());
        assert_eq!(
            uniform.background_mut(0).unwrap().mean_interval(),
            SimDuration::from_millis(50)
        );

        let mut hetero = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Homogeneous,
            BackgroundPolicy::Heterogeneous,
            &seeds(),
        );
        let intervals: std::collections::HashSet<u64> = (0..hetero.num_disks())
            .map(|i| hetero.background_mut(i).unwrap().mean_interval().as_nanos())
            .collect();
        assert!(intervals.len() > 10, "heterogeneous intervals should vary");
    }

    #[test]
    fn cache_enabled_when_configured() {
        let c = Cluster::build(
            ClusterConfig::default().with_cache(2 << 30),
            LayoutPolicy::Homogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        assert!(c.server_of_disk(0).has_cache());
    }

    #[test]
    fn apply_fault_drives_disk_health() {
        use robustore_simkit::FaultScenario;
        let mut c = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Homogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        let plan = FaultPlan::generate(&FaultScenario::flaky(0.5), 4, &seeds());
        let now = SimTime::ZERO;
        assert_eq!(c.disk_health(0, now), DiskHealth::Healthy);
        c.apply_fault(
            now,
            0,
            0,
            &FaultKind::Slowdown {
                factor: 4.0,
                duration: SimDuration::from_secs(1),
            },
            &plan,
        );
        assert_eq!(c.disk_health(0, now), DiskHealth::Degraded);
        c.apply_fault(
            now,
            1,
            1,
            &FaultKind::Flaky {
                error_prob: 0.5,
                duration: SimDuration::from_secs(1),
            },
            &plan,
        );
        assert_eq!(c.disk_health(1, now), DiskHealth::Flaky);
        let dropped = c.apply_fault(now, 2, 2, &FaultKind::PermanentFailure, &plan);
        assert!(dropped.is_empty(), "idle disk has nothing queued");
        assert_eq!(c.disk_health(2, now), DiskHealth::Failed);
        // Quiesce heals everything for the next access.
        c.quiesce();
        for i in 0..3 {
            assert_eq!(c.disk_health(i, now), DiskHealth::Healthy);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let layout_of = |c: &Cluster, i: usize| {
            let l = c.disk(i).layout();
            (l.blocking_factor, l.seq_prob as u32, l.zone_frac.to_bits())
        };
        let a = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Heterogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        let b = Cluster::build(
            ClusterConfig::default(),
            LayoutPolicy::Heterogeneous,
            BackgroundPolicy::None,
            &seeds(),
        );
        for i in 0..a.num_disks() {
            assert_eq!(layout_of(&a, i), layout_of(&b, i));
        }
    }
}
