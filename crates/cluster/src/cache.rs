//! Set-associative LRU filesystem cache.
//!
//! §6.2.5: "Each filer maintains a 2 GB filesystem cache shared by the
//! eight disks attached to it. We model the cache as LRU based and
//! four-way associative with a 4 KB cache line." Keys are opaque 64-bit
//! line addresses (the cluster layer encodes disk id and on-disk offset
//! into them); the cache itself knows nothing about blocks.

/// A W-way set-associative cache of 64-bit line addresses with per-set LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    /// sets[s] holds up to `ways` lines, most recently used last.
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl SetAssociativeCache {
    /// A cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity. The number of sets is rounded up to a
    /// power of two so set indexing is a mask.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(line_bytes > 0 && ways > 0, "degenerate cache geometry");
        assert!(
            capacity_bytes >= line_bytes * ways as u64,
            "capacity below one set"
        );
        let lines = capacity_bytes / line_bytes;
        let sets = (lines as usize / ways).next_power_of_two();
        SetAssociativeCache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// The paper's filer cache: 2 GB, 4 KB lines, 4-way.
    pub fn filer_default() -> Self {
        SetAssociativeCache::new(2 << 30, 4 << 10, 4)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets.len() * self.ways) as u64 * self.line_bytes
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        // Mix the address before masking so structured addresses (disk id
        // in high bits, sequential offsets low) spread across sets.
        let mut z = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        (z as usize) & (self.sets.len() - 1)
    }

    /// Look up a line *without* changing LRU state or statistics.
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Access a line: on hit, refresh LRU and return `true`; on miss,
    /// insert it (evicting the set's LRU victim if full) and return
    /// `false`.
    pub fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // Move to MRU position.
            let l = set.remove(pos);
            set.push(l);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.remove(0); // evict LRU
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Access a contiguous range of lines; returns how many hit. The whole
    /// range is inserted (a block read populates all its lines).
    pub fn access_range(&mut self, first_line: u64, count: u64) -> u64 {
        (first_line..first_line + count)
            .filter(|&l| self.access(l))
            .count() as u64
    }

    /// Check a contiguous range without touching state; returns hits.
    pub fn probe_range(&self, first_line: u64, count: u64) -> u64 {
        (first_line..first_line + count)
            .filter(|&l| self.contains(l))
            .count() as u64
    }

    /// Cache hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all cached lines and statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssociativeCache::new(1 << 20, 4 << 10, 4);
        assert!(!c.access(42));
        assert!(c.access(42));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_rounding() {
        let c = SetAssociativeCache::new(2 << 30, 4 << 10, 4);
        // 2 GB / 4 KB = 524288 lines; 131072 sets is already a power of 2.
        assert_eq!(c.capacity_bytes(), 2 << 30);
        assert_eq!(c.line_bytes(), 4 << 10);
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // One set (4 lines capacity, 4-way): pure LRU.
        let mut c = SetAssociativeCache::new(16 << 10, 4 << 10, 4);
        assert_eq!(c.sets.len(), 1);
        for l in 0..4 {
            c.access(l);
        }
        c.access(0); // refresh 0 → LRU order is 1,2,3,0
        c.access(100); // evicts 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(c.contains(3));
        assert!(c.contains(100));
    }

    #[test]
    fn range_access_counts_hits() {
        let mut c = SetAssociativeCache::new(1 << 20, 4 << 10, 4);
        assert_eq!(c.access_range(1000, 10), 0);
        assert_eq!(c.access_range(1000, 10), 10);
        assert_eq!(c.access_range(1005, 10), 5);
        assert_eq!(c.probe_range(1005, 10), 10);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = SetAssociativeCache::new(1 << 20, 4 << 10, 4);
        assert_eq!(c.probe_range(7, 3), 0);
        assert_eq!(c.hits() + c.misses(), 0);
        c.access(7);
        assert!(c.contains(7));
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut c = SetAssociativeCache::new(1 << 20, 4 << 10, 4);
        c.access(1);
        c.clear();
        assert!(!c.contains(1));
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = SetAssociativeCache::new(64 << 10, 4 << 10, 4); // 16 lines
        let lines: Vec<u64> = (0..64).collect();
        for &l in &lines {
            c.access(l);
        }
        // Second pass over a 4x-capacity working set: mostly misses.
        let hits: u64 = lines.iter().filter(|&&l| c.access(l)).count() as u64;
        assert!(
            hits < 16,
            "thrashing working set should mostly miss, hits {hits}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity below one set")]
    fn tiny_capacity_panics() {
        SetAssociativeCache::new(4 << 10, 4 << 10, 4);
    }
}
