//! Property tests for the disk model.

use proptest::prelude::*;
use robustore_diskmodel::request::{Direction, DiskRequest, RequestId, StreamId};
use robustore_diskmodel::{Disk, DiskGeometry, LayoutConfig};
use robustore_simkit::{SeedSequence, SimTime};

fn req(id: u64, sectors: u64) -> DiskRequest {
    DiskRequest {
        id: RequestId(id),
        stream: StreamId::Foreground(0),
        direction: Direction::Read,
        sectors,
        tag: id,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Service times are strictly positive and finite for any layout and
    /// request size.
    #[test]
    fn service_is_positive(
        bf_idx in 0usize..8,
        seq in any::<bool>(),
        zone in 0.0f64..1.0,
        sectors in 1u64..8192,
        seed in any::<u64>(),
    ) {
        let layout = LayoutConfig {
            blocking_factor: robustore_diskmodel::layout::BLOCKING_FACTORS[bf_idx],
            seq_prob: if seq { 1.0 } else { 0.0 },
            zone_frac: zone,
            band_cylinders: 2000,
        };
        let mut d = Disk::new(0, DiskGeometry::default(), layout, SeedSequence::new(seed).fork("d", 0));
        let done = d.submit(SimTime::ZERO, req(1, sectors)).unwrap();
        prop_assert!(done > SimTime::ZERO);
        // A 1 MB request on a commodity disk takes between ~100 µs and ~60 s.
        let secs = done.as_secs_f64() * 2048.0 / sectors as f64;
        prop_assert!(secs < 120.0, "absurdly slow: {secs}s per MB-equivalent");
    }

    /// FCFS: completions come back in submission order, and every
    /// submitted request completes exactly once.
    #[test]
    fn fcfs_conservation(
        sizes in proptest::collection::vec(1u64..4096, 1..40),
        seed in any::<u64>(),
    ) {
        let mut d = Disk::new(
            0,
            DiskGeometry::default(),
            LayoutConfig::grid_point(64, 0.0),
            SeedSequence::new(seed).fork("d", 0),
        );
        let mut first = None;
        for (i, &s) in sizes.iter().enumerate() {
            if let Some(t) = d.submit(SimTime::ZERO, req(i as u64, s)) {
                first = Some(t);
            }
        }
        let mut next = first;
        let mut order = Vec::new();
        while let Some(t) = next {
            let (c, n) = d.on_complete(t);
            order.push(c.request.id.0);
            next = n;
        }
        prop_assert_eq!(order, (0..sizes.len() as u64).collect::<Vec<_>>());
        prop_assert!(!d.is_busy());
        prop_assert_eq!(d.queue_len(), 0);
    }

    /// Cancellation removes exactly the queued matching requests; the
    /// in-service one always survives.
    #[test]
    fn cancel_preserves_in_service(
        n in 2usize..30,
        seed in any::<u64>(),
    ) {
        let mut d = Disk::new(
            0,
            DiskGeometry::default(),
            LayoutConfig::grid_point(64, 0.0),
            SeedSequence::new(seed).fork("d", 0),
        );
        let first = d.submit(SimTime::ZERO, req(0, 128)).unwrap();
        for i in 1..n {
            prop_assert!(d.submit(SimTime::ZERO, req(i as u64, 128)).is_none());
        }
        let cancelled = d.cancel_stream(StreamId::Foreground(0));
        prop_assert_eq!(cancelled.len(), n - 1);
        let (c, next) = d.on_complete(first);
        prop_assert_eq!(c.request.id.0, 0);
        prop_assert!(next.is_none());
    }

    /// Quiescing leaves the disk idle and reusable.
    #[test]
    fn quiesce_resets(seed in any::<u64>()) {
        let mut d = Disk::new(
            0,
            DiskGeometry::default(),
            LayoutConfig::grid_point(64, 0.0),
            SeedSequence::new(seed).fork("d", 0),
        );
        d.submit(SimTime::ZERO, req(0, 128)).unwrap();
        d.submit(SimTime::ZERO, req(1, 128));
        d.quiesce();
        prop_assert!(!d.is_busy());
        prop_assert_eq!(d.queue_len(), 0);
        // The disk accepts new work immediately.
        prop_assert!(d.submit(SimTime::ZERO, req(2, 128)).is_some());
    }

    /// Larger transfers never take less total time on the same seed
    /// stream (transfer-time monotonicity at equal positioning draws).
    #[test]
    fn sequential_transfer_monotone(
        small in 1u64..2000,
        extra in 1u64..2000,
    ) {
        // Fully sequential layout: no random positioning, so service time
        // is deterministic per size and must grow with size.
        let service = |sectors: u64| {
            let mut d = Disk::new(
                0,
                DiskGeometry::default(),
                LayoutConfig::grid_point(1024, 1.0),
                SeedSequence::new(1).fork("d", 0),
            );
            // Warm the stream so the first run is sequential too.
            let t0 = d.submit(SimTime::ZERO, req(0, 8)).unwrap();
            d.on_complete(t0);
            let t1 = d.submit(t0, req(1, sectors)).unwrap();
            t1.since(t0)
        };
        prop_assert!(service(small + extra) > service(small));
    }
}
