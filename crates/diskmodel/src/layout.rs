//! In-disk data-layout model.
//!
//! The paper models each disk's layout quality with two DiskSim synthetic-
//! workload parameters (§6.2.5): the **blocking factor** (average sectors
//! accessed per positioning, i.e. how contiguous the data is) and the
//! **probability of sequential access** (how often one run follows the
//! previous one without repositioning). Drawing the pair at random per disk
//! produces the ~100-fold per-disk bandwidth spread of Table 6-1 that the
//! heterogeneous-layout experiments rely on.

use rand::Rng;
use robustore_simkit::rng::uniform01;
use robustore_simkit::SimRng;

/// The blocking factors the paper draws from (Table 6-1 columns).
pub const BLOCKING_FACTORS: [u32; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

/// Per-disk layout configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutConfig {
    /// Sectors accessed per positioning operation.
    pub blocking_factor: u32,
    /// Probability that a run continues sequentially from the previous one
    /// (the paper draws 0 or 1; any value in `[0,1]` is allowed).
    pub seq_prob: f64,
    /// Radial position of the data band: 0.0 = outermost (fastest zone),
    /// 1.0 = innermost.
    pub zone_frac: f64,
    /// Cylinder span of the file band; random-within-file seeks stay
    /// inside it.
    pub band_cylinders: u32,
}

impl LayoutConfig {
    /// A named configuration with default band placement (used by the
    /// Table 6-1 calibration grid).
    pub fn grid_point(blocking_factor: u32, seq_prob: f64) -> Self {
        LayoutConfig {
            blocking_factor,
            seq_prob,
            zone_frac: 0.0,
            band_cylinders: 2_000,
        }
    }

    /// Draw the paper's heterogeneous layout: blocking factor uniform from
    /// [`BLOCKING_FACTORS`], sequential probability a fair coin over
    /// {0, 1}, and a uniform random zone placement (§6.2.5: "for each disk,
    /// we randomly choose a blocking factor from 8, 16, …, 1024, and
    /// randomly choose 0 or 1 as the probability of sequential accesses").
    pub fn random_heterogeneous(rng: &mut SimRng) -> Self {
        let bf = BLOCKING_FACTORS[rng.gen_range(0..BLOCKING_FACTORS.len())];
        let seq = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
        LayoutConfig {
            blocking_factor: bf,
            seq_prob: seq,
            zone_frac: uniform01(rng),
            // Physical contiguity varies per file placement (§1.2: up to
            // 100-fold variation "even for the same disk type" from layout
            // and seek distance): log-uniform band span, 500–8000 cyls.
            band_cylinders: (500.0 * 16f64.powf(uniform01(rng))) as u32,
        }
    }

    /// A homogeneous "good" layout: every disk fully sequential at a large
    /// blocking factor, differing only in zone placement — the
    /// configuration of the homogeneous experiments (Figures 6-24/25,
    /// where the remaining ≈2× variation comes from the zones).
    pub fn homogeneous(rng: &mut SimRng) -> Self {
        LayoutConfig {
            blocking_factor: 1024,
            seq_prob: 1.0,
            zone_frac: uniform01(rng),
            band_cylinders: 2_000,
        }
    }

    /// Validity check used by constructors in higher layers.
    pub fn is_valid(&self) -> bool {
        self.blocking_factor >= 1
            && (0.0..=1.0).contains(&self.seq_prob)
            && (0.0..=1.0).contains(&self.zone_frac)
            && self.band_cylinders >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_simkit::SeedSequence;

    #[test]
    fn grid_point_is_valid() {
        for &bf in &BLOCKING_FACTORS {
            for &p in &[0.0, 1.0] {
                assert!(LayoutConfig::grid_point(bf, p).is_valid());
            }
        }
    }

    #[test]
    fn random_heterogeneous_draws_cover_grid() {
        let mut rng = SeedSequence::new(4).fork("layout", 0);
        let mut seen_bf = std::collections::HashSet::new();
        let mut seen_seq = std::collections::HashSet::new();
        for _ in 0..500 {
            let l = LayoutConfig::random_heterogeneous(&mut rng);
            assert!(l.is_valid());
            assert!(BLOCKING_FACTORS.contains(&l.blocking_factor));
            assert!(l.seq_prob == 0.0 || l.seq_prob == 1.0);
            seen_bf.insert(l.blocking_factor);
            seen_seq.insert(l.seq_prob as u32);
        }
        assert_eq!(seen_bf.len(), BLOCKING_FACTORS.len(), "all factors drawn");
        assert_eq!(seen_seq.len(), 2, "both sequentialities drawn");
    }

    #[test]
    fn homogeneous_is_best_case() {
        let mut rng = SeedSequence::new(5).fork("layout", 1);
        let l = LayoutConfig::homogeneous(&mut rng);
        assert_eq!(l.blocking_factor, 1024);
        assert_eq!(l.seq_prob, 1.0);
        assert!(l.is_valid());
    }
}
