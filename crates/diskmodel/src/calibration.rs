//! Table 6-1 calibration: measured bandwidth per layout configuration.
//!
//! The paper calibrates its DiskSim parameters against a real drive and
//! reports the resulting average bandwidth for each (blocking factor ×
//! sequential probability) grid point (Table 6-1: 0.52–53 MB/s, grid
//! average 14.9 MB/s). This module measures the same grid on our model so
//! the experiment harness can print the reproduced table, and so tests can
//! pin the model's envelope.

use robustore_simkit::{SeedSequence, SimTime};

use crate::disk::Disk;
use crate::geometry::DiskGeometry;
use crate::layout::{LayoutConfig, BLOCKING_FACTORS};
use crate::request::{Direction, DiskRequest, RequestId, StreamId};

/// Measured bandwidth (bytes/second) for one layout: a lone foreground
/// stream reads `total_bytes` in `request_bytes` requests back-to-back.
pub fn measure_bandwidth(
    geometry: &DiskGeometry,
    layout: LayoutConfig,
    total_bytes: u64,
    request_bytes: u64,
    seed: u64,
) -> f64 {
    assert!(request_bytes > 0 && total_bytes >= request_bytes);
    let seq = SeedSequence::new(seed);
    let mut disk = Disk::new(0, geometry.clone(), layout, seq.fork("cal-disk", 0));
    let n_requests = total_bytes / request_bytes;
    let sectors = crate::bytes_to_sectors(request_bytes);
    let mut now = SimTime::ZERO;
    for i in 0..n_requests {
        let done = disk
            .submit(
                now,
                DiskRequest {
                    id: RequestId(i),
                    stream: StreamId::Foreground(0),
                    direction: Direction::Read,
                    sectors,
                    tag: 0,
                },
            )
            .expect("disk is idle in the closed loop");
        let (_, next) = disk.on_complete(done);
        debug_assert!(next.is_none());
        now = done;
    }
    (n_requests * request_bytes) as f64 / now.as_secs_f64()
}

/// One Table 6-1 cell.
#[derive(Debug, Clone, Copy)]
pub struct GridCell {
    /// Blocking factor (sectors per run).
    pub blocking_factor: u32,
    /// Probability of sequential access (0 or 1 in the paper's grid).
    pub seq_prob: f64,
    /// Measured bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// Measure the full Table 6-1 grid: all blocking factors × {0, 1}
/// sequential probability, averaged over `trials` seeds, reading
/// `total_bytes` in 1 MB requests per trial.
pub fn table_grid(geometry: &DiskGeometry, total_bytes: u64, trials: u64) -> Vec<GridCell> {
    let mut out = Vec::with_capacity(BLOCKING_FACTORS.len() * 2);
    for &p in &[0.0, 1.0] {
        for &bf in &BLOCKING_FACTORS {
            let layout = LayoutConfig::grid_point(bf, p);
            let mean: f64 = (0..trials)
                .map(|t| measure_bandwidth(geometry, layout, total_bytes, 1 << 20, 1000 + t))
                .sum::<f64>()
                / trials as f64;
            out.push(GridCell {
                blocking_factor: bf,
                seq_prob: p,
                bandwidth: mean,
            });
        }
    }
    out
}

/// Grid average bandwidth (bytes/second) — the paper's 14.9 MB/s figure.
pub fn grid_average(cells: &[GridCell]) -> f64 {
    cells.iter().map(|c| c.bandwidth).sum::<f64>() / cells.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    fn grid() -> Vec<GridCell> {
        table_grid(&DiskGeometry::default(), 64 << 20, 2)
    }

    #[test]
    fn grid_reproduces_table_6_1_envelope() {
        let cells = grid();
        assert_eq!(cells.len(), 16);
        let min = cells.iter().map(|c| c.bandwidth).fold(f64::MAX, f64::min);
        let max = cells.iter().map(|c| c.bandwidth).fold(0.0, f64::max);
        // Paper: 0.52–53 MB/s, a ~100-fold spread. Accept 0.2–2 MB/s at the
        // bottom, 40–65 at the top, ≥40x spread.
        assert!((0.2 * MB..2.0 * MB).contains(&min), "min {} MB/s", min / MB);
        assert!(
            (40.0 * MB..65.0 * MB).contains(&max),
            "max {} MB/s",
            max / MB
        );
        assert!(max / min > 40.0, "spread {:.0}x", max / min);
    }

    #[test]
    fn grid_average_near_fifteen_mbps() {
        let cells = grid();
        let avg = grid_average(&cells);
        // Paper: 14.9 MB/s. Accept 9–21.
        assert!(
            (9.0 * MB..21.0 * MB).contains(&avg),
            "grid average {} MB/s",
            avg / MB
        );
    }

    #[test]
    fn bandwidth_monotone_in_blocking_factor_at_p0() {
        let cells = grid();
        let p0: Vec<f64> = cells
            .iter()
            .filter(|c| c.seq_prob == 0.0)
            .map(|c| c.bandwidth)
            .collect();
        assert!(
            p0.windows(2).all(|w| w[1] > w[0]),
            "p=0 row must increase with blocking factor: {p0:?}"
        );
    }

    #[test]
    fn sequential_beats_random_at_every_factor() {
        let cells = grid();
        for &bf in &BLOCKING_FACTORS {
            let at = |p: f64| {
                cells
                    .iter()
                    .find(|c| c.blocking_factor == bf && c.seq_prob == p)
                    .unwrap()
                    .bandwidth
            };
            assert!(at(1.0) > at(0.0), "bf={bf}");
        }
    }

    #[test]
    fn measure_bandwidth_is_deterministic() {
        let g = DiskGeometry::default();
        let l = LayoutConfig::grid_point(64, 0.0);
        let a = measure_bandwidth(&g, l, 8 << 20, 1 << 20, 42);
        let b = measure_bandwidth(&g, l, 8 << 20, 1 << 20, 42);
        assert_eq!(a, b);
    }
}
