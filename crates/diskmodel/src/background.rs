//! Competitive background-workload generator.
//!
//! §6.2.5: "The background workloads … are sequences of midsize requests,
//! with about 50 sectors on average per request. We used sequences with
//! different intervals to model different levels of the competitive
//! loads." Intervals of 6 ms utilise ≈93 % of the disk; 200 ms leaves it
//! mostly idle (Figure 6-5). For heterogeneous competitive workloads the
//! per-disk interval is drawn uniformly from [6, 200] ms (§6.3.2).

use rand::Rng;
use robustore_simkit::rng::exponential;
use robustore_simkit::{SimDuration, SimRng, SimTime};

use crate::request::{Direction, DiskRequest, RequestId, StreamId};

/// Per-disk background request source.
#[derive(Debug)]
pub struct BackgroundLoad {
    mean_interval: SimDuration,
    mean_sectors: u64,
    rng: SimRng,
}

/// The paper's competitive-load interval range, milliseconds.
pub const INTERVAL_RANGE_MS: (u64, u64) = (6, 200);

/// Maximum background requests a generator keeps queued at one disk.
/// Arrivals beyond this are dropped (a real competing application
/// throttles once its own requests back up). Calibrated so a 6 ms
/// interval drives ≈90+% utilisation while the foreground stream retains
/// a few percent of the disk — the Figure 6-5 operating points.
pub const MAX_BACKLOG: usize = 64;

impl BackgroundLoad {
    /// A load with a fixed mean inter-arrival time (Poisson arrivals) and
    /// the paper's ~50-sector requests.
    pub fn new(mean_interval: SimDuration, rng: SimRng) -> Self {
        assert!(!mean_interval.is_zero(), "mean interval must be positive");
        BackgroundLoad {
            mean_interval,
            mean_sectors: 50,
            rng,
        }
    }

    /// Heterogeneous competitive workload: mean interval drawn uniformly
    /// from [6, 200] ms (drawn once per disk per trial).
    pub fn heterogeneous(rng: &mut SimRng, own_rng: SimRng) -> Self {
        let (lo, hi) = INTERVAL_RANGE_MS;
        let ms = rng.gen_range(lo..=hi);
        BackgroundLoad::new(SimDuration::from_millis(ms), own_rng)
    }

    /// Mean inter-arrival time.
    pub fn mean_interval(&self) -> SimDuration {
        self.mean_interval
    }

    /// Draw the next arrival instant after `now` (exponential
    /// inter-arrival).
    pub fn next_arrival(&mut self, now: SimTime) -> SimTime {
        let gap = exponential(&mut self.rng, self.mean_interval.as_secs_f64());
        now + SimDuration::from_secs_f64(gap)
    }

    /// Build the request for one background arrival. Sizes are uniform in
    /// [1, 2·mean) so the mean is ≈50 sectors.
    pub fn make_request(&mut self, id: RequestId) -> DiskRequest {
        let sectors = self.rng.gen_range(1..2 * self.mean_sectors);
        DiskRequest {
            id,
            stream: StreamId::Background,
            direction: Direction::Read,
            sectors,
            tag: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_simkit::SeedSequence;

    #[test]
    fn arrivals_average_the_mean_interval() {
        let seq = SeedSequence::new(10);
        let mut load = BackgroundLoad::new(SimDuration::from_millis(20), seq.fork("bg", 0));
        let n = 20_000;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now = load.next_arrival(now);
        }
        let mean_ms = now.as_secs_f64() * 1e3 / n as f64;
        assert!(
            (mean_ms - 20.0).abs() < 1.0,
            "mean inter-arrival {mean_ms} ms"
        );
    }

    #[test]
    fn request_sizes_average_fifty_sectors() {
        let seq = SeedSequence::new(11);
        let mut load = BackgroundLoad::new(SimDuration::from_millis(20), seq.fork("bg", 1));
        let n = 20_000u64;
        let total: u64 = (0..n)
            .map(|i| load.make_request(RequestId(i)).sectors)
            .sum();
        let mean = total as f64 / n as f64;
        assert!((45.0..55.0).contains(&mean), "mean sectors {mean}");
    }

    #[test]
    fn requests_are_background_stream() {
        let seq = SeedSequence::new(12);
        let mut load = BackgroundLoad::new(SimDuration::from_millis(6), seq.fork("bg", 2));
        let r = load.make_request(RequestId(0));
        assert_eq!(r.stream, StreamId::Background);
        assert!(r.sectors >= 1);
    }

    #[test]
    fn heterogeneous_draws_span_the_range() {
        let seq = SeedSequence::new(13);
        let mut draw_rng = seq.fork("draw", 0);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for i in 0..200 {
            let load = BackgroundLoad::heterogeneous(&mut draw_rng, seq.fork("bg", i));
            let ms = load.mean_interval().as_secs_f64() * 1e3;
            assert!((6.0..=200.0).contains(&ms));
            lo_seen |= ms < 60.0;
            hi_seen |= ms > 140.0;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let seq = SeedSequence::new(14);
        BackgroundLoad::new(SimDuration::ZERO, seq.fork("bg", 3));
    }
}
