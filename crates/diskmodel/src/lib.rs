#![warn(missing_docs)]

//! Block-level hard-disk simulator for RobuSTore.
//!
//! The paper evaluates RobuSTore with a DiskSim-based virtual disk
//! (§6.2.2): a block-level model of seek, rotation, zoned transfer rates,
//! a request queue supporting cancellation, and a synthetic-workload layout
//! model parameterised by *blocking factor* and *probability of sequential
//! access* (Table 6-1). This crate is that substrate, rebuilt from scratch:
//!
//! * [`geometry`] — mechanical model: zoned tracks, distance-dependent seek
//!   curve, rotational latency, per-sector transfer time.
//! * [`layout`] — the in-disk data-layout model that generates the paper's
//!   100-fold heterogeneous per-disk bandwidths.
//! * [`request`] — disk requests, streams, and completion records.
//! * [`disk`] — the single-server FCFS disk with request cancellation and
//!   busy-time accounting.
//! * [`background`] — the competitive-workload generator (§6.2.5,
//!   Figure 6-5).
//! * [`calibration`] — measures the Table 6-1 bandwidth grid for a
//!   geometry, used both by the experiment harness and to keep the model
//!   honest in tests.
//!
//! The disk is a *passive* object: a coordinator (the scheme simulator in
//! `robustore-schemes`) owns the global event queue, calls
//! [`Disk::submit`]/[`Disk::on_complete`], and schedules the returned
//! completion times.

pub mod background;
pub mod calibration;
pub mod disk;
pub mod geometry;
pub mod layout;
pub mod request;

pub use background::BackgroundLoad;
pub use disk::{Disk, DiskHealth, QueueDiscipline};
pub use geometry::DiskGeometry;
pub use layout::LayoutConfig;
pub use request::{Completion, DiskRequest, RequestId, StreamId};

/// Bytes per simulated disk sector (fixed at the classic 512 B).
pub const SECTOR_BYTES: u64 = 512;

/// Convert a byte count to sectors, rounding up.
pub fn bytes_to_sectors(bytes: u64) -> u64 {
    bytes.div_ceil(SECTOR_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sector_conversion() {
        assert_eq!(bytes_to_sectors(0), 0);
        assert_eq!(bytes_to_sectors(1), 1);
        assert_eq!(bytes_to_sectors(512), 1);
        assert_eq!(bytes_to_sectors(513), 2);
        assert_eq!(bytes_to_sectors(1 << 20), 2048);
    }
}
