//! Mechanical disk model: zones, seek curve, rotation, transfer.
//!
//! Modeled after the drive the paper calibrates against (an IBM Deskstar
//! 7K400: 7200 rpm ATA drive, peak media rate in the 50–60 MB/s range,
//! ~8.5 ms average seek). The structural elements follow the classic
//! Ruemmler–Wilkes model the paper cites: a seek curve that is √distance
//! for short seeks and linear for long ones, rotational latency uniform in
//! one revolution, and outer zones holding more sectors per track than
//! inner ones (§2.1.1).

use robustore_simkit::rng::uniform01;
use robustore_simkit::SimDuration;

/// Static description of a disk mechanism.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Number of cylinders (seek distance domain).
    pub cylinders: u32,
    /// Sectors per track in the outermost zone.
    pub sectors_per_track_outer: u32,
    /// Sectors per track in the innermost zone.
    pub sectors_per_track_inner: u32,
    /// Track-to-track (single-cylinder) seek time.
    pub seek_track_to_track: SimDuration,
    /// Full-stroke (max distance) seek time.
    pub seek_full_stroke: SimDuration,
    /// Fixed command-processing / controller overhead, charged once per
    /// layout run (each blocking-factor-sized access pays it — this is what
    /// makes small blocking factors slow even with sequential layout, the
    /// Table 6-1 p=1 row).
    pub command_overhead: SimDuration,
}

impl Default for DiskGeometry {
    /// A 7200 rpm commodity drive calibrated so the Table 6-1 layout grid
    /// spans ≈0.4–55 MB/s with a ≈15 MB/s grid average (§6.2.5).
    fn default() -> Self {
        DiskGeometry {
            rpm: 7200,
            cylinders: 60_000,
            sectors_per_track_outer: 976, // ≈ 57 MB/s at 7200 rpm
            sectors_per_track_inner: 488, // ≈ 28 MB/s
            seek_track_to_track: SimDuration::from_micros(800),
            seek_full_stroke: SimDuration::from_millis(17),
            command_overhead: SimDuration::from_micros(1000),
        }
    }
}

impl DiskGeometry {
    /// Time for one full revolution.
    pub fn rotation_period(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Sectors per track at a radial position; `zone_frac` runs from 0.0
    /// (outermost, fastest) to 1.0 (innermost, slowest).
    pub fn sectors_per_track(&self, zone_frac: f64) -> f64 {
        let f = zone_frac.clamp(0.0, 1.0);
        let outer = self.sectors_per_track_outer as f64;
        let inner = self.sectors_per_track_inner as f64;
        outer + (inner - outer) * f
    }

    /// Sustained media transfer rate at a radial position, bytes/second.
    pub fn transfer_rate(&self, zone_frac: f64) -> f64 {
        self.sectors_per_track(zone_frac) * crate::SECTOR_BYTES as f64
            / self.rotation_period().as_secs_f64()
    }

    /// Media transfer time for `sectors` contiguous sectors at a radial
    /// position.
    pub fn transfer_time(&self, sectors: u64, zone_frac: f64) -> SimDuration {
        SimDuration::from_secs_f64(
            sectors as f64 * crate::SECTOR_BYTES as f64 / self.transfer_rate(zone_frac),
        )
    }

    /// Seek time for a move of `distance` cylinders: √distance for short
    /// seeks blended into a linear tail, anchored at the track-to-track and
    /// full-stroke endpoints.
    pub fn seek_time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let max_d = (self.cylinders.max(2) - 1) as f64;
        let d = (distance as f64 - 1.0).min(max_d);
        let t2t = self.seek_track_to_track.as_secs_f64();
        let full = self.seek_full_stroke.as_secs_f64();
        // Short seeks (< 1/3 of the stroke) follow a + b·√d; beyond that
        // the arm coasts and time grows linearly to the full-stroke value.
        let knee = max_d / 3.0;
        let sqrt_coef = (full * 0.6 - t2t) / max_d.sqrt();
        let sqrt_at_knee = t2t + sqrt_coef * knee.sqrt();
        let t = if d <= knee {
            t2t + sqrt_coef * d.sqrt()
        } else {
            sqrt_at_knee + (full - sqrt_at_knee) * (d - knee) / (max_d - knee)
        };
        SimDuration::from_secs_f64(t)
    }

    /// Expected (average) rotational latency: half a revolution.
    pub fn average_rotational_latency(&self) -> SimDuration {
        self.rotation_period() / 2
    }

    /// Draw a rotational latency uniform in one revolution.
    pub fn rotational_latency(&self, rng: &mut impl rand::RngCore) -> SimDuration {
        SimDuration::from_secs_f64(uniform01(rng) * self.rotation_period().as_secs_f64())
    }

    /// Draw a seek within a cylinder band of `band` cylinders (a file's
    /// extent occupies a band; random access within the file seeks inside
    /// it).
    pub fn seek_within_band(&self, band: u32, rng: &mut impl rand::RngCore) -> SimDuration {
        if band <= 1 {
            return self.seek_track_to_track;
        }
        let d = 1 + (uniform01(rng) * (band - 1) as f64) as u32;
        self.seek_time(d.min(self.cylinders))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_simkit::SeedSequence;

    #[test]
    fn rotation_period_7200rpm() {
        let g = DiskGeometry::default();
        let p = g.rotation_period().as_secs_f64();
        assert!((p - 60.0 / 7200.0).abs() < 1e-9);
    }

    #[test]
    fn outer_zone_faster_than_inner() {
        let g = DiskGeometry::default();
        let outer = g.transfer_rate(0.0);
        let inner = g.transfer_rate(1.0);
        assert!(outer > inner);
        // Peak in the 50–60 MB/s range (§2.1.1: 30–140 MB/s class drives;
        // the paper's fastest layout delivers 53 MB/s).
        assert!((50e6..65e6).contains(&outer), "outer rate {outer}");
        assert!((25e6..35e6).contains(&inner), "inner rate {inner}");
    }

    #[test]
    fn seek_curve_monotone_and_anchored() {
        let g = DiskGeometry::default();
        assert_eq!(g.seek_time(0), SimDuration::ZERO);
        assert_eq!(g.seek_time(1), g.seek_track_to_track);
        let mut last = SimDuration::ZERO;
        for d in [1u32, 10, 100, 1_000, 10_000, 30_000, 60_000] {
            let t = g.seek_time(d);
            assert!(t >= last, "seek curve must be monotone at {d}");
            last = t;
        }
        let full = g.seek_time(g.cylinders);
        let diff = full.as_secs_f64() - g.seek_full_stroke.as_secs_f64();
        assert!(diff.abs() < 1e-4, "full stroke anchored, diff {diff}");
    }

    #[test]
    fn average_seek_is_high_single_digit_ms() {
        // "A modern hard disk usually has an average seek time of about
        // 10 ms" (§2.1.1) — uniform random seeks should average 5–12 ms.
        let g = DiskGeometry::default();
        let n = 10_000;
        let mut rng = SeedSequence::new(1).fork("seek", 0);
        let total: f64 = (0..n)
            .map(|_| {
                let d = (uniform01(&mut rng) * g.cylinders as f64) as u32;
                g.seek_time(d).as_secs_f64()
            })
            .sum();
        let avg_ms = total / n as f64 * 1e3;
        assert!((5.0..12.0).contains(&avg_ms), "average seek {avg_ms} ms");
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let g = DiskGeometry::default();
        let one = g.transfer_time(100, 0.0).as_secs_f64();
        let ten = g.transfer_time(1000, 0.0).as_secs_f64();
        // Nanosecond rounding at the model boundary allows tiny slack.
        assert!((ten / one - 10.0).abs() < 1e-5);
    }

    #[test]
    fn rotational_latency_bounded_by_period() {
        let g = DiskGeometry::default();
        let mut rng = SeedSequence::new(2).fork("rot", 0);
        for _ in 0..1000 {
            let r = g.rotational_latency(&mut rng);
            assert!(r < g.rotation_period());
        }
    }

    #[test]
    fn band_seek_shorter_than_full_stroke() {
        let g = DiskGeometry::default();
        let mut rng = SeedSequence::new(3).fork("band", 0);
        for _ in 0..1000 {
            let s = g.seek_within_band(2_000, &mut rng);
            assert!(s <= g.seek_time(2_000));
            assert!(s >= g.seek_track_to_track);
        }
        assert_eq!(g.seek_within_band(1, &mut rng), g.seek_track_to_track);
    }
}
