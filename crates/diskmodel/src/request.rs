//! Disk requests, streams, and completion records.

use robustore_simkit::{SimDuration, SimTime};

/// Globally unique request identifier (assigned by the coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// The access stream a request belongs to. Sequentiality carries over
/// between consecutive requests *of the same stream* only; an interleaved
/// request from another stream forces repositioning — the mechanism by
/// which competitive workloads destroy disk bandwidth (§1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// A client access; the payload distinguishes independent accesses.
    Foreground(u64),
    /// The disk's competitive background workload.
    Background,
}

/// Direction of a request. Reads and writes cost the same in this model
/// (write-through, no write-back caching — §6.2.5 presumes write-through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Data flows disk → client.
    Read,
    /// Data flows client → disk.
    Write,
}

/// A request for `sectors` contiguous-by-layout sectors on one disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskRequest {
    /// Coordinator-assigned id, echoed in the [`Completion`].
    pub id: RequestId,
    /// Stream the request belongs to.
    pub stream: StreamId,
    /// Read or write.
    pub direction: Direction,
    /// Size in sectors.
    pub sectors: u64,
    /// Opaque tag for the coordinator (e.g. coded-block index).
    pub tag: u64,
}

/// Record of a finished request.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The request that finished.
    pub request: DiskRequest,
    /// When service started (after queueing).
    pub started_at: SimTime,
    /// When the last byte left the platter.
    pub finished_at: SimTime,
    /// Pure service time (seek + rotation + transfer + overhead).
    pub service_time: SimDuration,
    /// True if the disk was flaky when service finished and this
    /// completion drew an I/O error: the data did not arrive and the
    /// coordinator must retry or give up on the request.
    pub io_error: bool,
}

impl Completion {
    /// Bytes moved by the request.
    pub fn bytes(&self) -> u64 {
        self.request.sectors * crate::SECTOR_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_bytes() {
        let c = Completion {
            request: DiskRequest {
                id: RequestId(1),
                stream: StreamId::Background,
                direction: Direction::Read,
                sectors: 2048,
                tag: 0,
            },
            started_at: SimTime::ZERO,
            finished_at: SimTime::ZERO,
            service_time: SimDuration::ZERO,
            io_error: false,
        };
        assert_eq!(c.bytes(), 1 << 20);
    }

    #[test]
    fn stream_identity() {
        assert_eq!(StreamId::Foreground(3), StreamId::Foreground(3));
        assert_ne!(StreamId::Foreground(3), StreamId::Foreground(4));
        assert_ne!(StreamId::Foreground(3), StreamId::Background);
    }
}
