//! The single-server disk with FCFS queue and request cancellation.
//!
//! Mirrors the paper's virtual disk (§6.2.2): requests — foreground and
//! background alike — share one queue and are serviced in arrival order.
//! Cancellation removes *queued* requests only; the request being serviced
//! finishes and its bytes are charged to whoever asked for them, which is
//! exactly the "in-flight bytes at cancel time" overhead the paper
//! attributes to speculative access (§4.1.2).

use std::collections::VecDeque;

use robustore_simkit::rng::uniform01;
use robustore_simkit::{SimDuration, SimRng, SimTime};

use crate::geometry::DiskGeometry;
use crate::layout::LayoutConfig;
use crate::request::{Completion, DiskRequest, RequestId, StreamId};

/// How the disk picks its next request (§2.1.1 "scheduling algorithm";
/// §5.4 motivates why the policy matters under sharing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First come, first served — the DiskSim-style default used by the
    /// paper's evaluation.
    #[default]
    Fcfs,
    /// Foreground requests overtake queued background requests — what a
    /// server that prioritises paying clients over scrubbing would do.
    ForegroundFirst,
    /// Alternate between foreground and background work when both are
    /// queued — an idealised fair scheduler.
    FairShare,
}

/// State of the request in service.
#[derive(Debug, Clone, Copy)]
struct InService {
    request: DiskRequest,
    started_at: SimTime,
    finishes_at: SimTime,
}

/// Externally injected health, driven by the fault layer
/// (`robustore_simkit::faults`). Healthy disks never consult it, so
/// fault-free runs are identical to a build without fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskHealth {
    /// Normal operation.
    #[default]
    Healthy,
    /// Inside a slowdown window: service times are multiplied.
    Degraded,
    /// Inside a flaky window: completions may carry I/O errors.
    Flaky,
    /// Permanently dead: queued work was dropped, submissions are
    /// refused.
    Failed,
}

/// A simulated hard disk drive.
#[derive(Debug)]
pub struct Disk {
    id: usize,
    geometry: DiskGeometry,
    layout: LayoutConfig,
    rng: SimRng,
    queue: VecDeque<DiskRequest>,
    in_service: Option<InService>,
    /// Stream of the most recently *serviced* request; sequentiality only
    /// carries over within a stream.
    last_stream: Option<StreamId>,
    discipline: QueueDiscipline,
    busy_time: SimDuration,
    bytes_serviced: u64,
    /// End of the current slowdown window; before this instant service
    /// times are multiplied by `slow_factor`.
    slow_until: SimTime,
    slow_factor: f64,
    /// End of the current flaky window; completions before this instant
    /// draw an I/O error with probability `error_prob`.
    flaky_until: SimTime,
    error_prob: f64,
    /// Dedicated RNG for fault draws. Kept separate from the service
    /// stream so injecting faults never perturbs service times — the
    /// property that keeps faulted and fault-free trials comparable.
    fault_rng: Option<SimRng>,
    failed: bool,
}

impl Disk {
    /// A disk with the given mechanism, layout quality, and private RNG.
    pub fn new(id: usize, geometry: DiskGeometry, layout: LayoutConfig, rng: SimRng) -> Self {
        assert!(layout.is_valid(), "invalid layout config");
        Disk {
            id,
            geometry,
            layout,
            rng,
            queue: VecDeque::new(),
            in_service: None,
            last_stream: None,
            discipline: QueueDiscipline::Fcfs,
            busy_time: SimDuration::ZERO,
            bytes_serviced: 0,
            slow_until: SimTime::ZERO,
            slow_factor: 1.0,
            flaky_until: SimTime::ZERO,
            error_prob: 0.0,
            fault_rng: None,
            failed: false,
        }
    }

    /// Select the queue discipline (default FCFS).
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// The active queue discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Pick the next queued request according to the discipline.
    fn pop_next(&mut self) -> Option<DiskRequest> {
        let is_fg = |r: &DiskRequest| matches!(r.stream, StreamId::Foreground(_));
        let pick = |queue: &VecDeque<DiskRequest>, want_fg: bool| {
            queue.iter().position(|r| is_fg(r) == want_fg)
        };
        let idx = match self.discipline {
            QueueDiscipline::Fcfs => 0,
            QueueDiscipline::ForegroundFirst => pick(&self.queue, true).unwrap_or(0),
            QueueDiscipline::FairShare => {
                // Alternate: after servicing one class, prefer the other.
                let prefer_fg = !matches!(self.last_stream, Some(StreamId::Foreground(_)));
                pick(&self.queue, prefer_fg).unwrap_or(0)
            }
        };
        self.queue.remove(idx)
    }

    /// Disk id assigned at construction.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The layout configuration this disk was built with.
    pub fn layout(&self) -> LayoutConfig {
        self.layout
    }

    /// The disk mechanism.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Submit a request. If the disk was idle, service starts immediately
    /// and the completion instant is returned for the coordinator to
    /// schedule; otherwise the request queues and `None` is returned.
    ///
    /// # Panics
    /// Panics if the disk has permanently failed; coordinators must
    /// check [`Disk::is_failed`] and account the request as failed
    /// instead of submitting it.
    pub fn submit(&mut self, now: SimTime, request: DiskRequest) -> Option<SimTime> {
        assert!(!self.failed, "submit to a failed disk");
        if self.in_service.is_none() {
            Some(self.start_service(now, request))
        } else {
            self.queue.push_back(request);
            None
        }
    }

    /// The coordinator calls this when the scheduled completion fires.
    /// Returns the finished request's [`Completion`] and, if another
    /// request was queued, the completion instant of the next service.
    pub fn on_complete(&mut self, now: SimTime) -> (Completion, Option<SimTime>) {
        let svc = self
            .in_service
            .take()
            .expect("on_complete with no request in service");
        debug_assert_eq!(svc.finishes_at, now, "completion fired at the wrong time");
        // A request caught in flight by a permanent failure is lost; a
        // flaky disk corrupts completions probabilistically.
        let io_error = self.failed
            || (now < self.flaky_until
                && self
                    .fault_rng
                    .as_mut()
                    .is_some_and(|rng| uniform01(rng) < self.error_prob));
        let completion = Completion {
            request: svc.request,
            started_at: svc.started_at,
            finished_at: now,
            service_time: now.since(svc.started_at),
            io_error,
        };
        let next = self.pop_next().map(|req| self.start_service(now, req));
        (completion, next)
    }

    /// Cancel all *queued* requests of `stream`. The in-service request is
    /// not interrupted. Returns the cancelled requests (the coordinator
    /// needs their ids to reconcile bookkeeping).
    pub fn cancel_stream(&mut self, stream: StreamId) -> Vec<DiskRequest> {
        let mut cancelled = Vec::new();
        self.queue.retain(|r| {
            if r.stream == stream {
                cancelled.push(*r);
                false
            } else {
                true
            }
        });
        cancelled
    }

    /// Cancel one queued request by id; `false` if it was not queued
    /// (already serving, finished, or never submitted).
    pub fn cancel_request(&mut self, id: RequestId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|r| r.id != id);
        self.queue.len() != before
    }

    /// Number of queued (not yet serving) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queued requests belonging to the background stream. Background
    /// generators bound their backlog (an open-loop generator with service
    /// times above its interval would otherwise grow the queue without
    /// limit and starve everything).
    pub fn queued_background(&self) -> usize {
        self.queue
            .iter()
            .filter(|r| r.stream == StreamId::Background)
            .count()
    }

    /// Whether a request is currently being serviced.
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// The request currently in service, if any.
    pub fn in_service(&self) -> Option<&DiskRequest> {
        self.in_service.as_ref().map(|s| &s.request)
    }

    /// Cumulative time spent servicing requests.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Drop all pending work — queued requests *and* the in-service
    /// marker — and restore full health. Used when a coordinator takes
    /// over a disk whose previous coordinator's event queue (and thus
    /// the pending completion event) is gone; without this the disk
    /// would wait forever for a completion that will never fire. Health
    /// resets because faults are scheduled per access by its own
    /// [`FaultPlan`](robustore_simkit::FaultPlan).
    pub fn quiesce(&mut self) {
        self.queue.clear();
        self.in_service = None;
        self.slow_until = SimTime::ZERO;
        self.slow_factor = 1.0;
        self.flaky_until = SimTime::ZERO;
        self.error_prob = 0.0;
        self.fault_rng = None;
        self.failed = false;
    }

    /// Degrade the disk: service times starting before `now + duration`
    /// are multiplied by `factor`. A new window replaces any current one.
    /// The in-service request is unaffected (its completion is already
    /// scheduled).
    pub fn slow_down(&mut self, now: SimTime, factor: f64, duration: SimDuration) {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        self.slow_factor = factor;
        self.slow_until = now + duration;
    }

    /// Make completions before `now + duration` draw an I/O error with
    /// probability `error_prob`, using `fault_rng` — a stream dedicated
    /// to fault draws so service times are unperturbed.
    pub fn make_flaky(
        &mut self,
        now: SimTime,
        error_prob: f64,
        duration: SimDuration,
        fault_rng: SimRng,
    ) {
        assert!((0.0..=1.0).contains(&error_prob));
        self.error_prob = error_prob;
        self.flaky_until = now + duration;
        self.fault_rng = Some(fault_rng);
    }

    /// Kill the disk permanently. Queued requests are dropped and
    /// returned so the coordinator can account them as failed; the
    /// in-service request (if any) still completes — with `io_error`
    /// set — because its completion event is already scheduled.
    pub fn fail(&mut self) -> Vec<DiskRequest> {
        self.failed = true;
        self.queue.drain(..).collect()
    }

    /// Whether the disk has permanently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Health as of `now`. Failure dominates; a disk both degraded and
    /// flaky reports [`DiskHealth::Flaky`] (the more severe condition).
    pub fn health(&self, now: SimTime) -> DiskHealth {
        if self.failed {
            DiskHealth::Failed
        } else if now < self.flaky_until {
            DiskHealth::Flaky
        } else if now < self.slow_until {
            DiskHealth::Degraded
        } else {
            DiskHealth::Healthy
        }
    }

    /// Cumulative bytes serviced (reads + writes).
    pub fn bytes_serviced(&self) -> u64 {
        self.bytes_serviced
    }

    fn start_service(&mut self, now: SimTime, request: DiskRequest) -> SimTime {
        let mut service = self.service_time(&request);
        if now < self.slow_until {
            // Integer-nanosecond scaling keeps the event trace exact.
            service =
                SimDuration::from_nanos((service.as_nanos() as f64 * self.slow_factor) as u64);
        }
        self.busy_time += service;
        self.bytes_serviced += request.sectors * crate::SECTOR_BYTES;
        self.last_stream = Some(request.stream);
        let finishes_at = now + service;
        self.in_service = Some(InService {
            request,
            started_at: now,
            finishes_at,
        });
        finishes_at
    }

    /// Mechanical service-time model.
    ///
    /// Foreground requests walk the layout model: ⌈sectors/blocking-factor⌉
    /// runs, each preceded by a positioning (in-band seek + rotational
    /// latency) unless sequential; the first run is sequential only when
    /// the same stream serviced the previous request. Background requests
    /// are random accesses across the whole platter.
    fn service_time(&mut self, request: &DiskRequest) -> SimDuration {
        let g = &self.geometry;
        match request.stream {
            StreamId::Background => {
                let mut t = g.command_overhead;
                let d = (uniform01(&mut self.rng) * g.cylinders as f64) as u32;
                t += g.seek_time(d);
                t += g.rotational_latency(&mut self.rng);
                // Background data is placed anywhere; mid-radius transfer.
                t += g.transfer_time(request.sectors, 0.5);
                t
            }
            StreamId::Foreground(_) => {
                let bf = self.layout.blocking_factor as u64;
                let runs = request.sectors.div_ceil(bf).max(1);
                let continues = self.last_stream == Some(request.stream);
                let mut t = SimDuration::ZERO;
                for run in 0..runs {
                    // Each run is one disk command (DiskSim's synthetic
                    // workload issues blocking-factor-sized requests).
                    t += g.command_overhead;
                    let sequential = if run == 0 && !continues {
                        false
                    } else {
                        uniform01(&mut self.rng) < self.layout.seq_prob
                    };
                    if !sequential {
                        t += g.seek_within_band(self.layout.band_cylinders, &mut self.rng);
                        t += g.rotational_latency(&mut self.rng);
                    }
                }
                t += g.transfer_time(request.sectors, self.layout.zone_frac);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Direction;
    use robustore_simkit::SeedSequence;

    fn mk_disk(seed: u64, layout: LayoutConfig) -> Disk {
        Disk::new(
            0,
            DiskGeometry::default(),
            layout,
            SeedSequence::new(seed).fork("disk", 0),
        )
    }

    fn req(id: u64, stream: StreamId, sectors: u64) -> DiskRequest {
        DiskRequest {
            id: RequestId(id),
            stream,
            direction: Direction::Read,
            sectors,
            tag: 0,
        }
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = mk_disk(1, LayoutConfig::grid_point(1024, 1.0));
        let done = d.submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048));
        assert!(done.is_some());
        assert!(d.is_busy());
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn busy_disk_queues_fcfs() {
        let mut d = mk_disk(2, LayoutConfig::grid_point(1024, 1.0));
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048))
            .unwrap();
        assert!(d
            .submit(SimTime::ZERO, req(2, StreamId::Foreground(0), 2048))
            .is_none());
        assert!(d
            .submit(SimTime::ZERO, req(3, StreamId::Foreground(0), 2048))
            .is_none());
        assert_eq!(d.queue_len(), 2);

        let (c1, t2) = d.on_complete(t1);
        assert_eq!(c1.request.id, RequestId(1));
        let t2 = t2.expect("next request starts");
        let (c2, t3) = d.on_complete(t2);
        assert_eq!(c2.request.id, RequestId(2));
        let (c3, t4) = d.on_complete(t3.unwrap());
        assert_eq!(c3.request.id, RequestId(3));
        assert!(t4.is_none());
        assert!(!d.is_busy());
    }

    #[test]
    fn sequential_layout_is_much_faster_than_random() {
        // 1 MB requests: fully sequential layout vs fully random 4 KB runs.
        let mut fast = mk_disk(3, LayoutConfig::grid_point(1024, 1.0));
        let mut slow = mk_disk(3, LayoutConfig::grid_point(8, 0.0));
        let t_fast = fast
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048))
            .unwrap();
        let t_slow = slow
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048))
            .unwrap();
        let ratio = t_slow.as_nanos() as f64 / t_fast.as_nanos() as f64;
        assert!(
            ratio > 20.0,
            "random layout should be >20x slower, got {ratio:.1}x"
        );
    }

    #[test]
    fn interleaved_stream_forces_reposition() {
        // With a perfect sequential layout, requests of one stream flow at
        // media rate; alternating with a second stream must be slower.
        let layout = LayoutConfig::grid_point(1024, 1.0);

        // Both runs service 20 stream-0 requests; the shared run interleaves
        // a stream-99 request between each pair, forcing repositioning.
        let run = |interleave: bool, seed: u64| -> SimDuration {
            let mut d = mk_disk(seed, layout);
            let mut now = SimTime::ZERO;
            let mut total = SimDuration::ZERO;
            let mut id = 0;
            for _ in 0..20 {
                let done = d
                    .submit(now, req(id, StreamId::Foreground(0), 2048))
                    .unwrap();
                id += 1;
                let (c, _) = d.on_complete(done);
                total += c.service_time;
                now = done;
                if interleave {
                    let done = d
                        .submit(now, req(id, StreamId::Foreground(99), 2048))
                        .unwrap();
                    id += 1;
                    d.on_complete(done);
                    now = done;
                }
            }
            total
        };
        let alone = run(false, 7);
        let shared = run(true, 7);
        assert!(
            shared > alone,
            "interleaving must slow stream 0: alone {alone}, shared {shared}"
        );
    }

    #[test]
    fn cancel_stream_removes_only_queued_matching() {
        let mut d = mk_disk(4, LayoutConfig::grid_point(64, 0.0));
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 128))
            .unwrap();
        d.submit(SimTime::ZERO, req(2, StreamId::Foreground(0), 128));
        d.submit(SimTime::ZERO, req(3, StreamId::Background, 50));
        d.submit(SimTime::ZERO, req(4, StreamId::Foreground(0), 128));
        let cancelled = d.cancel_stream(StreamId::Foreground(0));
        assert_eq!(
            cancelled.iter().map(|r| r.id.0).collect::<Vec<_>>(),
            vec![2, 4]
        );
        // In-service request 1 still completes; background request 3 next.
        let (c1, t2) = d.on_complete(t1);
        assert_eq!(c1.request.id, RequestId(1));
        let (c3, t_none) = d.on_complete(t2.unwrap());
        assert_eq!(c3.request.id, RequestId(3));
        assert!(t_none.is_none());
    }

    #[test]
    fn cancel_request_by_id() {
        let mut d = mk_disk(5, LayoutConfig::grid_point(64, 0.0));
        d.submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 128));
        d.submit(SimTime::ZERO, req(2, StreamId::Foreground(0), 128));
        assert!(d.cancel_request(RequestId(2)));
        assert!(!d.cancel_request(RequestId(2)), "already cancelled");
        assert!(!d.cancel_request(RequestId(1)), "in service, not queued");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut d = mk_disk(6, LayoutConfig::grid_point(1024, 1.0));
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048))
            .unwrap();
        d.on_complete(t1);
        assert_eq!(d.busy_time(), t1.since(SimTime::ZERO));
        assert_eq!(d.bytes_serviced(), 2048 * crate::SECTOR_BYTES);
    }

    #[test]
    #[should_panic(expected = "no request in service")]
    fn on_complete_when_idle_panics() {
        let mut d = mk_disk(7, LayoutConfig::grid_point(64, 0.0));
        d.on_complete(SimTime::ZERO);
    }

    #[test]
    fn foreground_first_overtakes_background() {
        let mut d = mk_disk(9, LayoutConfig::grid_point(64, 0.0))
            .with_discipline(QueueDiscipline::ForegroundFirst);
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Background, 50))
            .unwrap();
        d.submit(SimTime::ZERO, req(2, StreamId::Background, 50));
        d.submit(SimTime::ZERO, req(3, StreamId::Foreground(0), 128));
        let (_, t2) = d.on_complete(t1);
        let (c, _) = d.on_complete(t2.unwrap());
        assert_eq!(c.request.id, RequestId(3), "foreground overtakes queued bg");
    }

    #[test]
    fn fair_share_alternates_classes() {
        let mut d = mk_disk(10, LayoutConfig::grid_point(64, 0.0))
            .with_discipline(QueueDiscipline::FairShare);
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Background, 50))
            .unwrap();
        d.submit(SimTime::ZERO, req(2, StreamId::Background, 50));
        d.submit(SimTime::ZERO, req(3, StreamId::Background, 50));
        d.submit(SimTime::ZERO, req(4, StreamId::Foreground(0), 128));
        d.submit(SimTime::ZERO, req(5, StreamId::Foreground(0), 128));
        let mut order = Vec::new();
        let mut next = Some(t1);
        while let Some(t) = next {
            let (c, n) = d.on_complete(t);
            order.push(c.request.id.0);
            next = n;
        }
        // bg 1 served first (was in service), then alternate: fg, bg, fg, bg.
        assert_eq!(order, vec![1, 4, 2, 5, 3]);
    }

    #[test]
    fn fcfs_preserves_arrival_order_across_classes() {
        let mut d = mk_disk(11, LayoutConfig::grid_point(64, 0.0));
        assert_eq!(d.discipline(), QueueDiscipline::Fcfs);
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Background, 50))
            .unwrap();
        d.submit(SimTime::ZERO, req(2, StreamId::Foreground(0), 128));
        d.submit(SimTime::ZERO, req(3, StreamId::Background, 50));
        let mut order = Vec::new();
        let mut next = Some(t1);
        while let Some(t) = next {
            let (c, n) = d.on_complete(t);
            order.push(c.request.id.0);
            next = n;
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn slowdown_multiplies_service_time_within_window() {
        let mut normal = mk_disk(20, LayoutConfig::grid_point(1024, 1.0));
        let mut slow = mk_disk(20, LayoutConfig::grid_point(1024, 1.0));
        slow.slow_down(SimTime::ZERO, 4.0, SimDuration::from_secs(1));
        assert_eq!(slow.health(SimTime::ZERO), DiskHealth::Degraded);
        let tn = normal
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048))
            .unwrap();
        let ts = slow
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 2048))
            .unwrap();
        assert_eq!(ts.as_nanos(), tn.as_nanos() * 4, "4x slowdown is exact");
        // Outside the window the disk is healthy again.
        assert_eq!(
            slow.health(SimTime::ZERO + SimDuration::from_secs(2)),
            DiskHealth::Healthy
        );
    }

    #[test]
    fn failed_disk_drops_queue_and_flags_inflight() {
        let mut d = mk_disk(21, LayoutConfig::grid_point(64, 0.0));
        let t1 = d
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 128))
            .unwrap();
        d.submit(SimTime::ZERO, req(2, StreamId::Foreground(0), 128));
        d.submit(SimTime::ZERO, req(3, StreamId::Background, 50));
        let dropped = d.fail();
        assert_eq!(
            dropped.iter().map(|r| r.id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(d.is_failed());
        assert_eq!(d.health(SimTime::ZERO), DiskHealth::Failed);
        // The in-flight request completes (its event was already
        // scheduled) but carries the error flag.
        let (c, next) = d.on_complete(t1);
        assert!(c.io_error, "in-flight request on a failed disk is lost");
        assert!(next.is_none());
    }

    #[test]
    #[should_panic(expected = "failed disk")]
    fn submit_to_failed_disk_panics() {
        let mut d = mk_disk(22, LayoutConfig::grid_point(64, 0.0));
        d.fail();
        d.submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 128));
    }

    #[test]
    fn flaky_draws_are_off_the_service_stream() {
        let seq = SeedSequence::new(23);
        let run = |flaky: bool| {
            let mut d = mk_disk(23, LayoutConfig::grid_point(64, 0.0));
            if flaky {
                d.make_flaky(
                    SimTime::ZERO,
                    0.5,
                    SimDuration::from_secs(3600),
                    seq.fork("fault-local", 0),
                );
            }
            let mut now = SimTime::ZERO;
            let mut errors = 0;
            for i in 0..20 {
                let done = d.submit(now, req(i, StreamId::Foreground(0), 256)).unwrap();
                let (c, _) = d.on_complete(done);
                errors += c.io_error as u32;
                now = done;
            }
            (now, errors)
        };
        let (t_clean, e_clean) = run(false);
        let (t_flaky, e_flaky) = run(true);
        assert_eq!(e_clean, 0);
        assert!(e_flaky > 0, "p=0.5 over 20 requests should error");
        assert!(e_flaky < 20, "...but not always");
        assert_eq!(
            t_clean, t_flaky,
            "fault draws must not perturb service times"
        );
        assert_eq!(run(true), run(true), "flaky draws are deterministic");
    }

    #[test]
    fn quiesce_restores_health() {
        let mut d = mk_disk(24, LayoutConfig::grid_point(64, 0.0));
        d.fail();
        d.slow_down(SimTime::ZERO, 8.0, SimDuration::from_secs(1));
        d.quiesce();
        assert_eq!(d.health(SimTime::ZERO), DiskHealth::Healthy);
        assert!(!d.is_failed());
        assert!(d
            .submit(SimTime::ZERO, req(1, StreamId::Foreground(0), 128))
            .is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut d = mk_disk(8, LayoutConfig::grid_point(32, 0.0));
            let mut now = SimTime::ZERO;
            for i in 0..10 {
                let done = d.submit(now, req(i, StreamId::Foreground(0), 256)).unwrap();
                d.on_complete(done);
                now = done;
            }
            now
        };
        assert_eq!(run(), run());
    }
}
