//! `xp` — regenerate the RobuSTore paper's tables and figures.
//!
//! ```text
//! xp list                 # show every experiment and what it covers
//! xp fig6-6               # run one experiment
//! xp all                  # run everything (writes results/<id>.txt each)
//! xp fig6-15 --trials 100 # override the trial count (default 40)
//! xp bench-coding --quick # smoke-test sizes (same as --trials 1)
//! ```

use std::io::Write as _;
use std::path::Path;

use robustore_bench::{find, registry, DEFAULT_TRIALS};

fn usage() -> ! {
    eprintln!("usage: xp <experiment-id|all|list> [--trials N] [--quick]");
    eprintln!("run `xp list` to see the available experiments");
    std::process::exit(2);
}

fn write_results(id: &str, content: &str) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{id}.txt"));
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let _ = f.write_all(content.as_bytes());
                eprintln!("[written {}]", path.display());
            }
            Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut trials = DEFAULT_TRIALS;
    let mut target: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                i += 1;
                trials = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            // One trial everywhere; experiments with a quick mode (e.g.
            // bench-coding) also shrink their data sizes for CI smoke runs.
            "--quick" => trials = 1,
            flag if flag.starts_with("--") => usage(),
            id => {
                if target.is_some() {
                    usage();
                }
                target = Some(id.to_string());
            }
        }
        i += 1;
    }
    let target = target.unwrap_or_else(|| usage());

    match target.as_str() {
        "list" => {
            println!("{:10} covers", "id");
            println!("{}", "-".repeat(90));
            for e in registry() {
                println!("{:10} {}", e.id, e.covers);
            }
        }
        "all" => {
            for e in registry() {
                eprintln!("== {} ({} trials) ==", e.id, trials);
                let start = std::time::Instant::now();
                let out = (e.run)(trials);
                eprintln!("[{} finished in {:.1?}]", e.id, start.elapsed());
                println!("{out}");
                write_results(e.id, &out);
            }
        }
        id => match find(id) {
            Some(e) => {
                let out = (e.run)(trials);
                println!("{out}");
                write_results(e.id, &out);
            }
            None => {
                eprintln!("unknown experiment {id:?}");
                usage();
            }
        },
    }
}
