//! Chaos extension: the four schemes under identical injected faults.
//!
//! Not a paper figure, but the paper's central robustness claim (§6.3)
//! stated operationally: under the *same* deterministic fault schedule —
//! same scenario, same seed, hence same slowdowns, failures, and flaky
//! windows hitting the same slots at the same times — erasure-coded
//! speculation should hold its latency distribution together while the
//! baselines stretch or fail outright.

use robustore_schemes::{AccessConfig, FaultScenario, SchemeKind, TrialStats};
use robustore_simkit::report::Table;

use super::trials_for;

fn fmt_or_dash(stats: &TrialStats, f: impl Fn(&TrialStats) -> String) -> String {
    if stats.trials() > 0 {
        f(stats)
    } else {
        "-".into()
    }
}

/// Chaos sweep: every scheme × every fault scenario, with per-request
/// outcome accounting.
pub fn faults(trials: u64) -> String {
    let scenarios: [(&str, FaultScenario); 5] = [
        ("none", FaultScenario::none()),
        ("one_slow_disk", FaultScenario::one_slow_disk(8.0)),
        ("n_failures", FaultScenario::n_failures(2)),
        ("flaky", FaultScenario::flaky(0.2)),
        ("load_bursts", FaultScenario::load_bursts(3)),
    ];
    let mut table = Table::new(
        "Chaos: schemes under identical fault schedules (256 MB, 16 of 32 disks, D=3)",
        &[
            "scenario",
            "scheme",
            "failed trials",
            "bw (MB/s)",
            "lat stdev (s)",
            "served",
            "cancelled",
            "timed out",
            "failed reqs",
        ],
    );
    for (si, (label, scenario)) in scenarios.iter().enumerate() {
        for scheme in SchemeKind::ALL {
            let mut cfg = AccessConfig::default()
                .with_scheme(scheme)
                .with_disks(16)
                .with_faults(*scenario);
            cfg.data_bytes = 256 << 20;
            cfg.cluster.num_disks = 32;
            let s = trials_for(&cfg, trials, "faults", (si as u64) << 8 | scheme as u64);
            table.row(vec![
                (*label).into(),
                scheme.name().into(),
                format!("{}/{}", s.failures, s.failures + s.trials()),
                fmt_or_dash(&s, |s| format!("{:.1}", s.mean_bandwidth_mbps())),
                fmt_or_dash(&s, |s| format!("{:.3}", s.latency_stdev_secs())),
                s.served_requests.to_string(),
                s.cancelled_requests.to_string(),
                s.timed_out_requests.to_string(),
                s.failed_requests.to_string(),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nEvery scheme sees the same fault schedule per trial (the schedule depends only on \
         scenario and seed, not on the scheme). RAID-0 cannot complete once a disk dies \
         mid-access; the redundant schemes ride through failures and keep their latency \
         spread under a slow disk — speculation's cancelled requests are the price.\n",
    );
    out
}
