//! Scrubbing experiment (`scrub`): redundancy over time with and without
//! a background scrubber, under an identical seeded fault diet.
//!
//! Not a paper figure, but the operational version of the thesis'
//! robustness argument taken one step further: erasure-coded redundancy
//! buys a *margin*, and under continuous low-grade loss (latent sector
//! errors) plus silent bit rot, that margin only survives if something
//! restores it. Two identical stores absorb the same deterministic
//! per-round damage; one runs [`Scrubber::sweep`] every round (with
//! read-repair on), the other has self-healing fully off. The table tracks each store's stored-block count,
//! decodability margin, and read outcome per round: the scrubbed store
//! returns to its full target of N blocks every round and never drops a
//! read, while the control decays monotonically until reads fail
//! outright.
//!
//! Rows also land in `BENCH_scrub.json` — schema `{variant, round,
//! stored_blocks, margin, read_ok, restored, corrupt_found,
//! missing_found}` — so EXPERIMENTS.md claims are backed by data.

use robustore_core::{
    AccessMode, Client, InMemoryBackend, QosOptions, Scrubber, System, SystemConfig,
};
use robustore_simkit::report::Table;
use robustore_simkit::SeedSequence;

use crate::MASTER_SEED;

const DISKS: usize = 8;

struct Row {
    variant: &'static str,
    round: u64,
    stored_blocks: usize,
    margin: i64,
    read_ok: bool,
    restored: usize,
    corrupt_found: usize,
    missing_found: usize,
}

fn fresh_store(block_bytes: u64, read_repair: bool) -> (System, Client) {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect();
    let sys = System::new(
        InMemoryBackend::new(speeds),
        SystemConfig {
            block_bytes,
            read_repair,
            ..Default::default()
        },
    );
    let client = Client::connect(&sys, sys.register_user());
    (sys, client)
}

/// Run the scrubbing experiment. `--quick` (or `--trials 1`) shrinks the
/// file and round count for CI smoke runs.
pub fn scrub(trials: u64) -> String {
    let quick = trials <= 1;
    let rounds: u64 = if quick { 6 } else { 10 };
    let data_len: usize = if quick { 120_000 } else { 600_000 };
    let block_bytes: u64 = 4 << 10;
    let loss_per_round = 0.12;
    let rot_per_round = 0.08;
    let seq = SeedSequence::new(MASTER_SEED ^ 0x5C_4B);
    let data: Vec<u8> = (0..data_len).map(|i| ((i * 131 + 7) % 256) as u8).collect();

    let mut rows: Vec<Row> = Vec::new();
    let mut run_variant = |variant: &'static str, scrubbed: bool| -> (u64, u64) {
        // The control store has self-healing fully off: no scrubber and no
        // read-repair, so its redundancy can only decay. The scrubbed
        // store keeps the whole healing layer on.
        let (sys, client) = fresh_store(block_bytes, scrubbed);
        let mut h = client
            .open("victim", AccessMode::Write, QosOptions::best_effort())
            .expect("open for write");
        client.write(&mut h, &data).expect("seed write");
        client.close(h).expect("close");
        let k = sys.export_meta("victim").expect("meta").coding.k;

        let mut reads_ok = 0u64;
        let mut reads_failed = 0u64;
        for round in 0..rounds {
            // Identical damage for both variants: the schedule depends
            // only on (round, disk), never on what the scrubber did.
            for disk in 0..DISKS {
                let sub = seq.subsequence("round-damage", round * DISKS as u64 + disk as u64);
                sys.lose_blocks(disk, loss_per_round, &sub);
                sys.corrupt_blocks(disk, rot_per_round, &sub);
            }
            let (mut restored, mut corrupt_found, mut missing_found) = (0, 0, 0);
            if scrubbed {
                let sweep = Scrubber::new(&client).sweep();
                for r in &sweep.scrubbed {
                    restored += r.blocks_restored;
                    corrupt_found += r.blocks_corrupt;
                    missing_found += r.blocks_missing;
                }
                // A failed per-file scrub (past decodability) is recorded
                // as restoring nothing; the read below shows the loss.
            }
            let h = client
                .open("victim", AccessMode::Read, QosOptions::best_effort())
                .expect("open for read");
            let read_ok = match client.read(&h) {
                Ok(got) => {
                    assert_eq!(got, data, "a served read must be bit-correct");
                    true
                }
                Err(_) => false,
            };
            client.close(h).expect("close");
            if read_ok {
                reads_ok += 1;
            } else {
                reads_failed += 1;
            }
            // Physically present blocks (metadata claims the full layout
            // regardless of loss; the backend's byte count is ground
            // truth — bit-rotted blocks still occupy space, and show up
            // in the `corrupt found` column instead).
            let stored = (sys.total_used() / block_bytes) as usize;
            rows.push(Row {
                variant,
                round,
                stored_blocks: stored,
                margin: stored as i64 - k as i64,
                read_ok,
                restored,
                corrupt_found,
                missing_found,
            });
        }
        (reads_ok, reads_failed)
    };

    let (scrub_ok, scrub_failed) = run_variant("scrubbed", true);
    let (control_ok, control_failed) = run_variant("control", false);

    let mut table = Table::new(
        "Scrubbing: redundancy over time under identical seeded loss + bit rot",
        &[
            "variant",
            "round",
            "stored blocks",
            "margin (stored-K)",
            "read",
            "restored",
            "corrupt found",
            "missing found",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.variant.into(),
            r.round.to_string(),
            r.stored_blocks.to_string(),
            format!("{:+}", r.margin),
            if r.read_ok { "ok" } else { "FAILED" }.into(),
            r.restored.to_string(),
            r.corrupt_found.to_string(),
            r.missing_found.to_string(),
        ]);
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"variant\": \"{}\", \"round\": {}, \"stored_blocks\": {}, \"margin\": {}, \
             \"read_ok\": {}, \"restored\": {}, \"corrupt_found\": {}, \"missing_found\": {}}}{}\n",
            r.variant,
            r.round,
            r.stored_blocks,
            r.margin,
            r.read_ok,
            r.restored,
            r.corrupt_found,
            r.missing_found,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_scrub.json", &json) {
        Ok(()) => "rows written to BENCH_scrub.json".to_string(),
        Err(e) => format!("could not write BENCH_scrub.json: {e}"),
    };

    let mut out = table.render();
    out.push_str(&format!(
        "\nScrubbed store: {scrub_ok}/{rounds} reads served ({scrub_failed} failed). \
         Control: {control_ok}/{rounds} served ({control_failed} failed).\n\
         Both stores absorb the same seeded damage each round \
         (~{loss}% of blocks lost, ~{rot}% bit-rotted per disk). The scrubber re-verifies \
         every block, re-encodes the damage from the decoded data, and restores the file \
         to its full N-block target, so its margin saw-tooths back to maximum each round; \
         the control's margin only decays, and once it crosses the decodability threshold \
         its reads fail for good. {json_note}\n",
        loss = (loss_per_round * 100.0) as u32,
        rot = (rot_per_round * 100.0) as u32,
    ));
    // The experiment's own acceptance bar, kept as hard assertions so a
    // regression in scrub/read-repair cannot silently ship a green table.
    assert_eq!(scrub_failed, 0, "scrubbed store dropped a read");
    assert!(
        control_failed > 0,
        "control never decayed: fault load too weak to demonstrate scrubbing"
    );
    out
}
