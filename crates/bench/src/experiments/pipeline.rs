//! Pipeline benchmark (`bench-pipeline`): where the wall-clock goes when
//! the *same* deterministic work fans out over threads.
//!
//! Two stages are measured, each single- vs multi-threaded on identical
//! inputs:
//!
//! * **Segment encode** — the client write path's per-segment
//!   [`LtCode::encode_block`] loop, both as a raw coding kernel
//!   ([`LtCode::encode_parallel`]) and end-to-end through
//!   [`robustore_core::Client::write`] with `SystemConfig::encode_threads`
//!   set to 1 vs the host default.
//! * **Trial fan-out** — [`run_trials_threaded`]'s per-trial simulation
//!   spread over worker threads.
//!
//! Both stages are deterministic by construction (slot-indexed seeds,
//! index-order aggregation), and this benchmark *asserts* that before
//! timing anything: a speedup that changed the answer would be a bug, not
//! a result. Rows go to `BENCH_pipeline.json` — schema
//! `{section, config, threads, value, unit, host}` — so EXPERIMENTS.md
//! claims are backed by same-host data.

use std::time::Instant;

use robustore_core::{
    default_encode_threads, AccessMode, Client, InMemoryBackend, QosOptions, System, SystemConfig,
};
use robustore_erasure::{LtCode, LtParams};
use robustore_schemes::{run_trials_threaded, AccessConfig, SchemeKind};
use robustore_simkit::report::Table;
use robustore_simkit::SeedSequence;

use crate::MASTER_SEED;

struct Row {
    section: &'static str,
    config: String,
    threads: usize,
    value: f64,
    unit: &'static str,
}

/// Run the pipeline benchmark. `--quick` (or `--trials 1`) shrinks data
/// sizes and trial counts for CI smoke runs.
pub fn bench_pipeline(trials: u64) -> String {
    let quick = trials <= 1;
    let reps = trials.clamp(1, 5);
    let n_threads = default_encode_threads().max(2);
    let mut rows: Vec<Row> = Vec::new();

    // --- Stage A1: raw segment encode (LtCode::encode_parallel) ---------
    let k = if quick { 64 } else { 256 };
    let block = if quick { 4 << 10 } else { 64 << 10 };
    let seq = SeedSequence::new(MASTER_SEED ^ 0x919E);
    let code = LtCode::plan(k, 3 * k, LtParams::default(), seq.seed_for("plan", 0))
        .expect("valid parameters");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..block).map(|j| ((i * 7 + j) % 256) as u8).collect())
        .collect();
    let mb = (k * block) as f64 / 1e6;
    let baseline = code.encode_parallel(&data, 1).expect("encode");
    for threads in [1usize, n_threads] {
        let mut best = 0f64;
        for _ in 0..reps {
            let t = Instant::now();
            let coded = code.encode_parallel(&data, threads).expect("encode");
            best = best.max(mb / t.elapsed().as_secs_f64());
            // Fan-out must never change the bytes.
            assert_eq!(
                coded, baseline,
                "parallel encode diverged at {threads} threads"
            );
        }
        rows.push(Row {
            section: "segment-encode",
            config: format!("lt k={k} block={}KiB", block >> 10),
            threads,
            value: best,
            unit: "MB/s",
        });
    }

    // --- Stage A2: end-to-end client write (encode_threads knob) --------
    let data_bytes = if quick { 1 << 20 } else { 16 << 20 };
    let payload: Vec<u8> = (0..data_bytes).map(|i| (i % 251) as u8).collect();
    let speeds: Vec<f64> = (0..8).map(|i| 40e6 + i as f64 * 10e6).collect();
    let mut decoded_digests: Vec<u64> = Vec::new();
    for threads in [1usize, n_threads] {
        let mut best = 0f64;
        for rep in 0..reps {
            let sys = System::new(
                InMemoryBackend::new(speeds.clone()),
                SystemConfig {
                    block_bytes: if quick { 16 << 10 } else { 64 << 10 },
                    encode_threads: threads,
                    ..Default::default()
                },
            );
            let user = sys.register_user();
            let client = Client::connect(&sys, user);
            let mut h = client
                .open(
                    "bench",
                    AccessMode::Write,
                    QosOptions::best_effort().with_redundancy(2.0),
                )
                .expect("open for write");
            let t = Instant::now();
            client.write(&mut h, &payload).expect("write");
            best = best.max(data_bytes as f64 / 1e6 / t.elapsed().as_secs_f64());
            client.close(h).expect("close");
            if rep == 0 {
                let h = client
                    .open("bench", AccessMode::Read, QosOptions::best_effort())
                    .expect("open for read");
                let got = client.read(&h).expect("read");
                assert_eq!(got, payload, "write at {threads} threads corrupted data");
                client.close(h).expect("close");
                decoded_digests.push(fnv(&got));
            }
        }
        rows.push(Row {
            section: "client-write",
            config: format!("{}MiB redundancy=2.0", data_bytes >> 20),
            threads,
            value: best,
            unit: "MB/s",
        });
    }
    assert!(
        decoded_digests.windows(2).all(|w| w[0] == w[1]),
        "decoded bytes depend on encode_threads"
    );

    // --- Stage B: trial fan-out (run_trials_threaded) -------------------
    let sim_trials: u64 = if quick { 4 } else { 24 };
    let mut cfg = AccessConfig::default().with_scheme(SchemeKind::RobuStore);
    if quick {
        cfg = cfg.with_disks(4);
        cfg.data_bytes = 8 << 20;
        cfg.cluster.num_disks = 8;
    }
    let base = run_trials_threaded(&cfg, sim_trials, MASTER_SEED, 1);
    for threads in [1usize, n_threads] {
        let mut best = 0f64;
        for _ in 0..reps.min(3) {
            let t = Instant::now();
            let stats = run_trials_threaded(&cfg, sim_trials, MASTER_SEED, threads);
            best = best.max(sim_trials as f64 / t.elapsed().as_secs_f64());
            // Byte-identical aggregation regardless of thread count.
            assert_eq!(
                stats.bandwidth.mean().to_bits(),
                base.bandwidth.mean().to_bits(),
                "trial aggregation diverged at {threads} threads"
            );
            assert_eq!(stats.failures, base.failures);
        }
        rows.push(Row {
            section: "trial-fanout",
            config: format!("robustore {sim_trials} trials"),
            threads,
            value: best,
            unit: "trials/s",
        });
    }

    // --- Report ---------------------------------------------------------
    let host = format!(
        "{}-{}-{}threads",
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"section\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
             \"value\": {:.2}, \"unit\": \"{}\", \"host\": \"{}\"}}{}\n",
            r.section,
            r.config,
            r.threads,
            r.value,
            r.unit,
            host,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_pipeline.json", &json) {
        Ok(()) => "rows written to BENCH_pipeline.json".to_string(),
        Err(e) => format!("could not write BENCH_pipeline.json: {e}"),
    };

    let mut table = Table::new(
        format!("Pipeline benchmark: single- vs multi-threaded stages ({host})"),
        &["section", "config", "threads", "throughput", "unit"],
    );
    for r in &rows {
        table.row(vec![
            r.section.into(),
            r.config.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.value),
            r.unit.into(),
        ]);
    }
    let mut out = table.render();
    let speedup = |section: &str| -> f64 {
        let of = |threads_one: bool| {
            rows.iter()
                .find(|r| r.section == section && (r.threads == 1) == threads_one)
                .map_or(f64::NAN, |r| r.value)
        };
        of(false) / of(true)
    };
    out.push_str(&format!(
        "\nSpeedup at {n_threads} threads (same inputs, outputs asserted identical):\n  \
         segment encode {:.1}x, client write {:.1}x, trial fan-out {:.1}x\n\
         All three stages are deterministic: thread count changes wall-clock only.\n{}\n",
        speedup("segment-encode"),
        speedup("client-write"),
        speedup("trial-fanout"),
        json_note
    ));
    out
}

/// Tiny FNV-1a digest — enough to compare decoded payloads across runs
/// without holding every copy.
fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}
