//! Pipeline benchmark (`bench-pipeline`): where the wall-clock goes when
//! the *same* deterministic work fans out over threads.
//!
//! Three stages are measured, each single- vs multi-threaded (or
//! barriered vs pipelined) on identical inputs:
//!
//! * **Segment encode** — the client write path's per-segment
//!   [`LtCode::encode_block`] loop, both as a raw coding kernel
//!   ([`LtCode::encode_parallel`]) and end-to-end through
//!   [`robustore_core::Client::write`] with `SystemConfig::encode_threads`
//!   set to 1 vs the host default.
//! * **Encode/I-O overlap** — the same client write against a backend
//!   with real per-block write latency, with `pipeline_depth` 0 (encode
//!   everything, then write: the old barrier) vs the default bounded
//!   pipeline that feeds the disk as blocks leave the encoder. The
//!   committed layout, generation parity, per-disk usage, and read-back
//!   bytes are asserted identical — the pipeline may only move
//!   wall-clock, never data. A matching simulator pair
//!   ([`AccessConfig::with_encode`]) records the same contrast at the
//!   paper's scale.
//! * **Concurrent client-write sweep** — 1/2/4/8 writer threads
//!   overwriting disjoint files through one system over a sharded delayed
//!   backend: per-disk shard locks let the disk sleeps overlap, so
//!   aggregate throughput scales with the writer count. A group-commit
//!   on/off A/B at a fixed writer count shows the dispatch-amortisation
//!   win. The committed state (layouts, generation parity, per-disk
//!   usage, read-back digests) is asserted byte-identical at every
//!   writer count and batch size.
//! * **I/O-ring read fan-out** — one client thread holding 8 read
//!   accesses in flight through `Client::read_many` over the async
//!   per-disk ring (`SystemConfig::io_ring`), against the blocking
//!   one-block-at-a-time oracle on a backend with real per-block read
//!   latency. A cancellation A/B records backend block reads actually
//!   serviced vs blocks stored: once a file decodes, its still-queued
//!   speculative reads are revoked before they cost disk time.
//! * **Trial fan-out** — [`run_trials_threaded`]'s per-trial simulation
//!   spread over worker threads.
//!
//! Both stages are deterministic by construction (slot-indexed seeds,
//! index-order aggregation), and this benchmark *asserts* that before
//! timing anything: a speedup that changed the answer would be a bug, not
//! a result. Rows go to `BENCH_pipeline.json` — schema
//! `{section, config, threads, value, unit, host}` — so EXPERIMENTS.md
//! claims are backed by same-host data.

use std::time::{Duration, Instant};

use robustore_core::{
    default_encode_threads, default_group_commit, default_pipeline_depth, AccessMode, Client,
    DiskShard, InMemoryBackend, QosOptions, RefusedWrite, StorageBackend, StoreError, System,
    SystemConfig,
};
use robustore_erasure::{LtCode, LtParams};
use robustore_schemes::{run_trials_threaded, AccessConfig, AccessKind, SchemeKind};
use robustore_simkit::report::Table;
use robustore_simkit::SeedSequence;

use crate::MASTER_SEED;

struct Row {
    section: &'static str,
    config: String,
    threads: usize,
    value: f64,
    unit: &'static str,
}

/// Run the pipeline benchmark. `--quick` (or `--trials 1`) shrinks data
/// sizes and trial counts for CI smoke runs.
pub fn bench_pipeline(trials: u64) -> String {
    let quick = trials <= 1;
    let reps = trials.clamp(1, 5);
    let n_threads = default_encode_threads().max(2);
    let mut rows: Vec<Row> = Vec::new();

    // --- Stage A1: raw segment encode (LtCode::encode_parallel) ---------
    let k = if quick { 64 } else { 256 };
    let block = if quick { 4 << 10 } else { 64 << 10 };
    let seq = SeedSequence::new(MASTER_SEED ^ 0x919E);
    let code = LtCode::plan(k, 3 * k, LtParams::default(), seq.seed_for("plan", 0))
        .expect("valid parameters");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..block).map(|j| ((i * 7 + j) % 256) as u8).collect())
        .collect();
    let mb = (k * block) as f64 / 1e6;
    let baseline = code.encode_parallel(&data, 1).expect("encode");
    for threads in [1usize, n_threads] {
        let mut best = 0f64;
        for _ in 0..reps {
            let t = Instant::now();
            let coded = code.encode_parallel(&data, threads).expect("encode");
            best = best.max(mb / t.elapsed().as_secs_f64());
            // Fan-out must never change the bytes.
            assert_eq!(
                coded, baseline,
                "parallel encode diverged at {threads} threads"
            );
        }
        rows.push(Row {
            section: "segment-encode",
            config: format!("lt k={k} block={}KiB", block >> 10),
            threads,
            value: best,
            unit: "MB/s",
        });
    }

    // --- Stage A2: end-to-end client write (encode_threads knob) --------
    let data_bytes = if quick { 1 << 20 } else { 16 << 20 };
    let payload: Vec<u8> = (0..data_bytes).map(|i| (i % 251) as u8).collect();
    let speeds: Vec<f64> = (0..8).map(|i| 40e6 + i as f64 * 10e6).collect();
    let mut decoded_digests: Vec<u64> = Vec::new();
    for threads in [1usize, n_threads] {
        let mut best = 0f64;
        for rep in 0..reps {
            let sys = System::new(
                InMemoryBackend::new(speeds.clone()),
                SystemConfig {
                    block_bytes: if quick { 16 << 10 } else { 64 << 10 },
                    encode_threads: threads,
                    ..Default::default()
                },
            );
            let user = sys.register_user();
            let client = Client::connect(&sys, user);
            let mut h = client
                .open(
                    "bench",
                    AccessMode::Write,
                    QosOptions::best_effort().with_redundancy(2.0),
                )
                .expect("open for write");
            let t = Instant::now();
            client.write(&mut h, &payload).expect("write");
            best = best.max(data_bytes as f64 / 1e6 / t.elapsed().as_secs_f64());
            client.close(h).expect("close");
            if rep == 0 {
                let h = client
                    .open("bench", AccessMode::Read, QosOptions::best_effort())
                    .expect("open for read");
                let got = client.read(&h).expect("read");
                assert_eq!(got, payload, "write at {threads} threads corrupted data");
                client.close(h).expect("close");
                decoded_digests.push(fnv(&got));
            }
        }
        rows.push(Row {
            section: "client-write",
            config: format!("{}MiB redundancy=2.0", data_bytes >> 20),
            threads,
            value: best,
            unit: "MB/s",
        });
    }
    assert!(
        decoded_digests.windows(2).all(|w| w[0] == w[1]),
        "decoded bytes depend on encode_threads"
    );

    // --- Stage A3: encode/disk-I/O overlap (pipeline_depth knob) --------
    // A backend that sleeps on every block write stands in for disk
    // latency. Barrier mode (depth 0) pays encode + I/O in sequence; the
    // bounded pipeline hides encode behind the writes. The committed
    // state must not notice which one ran.
    // 4 MiB over 256 KiB blocks: few enough blocks that per-block
    // synchronization stays marginal even on a single-core host, yet
    // each block's encode is heavy enough to hide behind the delay.
    let delay = Duration::from_micros(500);
    let a3_bytes: usize = 4 << 20;
    let a3_v1: Vec<u8> = (0..a3_bytes).map(|i| (i % 239) as u8).collect();
    let a3_v2: Vec<u8> = (0..a3_bytes).map(|i| ((i * 3 + 11) % 241) as u8).collect();
    // A few slots of slack keep the encoders busy through every disk
    // stall even when the host default (2x threads) is tiny.
    let depths = [0usize, default_pipeline_depth().max(8)];
    // What a committed write leaves behind: (layout, odd-parity ids,
    // read-back digest, per-disk bytes) — compared across depths.
    type CommittedState = (Vec<(usize, Vec<u32>)>, Vec<u32>, u64, Vec<u64>);
    let mut a3_rates = [0f64; 2];
    let mut a3_committed: Vec<CommittedState> = Vec::new();
    // Depths interleave within each rep (as bench-coding does with its
    // kernels) so host-speed drift cannot bias one configuration.
    for rep in 0..reps {
        for (slot, &depth) in depths.iter().enumerate() {
            let sys = System::with_backend(
                Box::new(DelayBackend::new(
                    InMemoryBackend::new(speeds.clone()),
                    delay,
                )),
                SystemConfig {
                    block_bytes: 256 << 10,
                    encode_threads: n_threads,
                    pipeline_depth: depth,
                    // One sleep per block, not per batch: this stage
                    // measures encode/I-O overlap, so the disk latency
                    // must stay per write.
                    group_commit: 1,
                    // Blocking dispatch: the ring's async flush would
                    // overlap disk writes even at depth 0, dissolving
                    // the barrier this stage exists to measure. Stage A5
                    // benchmarks the ring itself.
                    io_ring: false,
                    ..Default::default()
                },
            );
            let user = sys.register_user();
            let client = Client::connect(&sys, user);
            let qos = QosOptions::best_effort().with_redundancy(2.0);
            let t = Instant::now();
            // A fresh write and then a full overwrite, so both the plain
            // path and the commit/GC protocol run under the pipeline.
            for data in [&a3_v1, &a3_v2] {
                let mut h = client
                    .open("overlap", AccessMode::Write, qos.clone())
                    .expect("open for write");
                client.write(&mut h, data).expect("write");
                client.close(h).expect("close");
            }
            a3_rates[slot] =
                a3_rates[slot].max(2.0 * a3_bytes as f64 / 1e6 / t.elapsed().as_secs_f64());
            if rep == 0 {
                let h = client
                    .open("overlap", AccessMode::Read, QosOptions::best_effort())
                    .expect("open for read");
                let got = client.read(&h).expect("read");
                client.close(h).expect("close");
                assert_eq!(
                    got, a3_v2,
                    "pipelined overwrite corrupted data (depth {depth})"
                );
                let meta = sys.export_meta("overlap").expect("committed meta");
                let used: Vec<u64> = (0..speeds.len()).map(|d| sys.disk_used(d)).collect();
                a3_committed.push((
                    meta.layout.clone(),
                    meta.odd_keys.iter().copied().collect(),
                    fnv(&got),
                    used,
                ));
            }
        }
    }
    for (slot, &depth) in depths.iter().enumerate() {
        rows.push(Row {
            section: "overlapped-write",
            config: format!(
                "{}MiB x2 delay={}us depth={depth}",
                a3_bytes >> 20,
                delay.as_micros()
            ),
            threads: n_threads,
            value: a3_rates[slot],
            unit: "MB/s",
        });
    }
    // Byte-identity is the contract: layout, generation parity, read-back
    // digest, and per-disk usage all match across pipeline depths.
    assert!(
        a3_committed.windows(2).all(|w| w[0] == w[1]),
        "pipelined write committed different state than the barrier"
    );

    // The same contrast in the simulator, at paper block sizes: encode
    // charged at 400 MB/s, barriered vs streamed into the disk writes.
    let sim_write = {
        let mut c = AccessConfig::default()
            .with_scheme(SchemeKind::RobuStore)
            .with_kind(AccessKind::Write)
            .with_disks(if quick { 4 } else { 16 });
        if quick {
            c.data_bytes = 8 << 20;
            c.cluster.num_disks = 8;
        }
        c
    };
    let sim_n = if quick { 4 } else { 16 };
    for (label, barrier) in [("barrier", true), ("stream", false)] {
        let cfg = sim_write.clone().with_encode(400e6, barrier);
        let stats = run_trials_threaded(&cfg, sim_n, MASTER_SEED, n_threads);
        rows.push(Row {
            section: "sim-encode-model",
            config: format!("robustore write {label}"),
            threads: 1,
            value: stats.mean_bandwidth_mbps(),
            unit: "MB/s",
        });
    }

    // --- Stage A4: concurrent client-write sweep (sharded backend) ------
    // N writer threads overwrite disjoint file subsets through one system
    // over the same delayed backend. With per-disk shard locks the
    // per-block disk sleeps overlap across writers, so aggregate
    // throughput scales with the writer count until the disks themselves
    // are busy — the per-disk-queue regime the sharded submission layer
    // exists for. Layouts are pinned and the job order rotated per file,
    // so the committed state is a pure function of the data: asserted
    // identical at every thread count and with group commit on or off.
    let sweep_files = 8usize;
    let sweep_bytes: usize = if quick { 64 << 10 } else { 256 << 10 };
    let sweep_payload = |file: usize, version: usize| -> Vec<u8> {
        (0..sweep_bytes)
            .map(|i| ((i * 13 + file * 31 + version * 97) % 251) as u8)
            .collect()
    };
    // Committed state: per-disk usage plus each file's (layout,
    // odd-parity ids, read-back digest).
    type SweepState = (Vec<u64>, Vec<(Vec<(usize, Vec<u32>)>, Vec<u32>, u64)>);
    let concurrent_sweep = |writers: usize, group_commit: usize| -> (f64, SweepState) {
        let sys = System::with_backend(
            Box::new(DelayBackend::new(InMemoryBackend::uniform(8, 50e6), delay)),
            SystemConfig {
                block_bytes: 16 << 10,
                encode_threads: 1,
                pipeline_depth: 4,
                admission_capacity: 64,
                group_commit,
                // Blocking dispatch: this stage measures the per-disk
                // shard locks and group commit in isolation; the ring's
                // own contrast is stage A5.
                io_ring: false,
                ..Default::default()
            },
        );
        assert!(sys.is_sharded(), "in-memory backend should shard");
        let qos = QosOptions::best_effort()
            .with_pinned_disks((0..8).collect())
            .with_redundancy(2.0);
        let user = sys.register_user();
        let client = Client::connect(&sys, user);
        // Pre-create serially so file ids — and with them the committed
        // layouts — never depend on writer interleaving.
        for f in 0..sweep_files {
            let mut h = client
                .open(&format!("sweep-{f}"), AccessMode::Write, qos.clone())
                .expect("open for pre-create");
            client
                .write(&mut h, &sweep_payload(f, 1))
                .expect("pre-create");
            client.close(h).expect("close");
        }
        // Timed phase: every file overwritten once, split across writers.
        let t = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..writers {
                let sys = sys.clone();
                let qos = qos.clone();
                let sweep_payload = &sweep_payload;
                scope.spawn(move || {
                    let c = Client::connect(&sys, user);
                    let mut f = w;
                    while f < sweep_files {
                        let mut h = c
                            .open(&format!("sweep-{f}"), AccessMode::Write, qos.clone())
                            .expect("open for overwrite");
                        c.write(&mut h, &sweep_payload(f, 2)).expect("overwrite");
                        c.close(h).expect("close");
                        f += writers;
                    }
                });
            }
        });
        let rate = (sweep_files * sweep_bytes) as f64 / 1e6 / t.elapsed().as_secs_f64();
        let mut per_file = Vec::new();
        for f in 0..sweep_files {
            let name = format!("sweep-{f}");
            let h = client
                .open(&name, AccessMode::Read, QosOptions::best_effort())
                .expect("open for read");
            let got = client.read(&h).expect("read");
            client.close(h).expect("close");
            assert_eq!(
                got,
                sweep_payload(f, 2),
                "concurrent overwrite corrupted {name}"
            );
            let meta = sys.export_meta(&name).expect("committed meta");
            let mut odd: Vec<u32> = meta.odd_keys.iter().copied().collect();
            odd.sort_unstable();
            per_file.push((meta.layout.clone(), odd, fnv(&got)));
        }
        assert_eq!(sys.pool_outstanding_bytes(), 0, "leaked pooled buffers");
        let used: Vec<u64> = (0..8).map(|d| sys.disk_used(d)).collect();
        (rate, (used, per_file))
    };

    let sweep_threads = [1usize, 2, 4, 8];
    let gc_batches = [1usize, default_group_commit().max(2)];
    let mut sweep_rates = [0f64; 4];
    let mut gc_rates = [0f64; 2];
    let mut sweep_states: Vec<SweepState> = Vec::new();
    for rep in 0..reps.min(3) {
        for (slot, &writers) in sweep_threads.iter().enumerate() {
            let (rate, state) = concurrent_sweep(writers, 1);
            sweep_rates[slot] = sweep_rates[slot].max(rate);
            if rep == 0 {
                sweep_states.push(state);
            }
        }
        // Group commit on/off at a fixed writer count: one dispatch
        // (one DelayShard sleep) per same-disk run instead of per block.
        for (slot, &batch) in gc_batches.iter().enumerate() {
            let (rate, state) = concurrent_sweep(4, batch);
            gc_rates[slot] = gc_rates[slot].max(rate);
            if rep == 0 {
                sweep_states.push(state);
            }
        }
    }
    // The whole point: concurrency and batching change wall-clock only.
    assert!(
        sweep_states.windows(2).all(|w| w[0] == w[1]),
        "committed state depends on writer count or group commit"
    );
    for (slot, &writers) in sweep_threads.iter().enumerate() {
        rows.push(Row {
            section: "client-write-sweep",
            config: format!(
                "{sweep_files}x{}KiB delay={}us batch=1",
                sweep_bytes >> 10,
                delay.as_micros()
            ),
            threads: writers,
            value: sweep_rates[slot],
            unit: "MB/s",
        });
    }
    for (slot, &batch) in gc_batches.iter().enumerate() {
        rows.push(Row {
            section: "group-commit",
            config: format!(
                "{sweep_files}x{}KiB delay={}us batch={batch}",
                sweep_bytes >> 10,
                delay.as_micros()
            ),
            threads: 4,
            value: gc_rates[slot],
            unit: "MB/s",
        });
    }
    let sweep_scaling = sweep_rates[3] / sweep_rates[0];
    if !quick {
        // Soft floor so host noise can't flake CI; BENCH_pipeline.json
        // records the full curve.
        assert!(
            sweep_scaling >= 2.0,
            "sharded write scaling collapsed: {sweep_scaling:.2}x at 8 writers"
        );
    }

    // --- Stage A5: io-ring open-loop reads + speculative cancellation ---
    // One client thread holds 8 read accesses in flight over a backend
    // with real per-block read latency. The blocking oracle serves them
    // one block at a time; the ring fans the per-disk queues out to
    // workers, so the disk sleeps overlap across accesses — and once a
    // file decodes, its still-queued reads are revoked before service,
    // which shows up as fewer backend block reads than blocks stored.
    let ring_files = 8usize;
    let ring_bytes: usize = if quick { 64 << 10 } else { 256 << 10 };
    let read_delay = Duration::from_micros(400);
    let ring_payload = |f: usize| -> Vec<u8> {
        (0..ring_bytes)
            .map(|i| ((i * 17 + f * 53) % 251) as u8)
            .collect()
    };
    // Committed write state: per-disk usage plus each file's (layout,
    // odd-parity ids) — the ring and blocking setups must agree before
    // their reads are comparable.
    type RingState = (Vec<u64>, Vec<(Vec<(usize, Vec<u32>)>, Vec<u32>)>);
    let ring_setup = |io_ring: bool| -> (System, Client, RingState) {
        let sys = System::with_backend(
            Box::new(DelayBackend::with_read_delay(
                InMemoryBackend::uniform(8, 50e6),
                read_delay,
            )),
            SystemConfig {
                block_bytes: 16 << 10,
                encode_threads: 1,
                pipeline_depth: 4,
                io_ring,
                ..Default::default()
            },
        );
        assert_eq!(sys.uses_io_ring(), io_ring);
        let client = Client::connect(&sys, sys.register_user());
        // 3x redundancy so speculative cancellation has stored blocks
        // left to revoke once the decoder completes.
        let qos = QosOptions::best_effort().with_redundancy(3.0);
        for f in 0..ring_files {
            let mut h = client
                .open(&format!("ring-{f}"), AccessMode::Write, qos.clone())
                .expect("open for write");
            client.write(&mut h, &ring_payload(f)).expect("write");
            client.close(h).expect("close");
        }
        let mut per_file = Vec::new();
        for f in 0..ring_files {
            let meta = sys.export_meta(&format!("ring-{f}")).expect("meta");
            let mut odd: Vec<u32> = meta.odd_keys.iter().copied().collect();
            odd.sort_unstable();
            per_file.push((meta.layout.clone(), odd));
        }
        let used = (0..8).map(|d| sys.disk_used(d)).collect();
        (sys, client, (used, per_file))
    };
    let (ring_sys, ring_client, ring_written) = ring_setup(true);
    let (block_sys, block_client, block_written) = ring_setup(false);
    assert_eq!(
        ring_written, block_written,
        "io-ring write path committed different state than blocking"
    );
    let stored_total: usize = (0..ring_files)
        .map(|f| {
            ring_sys
                .export_meta(&format!("ring-{f}"))
                .expect("meta")
                .stored_blocks()
        })
        .sum();
    let names: Vec<String> = (0..ring_files).map(|f| format!("ring-{f}")).collect();
    let mut ring_rate = 0f64;
    let mut block_rate = 0f64;
    let mut serviced = [0u64; 2]; // rep-0 backend block reads: [ring, blocking]
    for rep in 0..reps.min(3) {
        // Ring: one thread, every access in flight through read_many.
        let handles: Vec<_> = names
            .iter()
            .map(|n| {
                ring_client
                    .open(n, AccessMode::Read, QosOptions::best_effort())
                    .expect("open for read")
            })
            .collect();
        let handle_refs: Vec<_> = handles.iter().collect();
        let before = ring_sys.backend_stats().0;
        let t = Instant::now();
        let results = ring_client.read_many(&handle_refs);
        let elapsed = t.elapsed().as_secs_f64();
        if rep == 0 {
            serviced[0] = ring_sys.backend_stats().0 - before;
        }
        for (f, r) in results.into_iter().enumerate() {
            let (got, _) = r.expect("ring read");
            assert_eq!(got, ring_payload(f), "ring read corrupted ring-{f}");
        }
        for h in handles {
            ring_client.close(h).expect("close");
        }
        ring_rate = ring_rate.max((ring_files * ring_bytes) as f64 / 1e6 / elapsed);

        // Blocking oracle: the same accesses served one block at a time
        // (decoded bytes verified outside the timed region).
        let before = block_sys.backend_stats().0;
        let t = Instant::now();
        let mut decoded = Vec::new();
        for n in &names {
            let h = block_client
                .open(n, AccessMode::Read, QosOptions::best_effort())
                .expect("open for read");
            decoded.push(block_client.read(&h).expect("read"));
            block_client.close(h).expect("close");
        }
        let elapsed = t.elapsed().as_secs_f64();
        if rep == 0 {
            serviced[1] = block_sys.backend_stats().0 - before;
        }
        for (f, got) in decoded.into_iter().enumerate() {
            assert_eq!(got, ring_payload(f), "blocking read corrupted ring-{f}");
        }
        block_rate = block_rate.max((ring_files * ring_bytes) as f64 / 1e6 / elapsed);
    }
    assert_eq!(ring_sys.pool_outstanding_bytes(), 0, "ring reads leaked");
    assert_eq!(
        block_sys.pool_outstanding_bytes(),
        0,
        "blocking reads leaked"
    );
    for (config, rate) in [("ring", ring_rate), ("blocking", block_rate)] {
        rows.push(Row {
            section: "io-ring",
            config: format!(
                "{ring_files}x{}KiB rdelay={}us {config}",
                ring_bytes >> 10,
                read_delay.as_micros()
            ),
            threads: ring_files,
            value: rate,
            unit: "MB/s",
        });
    }
    let reclaimed_ms = (stored_total as f64 - serviced[0] as f64) * read_delay.as_secs_f64() * 1e3;
    for (config, value, unit) in [
        ("serviced reads ring", serviced[0] as f64, "blocks"),
        ("serviced reads blocking", serviced[1] as f64, "blocks"),
        ("blocks stored", stored_total as f64, "blocks"),
        ("disk time reclaimed", reclaimed_ms, "ms"),
    ] {
        rows.push(Row {
            section: "io-ring-cancel",
            config: config.into(),
            threads: ring_files,
            value,
            unit,
        });
    }
    let ring_speedup = ring_rate / block_rate;
    if !quick {
        // The acceptance bar for the ring: with decoded output already
        // asserted byte-identical, fewer disk ops serviced than stored
        // (cancellation-at-the-queue reclaims real disk time)...
        assert!(
            (serviced[0] as usize) < stored_total,
            "cancellation reclaimed nothing: {} reads serviced, {stored_total} stored",
            serviced[0]
        );
        // ...and at least 1.5x read throughput at 8 concurrent accesses
        // on one client thread (soft floor; the JSON records the curve).
        assert!(
            ring_speedup >= 1.5,
            "io-ring read fan-out collapsed: {ring_speedup:.2}x at {ring_files} accesses"
        );
    }

    // --- Stage B: trial fan-out (run_trials_threaded) -------------------
    let sim_trials: u64 = if quick { 4 } else { 24 };
    let mut cfg = AccessConfig::default().with_scheme(SchemeKind::RobuStore);
    if quick {
        cfg = cfg.with_disks(4);
        cfg.data_bytes = 8 << 20;
        cfg.cluster.num_disks = 8;
    }
    let base = run_trials_threaded(&cfg, sim_trials, MASTER_SEED, 1);
    for threads in [1usize, n_threads] {
        let mut best = 0f64;
        for _ in 0..reps.min(3) {
            let t = Instant::now();
            let stats = run_trials_threaded(&cfg, sim_trials, MASTER_SEED, threads);
            best = best.max(sim_trials as f64 / t.elapsed().as_secs_f64());
            // Byte-identical aggregation regardless of thread count.
            assert_eq!(
                stats.bandwidth.mean().to_bits(),
                base.bandwidth.mean().to_bits(),
                "trial aggregation diverged at {threads} threads"
            );
            assert_eq!(stats.failures, base.failures);
        }
        rows.push(Row {
            section: "trial-fanout",
            config: format!("robustore {sim_trials} trials"),
            threads,
            value: best,
            unit: "trials/s",
        });
    }

    // --- Report ---------------------------------------------------------
    let host = format!(
        "{}-{}-{}threads",
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"section\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
             \"value\": {:.2}, \"unit\": \"{}\", \"host\": \"{}\"}}{}\n",
            r.section,
            r.config,
            r.threads,
            r.value,
            r.unit,
            host,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_pipeline.json", &json) {
        Ok(()) => "rows written to BENCH_pipeline.json".to_string(),
        Err(e) => format!("could not write BENCH_pipeline.json: {e}"),
    };

    let mut table = Table::new(
        format!("Pipeline benchmark: single- vs multi-threaded stages ({host})"),
        &["section", "config", "threads", "throughput", "unit"],
    );
    for r in &rows {
        table.row(vec![
            r.section.into(),
            r.config.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.value),
            r.unit.into(),
        ]);
    }
    let mut out = table.render();
    let speedup = |section: &str| -> f64 {
        let of = |threads_one: bool| {
            rows.iter()
                .find(|r| r.section == section && (r.threads == 1) == threads_one)
                .map_or(f64::NAN, |r| r.value)
        };
        of(false) / of(true)
    };
    let sim_of = |needle: &str| {
        rows.iter()
            .find(|r| r.section == "sim-encode-model" && r.config.contains(needle))
            .map_or(f64::NAN, |r| r.value)
    };
    out.push_str(&format!(
        "\nSpeedup at {n_threads} threads (same inputs, outputs asserted identical):\n  \
         segment encode {:.1}x, client write {:.1}x, trial fan-out {:.1}x\n  \
         encode/I-O overlap: pipelined write {:.2}x over the encode barrier \
         (wall-clock, core-count-bound);\n  \
         simulated at paper scale (deterministic): streamed encode {:.2}x over \
         the barrier\n  \
         sharded backend: concurrent client write {:.2}x from 1 to 8 writers, \
         group commit {:.2}x at 4 writers\n  \
         io ring: open-loop read {:.2}x over blocking at {ring_files} accesses \
         on one thread; cancellation serviced {} of {} stored block reads \
         ({:.1}ms disk time reclaimed)\n\
         All stages are deterministic: thread count, pipeline depth, writer \
         count, group commit, and the io ring change wall-clock only.\n{}\n",
        speedup("segment-encode"),
        speedup("client-write"),
        speedup("trial-fanout"),
        a3_rates[1] / a3_rates[0],
        sim_of("stream") / sim_of("barrier"),
        sweep_scaling,
        gc_rates[1] / gc_rates[0],
        ring_speedup,
        serviced[0],
        stored_total,
        reclaimed_ms,
        json_note
    ));
    out
}

/// An [`InMemoryBackend`] that sleeps on block writes and/or reads — a
/// stand-in for real disk latency, so the encode/I-O overlap of the
/// pipelined write path and the access fan-out of the I/O ring show up
/// in wall-clock terms instead of vanishing into memcpy speed.
struct DelayBackend {
    inner: InMemoryBackend,
    write_delay: Duration,
    read_delay: Duration,
}

impl DelayBackend {
    fn new(inner: InMemoryBackend, write_delay: Duration) -> Self {
        DelayBackend {
            inner,
            write_delay,
            read_delay: Duration::ZERO,
        }
    }

    fn with_read_delay(inner: InMemoryBackend, read_delay: Duration) -> Self {
        DelayBackend {
            inner,
            write_delay: Duration::ZERO,
            read_delay,
        }
    }
}

/// Sleep helper that skips the syscall entirely at zero.
fn maybe_sleep(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

impl StorageBackend for DelayBackend {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        maybe_sleep(self.write_delay);
        self.inner.write_block(disk, block, data)
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        maybe_sleep(self.read_delay);
        self.inner.read_block(disk, block)
    }

    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        maybe_sleep(self.read_delay);
        self.inner.read_block_into(disk, block, buf)
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(disk, block)
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.inner.disk_speed(disk)
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.inner.disk_used(disk)
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn commit_batch(
        &mut self,
        disk: usize,
        batch: Vec<(u64, Vec<u8>)>,
    ) -> Vec<Result<(), RefusedWrite>> {
        // One sleep per dispatch, same device model as the sharded path.
        maybe_sleep(self.write_delay);
        self.inner.commit_batch(disk, batch)
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        let write_delay = self.write_delay;
        let read_delay = self.read_delay;
        self.inner.try_shard().map(|shards| {
            shards
                .into_iter()
                .map(|inner| {
                    Box::new(DelayShard {
                        inner,
                        write_delay,
                        read_delay,
                    }) as Box<dyn DiskShard>
                })
                .collect()
        })
    }
}

/// Per-disk shard of a [`DelayBackend`]: the block-write sleep moves into
/// the shard (still under the shard lock, so one disk stays serial) and
/// [`DiskShard::commit_batch`] sleeps **once per dispatch** before
/// delegating — the queue-flush amortisation that gives group commit
/// something real to win.
struct DelayShard {
    inner: Box<dyn DiskShard>,
    write_delay: Duration,
    read_delay: Duration,
}

impl DiskShard for DelayShard {
    fn disk_id(&self) -> usize {
        self.inner.disk_id()
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        maybe_sleep(self.write_delay);
        self.inner.write_block(block, data)
    }

    fn commit_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Result<(), RefusedWrite>> {
        maybe_sleep(self.write_delay);
        self.inner.commit_batch(batch)
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        maybe_sleep(self.read_delay);
        self.inner.read_block_into(block, buf)
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(block)
    }

    fn speed(&self) -> f64 {
        self.inner.speed()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

/// Tiny FNV-1a digest — enough to compare decoded payloads across runs
/// without holding every copy.
fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}
