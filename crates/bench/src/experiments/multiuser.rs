//! Multi-user workload experiment (§7.3 future work).
//!
//! M clients read independently-striped 1 GB segments from the same 128
//! disks at once. Reported per point: mean per-client latency, fairness
//! (stdev of latency *across clients*, averaged over trials), and
//! whole-system throughput — the quantity §7.3 says a multi-user model
//! would unlock.

use robustore_schemes::{run_concurrent_reads, AccessConfig, MultiConfig, SchemeKind};
use robustore_simkit::report::Table;
use robustore_simkit::{OnlineStats, SeedSequence, SimDuration};

use crate::MASTER_SEED;

/// System throughput and fairness vs number of concurrent clients.
pub fn multiuser(trials: u64) -> String {
    let seq = SeedSequence::new(MASTER_SEED ^ 0x3057);
    let mut table = Table::new(
        "Multi-user reads: concurrent 1 GB clients on one 128-disk system",
        &[
            "clients",
            "scheme",
            "per-client lat (s)",
            "fairness stdev (s)",
            "system throughput (MB/s)",
        ],
    );
    let trials = trials.clamp(1, 15);
    for clients in [1usize, 2, 4, 8] {
        for scheme in [SchemeKind::Raid0, SchemeKind::RraidS, SchemeKind::RobuStore] {
            let mut lat = OnlineStats::new();
            let mut fairness = OnlineStats::new();
            let mut throughput = OnlineStats::new();
            for t in 0..trials {
                let cfg = MultiConfig {
                    base: AccessConfig::default().with_scheme(scheme),
                    clients,
                    stagger: SimDuration::ZERO,
                };
                let m = run_concurrent_reads(
                    &cfg,
                    &seq.subsequence("trial", (clients as u64) << 32 | (scheme as u64) << 16 | t),
                );
                let per: OnlineStats = m
                    .per_client
                    .iter()
                    .map(|o| o.latency.as_secs_f64())
                    .collect();
                lat.push(per.mean());
                fairness.push(per.stdev());
                throughput.push(m.system_throughput / 1e6);
            }
            table.row(vec![
                clients.to_string(),
                scheme.name().to_string(),
                format!("{:.2}", lat.mean()),
                format!("{:.3}", fairness.mean()),
                format!("{:.1}", throughput.mean()),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nExpectation: per-client latency grows with contention (interleaved streams cost \
         seeks) while system throughput rises sub-linearly; RobuSTore sustains the highest \
         aggregate throughput because each client completes from whichever disks are fast \
         *for it* at that moment. RRAID-A is omitted (unsupported by the multi-user \
         coordinator).\n",
    );
    out
}
