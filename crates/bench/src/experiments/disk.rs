//! Disk-substrate experiments: Table 6-1 and Figure 6-5.

use robustore_diskmodel::background::{BackgroundLoad, MAX_BACKLOG};
use robustore_diskmodel::calibration::{grid_average, table_grid};
use robustore_diskmodel::request::{Direction, DiskRequest, RequestId, StreamId};
use robustore_diskmodel::{Disk, DiskGeometry, LayoutConfig};
use robustore_simkit::report::Table;
use robustore_simkit::{EventQueue, OnlineStats, SeedSequence, SimDuration, SimTime};

use crate::MASTER_SEED;

/// Table 6-1: average disk bandwidth for every (blocking factor,
/// sequential-probability) layout configuration.
pub fn table6_1(trials: u64) -> String {
    let geometry = DiskGeometry::default();
    let cells = table_grid(&geometry, 64 << 20, trials.clamp(1, 10));
    let mut table = Table::new(
        "Table 6-1: average disk bandwidth (MB/s) per in-disk layout configuration",
        &[
            "seq prob \\ blocking factor",
            "8",
            "16",
            "32",
            "64",
            "128",
            "256",
            "512",
            "1024",
        ],
    );
    for &p in &[0.0, 1.0] {
        let mut row = vec![format!("{p}")];
        for c in cells.iter().filter(|c| c.seq_prob == p) {
            row.push(format!("{:.2}", c.bandwidth / 1e6));
        }
        table.row(row);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\ngrid average: {:.1} MB/s (paper: 14.9 MB/s; paper row p=0: 0.52-21.4, p=1: 3.6-53)\n",
        grid_average(&cells) / 1e6
    ));
    out
}

/// Figure 6-5: disk utilisation by the background workload and foreground
/// access bandwidth as the background request interval varies 6–200 ms.
///
/// One disk with a good (sequential) layout runs a closed-loop foreground
/// stream of 1 MB reads while the background generator injects ~25 KB
/// random requests at the given mean interval.
pub fn fig6_5(trials: u64) -> String {
    let mut table = Table::new(
        "Figure 6-5: background interval vs disk utilisation and foreground bandwidth",
        &["interval (ms)", "bg utilisation", "fg bandwidth (MB/s)"],
    );
    let seq = SeedSequence::new(MASTER_SEED ^ 0x65);
    for (i, &interval_ms) in [6u64, 12, 25, 50, 100, 200].iter().enumerate() {
        let mut util = OnlineStats::new();
        let mut fg_bw = OnlineStats::new();
        for t in 0..trials.clamp(1, 20) {
            let cell = seq.subsequence("cell", (i as u64) << 32 | t);
            let (u, bw) = background_duel(SimDuration::from_millis(interval_ms), &cell);
            util.push(u);
            fg_bw.push(bw / 1e6);
        }
        table.row(vec![
            interval_ms.to_string(),
            format!("{:.0}%", util.mean() * 100.0),
            format!("{:.1}", fg_bw.mean()),
        ]);
    }
    let mut out = table.render();
    out.push_str("\nPaper: 93% utilisation at 6 ms with 2.2 MB/s foreground; ~43 MB/s foreground at 200 ms.\n");
    out
}

/// Simulate 60 virtual seconds of one disk shared between a closed-loop
/// foreground reader and a background generator; returns (background
/// utilisation, foreground bandwidth in bytes/s).
fn background_duel(interval: SimDuration, seq: &SeedSequence) -> (f64, f64) {
    const HORIZON_SECS: u64 = 60;
    const FG_SECTORS: u64 = 2048; // 1 MB

    enum Ev {
        Bg,
        Done,
    }
    let horizon = SimTime::ZERO + SimDuration::from_secs(HORIZON_SECS);
    let mut disk = Disk::new(
        0,
        DiskGeometry::default(),
        LayoutConfig::grid_point(1024, 1.0),
        seq.fork("disk", 0),
    );
    let mut bg = BackgroundLoad::new(interval, seq.fork("bg", 0));
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut next_id = 0u64;
    let mut fg_bytes = 0u64;
    let mut bg_busy = SimDuration::ZERO;

    let fg_request = |id: u64| DiskRequest {
        id: RequestId(id),
        stream: StreamId::Foreground(0),
        direction: Direction::Read,
        sectors: FG_SECTORS,
        tag: 0,
    };

    // Seed: one foreground request in flight, first background arrival.
    next_id += 1;
    let t = disk
        .submit(SimTime::ZERO, fg_request(next_id))
        .expect("idle disk");
    q.schedule(t, Ev::Done);
    q.schedule(bg.next_arrival(SimTime::ZERO), Ev::Bg);

    while let Some((now, ev)) = q.pop() {
        if now > horizon {
            break;
        }
        match ev {
            Ev::Bg => {
                if disk.queued_background() < MAX_BACKLOG {
                    next_id += 1;
                    let req = bg.make_request(RequestId(next_id));
                    if let Some(t) = disk.submit(now, req) {
                        q.schedule(t, Ev::Done);
                    }
                }
                q.schedule(bg.next_arrival(now), Ev::Bg);
            }
            Ev::Done => {
                let (done, next) = disk.on_complete(now);
                if let Some(t) = next {
                    q.schedule(t, Ev::Done);
                }
                match done.request.stream {
                    StreamId::Foreground(_) => {
                        fg_bytes += done.bytes();
                        // Closed loop: immediately issue the next read.
                        next_id += 1;
                        if let Some(t) = disk.submit(now, fg_request(next_id)) {
                            q.schedule(t, Ev::Done);
                        }
                    }
                    StreamId::Background => bg_busy += done.service_time,
                }
            }
        }
    }
    (
        bg_busy.as_secs_f64() / HORIZON_SECS as f64,
        fg_bytes as f64 / HORIZON_SECS as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_falls_with_interval() {
        let seq = SeedSequence::new(1);
        let (u_heavy, bw_heavy) = background_duel(SimDuration::from_millis(6), &seq);
        let (u_light, bw_light) = background_duel(SimDuration::from_millis(200), &seq);
        assert!(
            u_heavy > 0.7,
            "6 ms interval should near-saturate: {u_heavy}"
        );
        assert!(u_light < 0.3, "200 ms interval should be light: {u_light}");
        assert!(
            bw_light > 4.0 * bw_heavy,
            "foreground must recover as load lightens: {bw_heavy} vs {bw_light}"
        );
    }

    #[test]
    fn foreground_survives_saturation() {
        // The backlog cap guarantees the foreground still makes progress.
        let seq = SeedSequence::new(2);
        let (_, bw) = background_duel(SimDuration::from_millis(6), &seq);
        assert!(bw > 0.2e6, "foreground starved: {bw}");
    }
}
