//! §6.3.3 experiment: performance variation from filesystem caching
//! (Figures 6-35/6-36).
//!
//! The paper runs the baseline configuration with random competitive
//! workloads and 2 GB filer caches, comparing read performance against the
//! uncached system. Caches only pay off when a read finds data a previous
//! access left behind, so each trial reads the same segment twice on one
//! cluster: the *cold* pass fills the caches, the *warm* pass is the
//! cached measurement.

use robustore_cluster::BackgroundPolicy;
use robustore_schemes::runner::run_read_cold_warm;
use robustore_schemes::{AccessConfig, SchemeKind, TrialStats};
use robustore_simkit::report::Table;
use robustore_simkit::SeedSequence;

use super::{metric_header, metric_row};
use crate::MASTER_SEED;

/// Figures 6-35/6-36: cache impact on access bandwidth and latency
/// variation.
pub fn fig6_35(trials: u64) -> String {
    let header = metric_header("configuration");
    let mut table = Table::new(
        "Figures 6-35/6-36: filesystem-cache impact on repeated 1 GB reads",
        &header,
    );
    let seq = SeedSequence::new(MASTER_SEED ^ 0x635);
    for scheme in SchemeKind::ALL {
        for (label, cache) in [("no cache", None), ("2 GB filer caches", Some(2u64 << 30))] {
            let mut cfg = AccessConfig::default().with_scheme(scheme);
            cfg.background = BackgroundPolicy::Heterogeneous;
            cfg.cluster.cache_bytes = cache;
            let mut warm_stats = TrialStats::new();
            for t in 0..trials {
                let cell = seq.subsequence(label, (scheme as u64) << 32 | t);
                let (_cold, warm) = run_read_cold_warm(&cfg, &cell);
                warm_stats.push(&warm);
            }
            metric_row(&mut table, label.into(), scheme.name(), &warm_stats);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper: caching raises bandwidth for all four schemes but *increases* latency \
         variation; RobuSTore remains best on both axes. (Rows are the warm pass of a \
         read-after-read; the cold pass fills the caches.)\n",
    );
    out
}
