//! Tail-latency harness (`tail`): open-loop Poisson reads against the
//! I/O ring, static vs queue-aware adaptive wave policy.
//!
//! The setup is the one the adaptive policy exists for: disks whose
//! *nominal* speeds are identical but whose *actual* service times are
//! not — one straggler disk is an order of magnitude slower than its
//! registered speed suggests, the way a remote filer degrades under
//! someone else's load. The static policy cannot see this: its virtual
//! arrival order round-robins over all disks, completions are consumed
//! in tag order, and every access's decode point waits behind the
//! straggler's queue (head-of-line blocking). The adaptive policy reads
//! the same nominal speeds but also the live [`robustore_core::DiskLoadMap`]
//! — EWMA service latency and queue backlog — so it orders the
//! straggler's blocks last and decodes from the fast disks' first wave.
//!
//! The harness is **open-loop**: arrivals are a Poisson process whose
//! rate sweeps 50–95% of measured aggregate service capacity, submitted
//! as microsecond offsets to [`robustore_core::Client::read_many_with`] — so
//! queueing delay compounds instead of being absorbed by a closed
//! loop's back-pressure (the coordinated-omission trap). Per-access
//! latencies go into an HDR-style [`LogHistogram`]; p50/p99/p999 per
//! (utilisation, policy), serviced-block counts, and mean wave counts
//! go to `BENCH_tail.json` — schema
//! `{section, config, threads, value, unit, host}`, matching
//! `BENCH_pipeline.json`.
//!
//! Decoded bytes are asserted byte-identical between the two policies
//! at every utilisation (FNV digests per access): the policy may move
//! wall-clock, never data. Non-quick runs also assert the headline
//! claim — adaptive p99 ≤ 0.75× static p99 at ≥90% utilisation.

use std::time::{Duration, Instant};

use robustore_core::{
    AccessMode, Client, DiskShard, InMemoryBackend, QosOptions, ReadPolicy, RefusedWrite,
    StorageBackend, StoreError, System, SystemConfig,
};
use robustore_simkit::report::Table;
use robustore_simkit::rng::exponential;
use robustore_simkit::{LogHistogram, SeedSequence};

use crate::MASTER_SEED;

const DISKS: usize = 8;
const STRAGGLER: usize = 2;

struct Row {
    section: &'static str,
    config: String,
    threads: usize,
    value: f64,
    unit: &'static str,
}

/// One policy run at one utilisation: latency histogram, per-access
/// decoded digests (arrival order), backend block reads serviced, and
/// the mean wave count per access.
struct RunResult {
    hist: LogHistogram,
    digests: Vec<u64>,
    serviced: u64,
    mean_waves: f64,
    mean_deferred: f64,
}

/// Run the tail-latency experiment. `--quick` (or `--trials 1`) shrinks
/// delays, access counts, and the utilisation sweep for CI smoke runs.
pub fn tail(trials: u64) -> String {
    let quick = trials <= 1;

    // Device model: uniform nominal speeds (the planner and the static
    // policy see identical disks) but heterogeneous real service — the
    // straggler only shows up in wall-clock, never in metadata.
    let fast_delay = Duration::from_micros(if quick { 120 } else { 300 });
    let slow_delay = Duration::from_micros(if quick { 900 } else { 2_400 });
    let delay_of = |disk: usize| {
        if disk == STRAGGLER {
            slow_delay
        } else {
            fast_delay
        }
    };
    // Aggregate service capacity in blocks/s, straggler included.
    let capacity: f64 = (0..DISKS).map(|d| 1.0 / delay_of(d).as_secs_f64()).sum();

    let block_bytes: usize = 16 << 10;
    let file_bytes: usize = 256 << 10; // k = 16 source blocks
    let k = file_bytes / block_bytes;
    // Mean blocks an access must service before decoding: k plus the LT
    // reception overhead the first wave is sized for.
    let blocks_per_access = (k as f64 * 1.5).ceil();

    let files = if quick { 8usize } else { 16 };
    let accesses = if quick { 24usize } else { 240 };
    let rhos: &[f64] = if quick {
        &[0.6, 0.9]
    } else {
        &[0.5, 0.7, 0.9, 0.95]
    };

    let payload = |f: usize| -> Vec<u8> {
        (0..file_bytes)
            .map(|i| ((i * 31 + f * 131) % 251) as u8)
            .collect()
    };

    let seq = SeedSequence::new(MASTER_SEED ^ 0x7A11);
    let mut rows: Vec<Row> = Vec::new();

    // One run: fresh system, same committed files, warmup to populate
    // the EWMA estimators, then the paced open-loop batch.
    let run = |policy: ReadPolicy, arrivals: &[u64]| -> RunResult {
        let sys = System::with_backend(
            Box::new(HeteroDelayBackend::new(
                InMemoryBackend::uniform(DISKS, 50e6),
                (0..DISKS).map(delay_of).collect(),
            )),
            SystemConfig {
                block_bytes: block_bytes as u64,
                encode_threads: 1,
                pipeline_depth: 4,
                io_ring: true,
                read_policy: policy,
                ..Default::default()
            },
        );
        assert!(sys.uses_io_ring());
        let client = Client::connect(&sys, sys.register_user());
        let qos = QosOptions::best_effort().with_redundancy(3.0);
        for f in 0..files {
            let mut h = client
                .open(&format!("tail-{f}"), AccessMode::Write, qos.clone())
                .expect("open for write");
            client.write(&mut h, &payload(f)).expect("write");
            client.close(h).expect("close");
        }

        // Warmup: one unpaced read of every file. Quiescent adaptive
        // degenerates to the static order here, which touches every
        // disk — exactly what seeds each disk's EWMA with its real
        // service time. Excluded from the histogram.
        let warm: Vec<_> = (0..files)
            .map(|f| {
                client
                    .open(
                        &format!("tail-{f}"),
                        AccessMode::Read,
                        QosOptions::best_effort(),
                    )
                    .expect("open warmup")
            })
            .collect();
        let warm_refs: Vec<_> = warm.iter().collect();
        for r in client.read_many(&warm_refs) {
            r.expect("warmup read");
        }
        for h in warm {
            client.close(h).expect("close warmup");
        }

        // The measured batch: `accesses` handles round-robin over the
        // files, paced by the shared Poisson offsets.
        let handles: Vec<_> = (0..accesses)
            .map(|a| {
                client
                    .open(
                        &format!("tail-{}", a % files),
                        AccessMode::Read,
                        QosOptions::best_effort(),
                    )
                    .expect("open for read")
            })
            .collect();
        let handle_refs: Vec<_> = handles.iter().collect();
        let mut hist = LogHistogram::new();
        let mut digests = vec![0u64; accesses];
        let mut waves_total = 0u64;
        let mut deferred_total = 0u64;
        let serviced_before = sys.backend_stats().0;
        let t0 = Instant::now();
        client.read_many_with(&handle_refs, Some(arrivals), |i, r| {
            let (bytes, report) = r.expect("paced read");
            let done = t0.elapsed().as_micros() as u64;
            hist.record(done.saturating_sub(arrivals[i]));
            digests[i] = fnv(&bytes);
            waves_total += report.waves as u64;
            deferred_total += report.blocks_deferred as u64;
        });
        let serviced = sys.backend_stats().0 - serviced_before;
        for h in handles {
            client.close(h).expect("close");
        }
        assert_eq!(sys.pool_outstanding_bytes(), 0, "paced reads leaked");
        assert_eq!(hist.count(), accesses as u64);
        for (a, d) in digests.iter().enumerate() {
            assert_eq!(
                *d,
                fnv(&payload(a % files)),
                "access {a} decoded wrong bytes"
            );
        }
        RunResult {
            hist,
            digests,
            serviced,
            mean_waves: waves_total as f64 / accesses as f64,
            mean_deferred: deferred_total as f64 / accesses as f64,
        }
    };

    let mut headline: Vec<(f64, f64, f64)> = Vec::new(); // (rho, static p99, adaptive p99)
    for (ri, &rho) in rhos.iter().enumerate() {
        // Shared arrival offsets: both policies face the identical
        // Poisson sample path, so the comparison is paired.
        let lambda = rho * capacity / blocks_per_access; // accesses/s
        let mean_gap_us = 1e6 / lambda;
        let mut rng = seq.fork("arrivals", ri as u64);
        let mut at = 0f64;
        let arrivals: Vec<u64> = (0..accesses)
            .map(|_| {
                at += exponential(&mut rng, mean_gap_us);
                at as u64
            })
            .collect();

        let stat = run(ReadPolicy::Static, &arrivals);
        let adap = run(ReadPolicy::adaptive(), &arrivals);
        assert_eq!(
            stat.digests, adap.digests,
            "adaptive decoded different bytes than static at rho={rho}"
        );

        for (policy, r) in [("static", &stat), ("adaptive", &adap)] {
            for (q, tag) in [(0.5, "p50"), (0.99, "p99"), (0.999, "p999")] {
                rows.push(Row {
                    section: "tail-latency",
                    config: format!("rho={rho:.2} {policy} {tag}"),
                    threads: accesses,
                    value: r.hist.percentile(q) as f64,
                    unit: "us",
                });
            }
            rows.push(Row {
                section: "tail-serviced",
                config: format!("rho={rho:.2} {policy}"),
                threads: accesses,
                value: r.serviced as f64,
                unit: "blocks",
            });
            rows.push(Row {
                section: "tail-waves",
                config: format!("rho={rho:.2} {policy}"),
                threads: accesses,
                value: r.mean_waves,
                unit: "waves",
            });
            rows.push(Row {
                section: "tail-deferred",
                config: format!("rho={rho:.2} {policy}"),
                threads: accesses,
                value: r.mean_deferred,
                unit: "blocks",
            });
        }
        headline.push((
            rho,
            stat.hist.percentile(0.99) as f64,
            adap.hist.percentile(0.99) as f64,
        ));
    }

    if !quick {
        // The acceptance bar: with decoded bytes already asserted
        // identical, the adaptive policy must cut the p99 tail by at
        // least 25% wherever the system runs at ≥90% utilisation.
        for &(rho, sp99, ap99) in &headline {
            if rho >= 0.9 {
                assert!(
                    ap99 <= sp99,
                    "adaptive p99 {ap99:.0}us above static {sp99:.0}us at rho={rho}"
                );
                assert!(
                    ap99 <= 0.75 * sp99,
                    "adaptive p99 {ap99:.0}us did not clear 0.75x static \
                     {sp99:.0}us at rho={rho}"
                );
            }
        }
    }

    // --- Report ---------------------------------------------------------
    let host = format!(
        "{}-{}-{}threads",
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"section\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
             \"value\": {:.2}, \"unit\": \"{}\", \"host\": \"{}\"}}{}\n",
            r.section,
            r.config,
            r.threads,
            r.value,
            r.unit,
            host,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_tail.json", &json) {
        Ok(()) => "rows written to BENCH_tail.json".to_string(),
        Err(e) => format!("could not write BENCH_tail.json: {e}"),
    };

    let mut table = Table::new(
        format!(
            "Open-loop tail latency: static vs adaptive read policy \
             ({accesses} accesses, straggler disk {STRAGGLER} at \
             {}us vs {}us, {host})",
            slow_delay.as_micros(),
            fast_delay.as_micros()
        ),
        &["section", "config", "accesses", "value", "unit"],
    );
    for r in &rows {
        table.row(vec![
            r.section.into(),
            r.config.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.value),
            r.unit.into(),
        ]);
    }
    let mut out = table.render();
    out.push_str("\np99 static / adaptive by utilisation:\n");
    for &(rho, sp99, ap99) in &headline {
        out.push_str(&format!(
            "  rho={rho:.2}: static {sp99:.0}us, adaptive {ap99:.0}us \
             ({:.2}x)\n",
            sp99 / ap99.max(1.0)
        ));
    }
    out.push_str(&format!(
        "Decoded bytes are asserted identical under both policies at every \
         utilisation; the policy moves wall-clock only.\n{json_note}\n"
    ));
    out
}

/// An [`InMemoryBackend`] whose block reads sleep a **per-disk** amount —
/// the straggler model. Nominal `disk_speed` stays uniform, so the
/// slowdown is invisible to the planner and the static policy; only the
/// ring's live telemetry can see it.
struct HeteroDelayBackend {
    inner: InMemoryBackend,
    read_delays: Vec<Duration>,
}

impl HeteroDelayBackend {
    fn new(inner: InMemoryBackend, read_delays: Vec<Duration>) -> Self {
        assert_eq!(inner.num_disks(), read_delays.len());
        HeteroDelayBackend { inner, read_delays }
    }
}

impl StorageBackend for HeteroDelayBackend {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.inner.write_block(disk, block, data)
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        std::thread::sleep(self.read_delays[disk]);
        self.inner.read_block(disk, block)
    }

    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        std::thread::sleep(self.read_delays[disk]);
        self.inner.read_block_into(disk, block, buf)
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(disk, block)
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.inner.disk_speed(disk)
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.inner.disk_used(disk)
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn commit_batch(
        &mut self,
        disk: usize,
        batch: Vec<(u64, Vec<u8>)>,
    ) -> Vec<Result<(), RefusedWrite>> {
        self.inner.commit_batch(disk, batch)
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        let delays = self.read_delays.clone();
        self.inner.try_shard().map(|shards| {
            shards
                .into_iter()
                .map(|inner| {
                    let read_delay = delays[inner.disk_id()];
                    Box::new(HeteroDelayShard { inner, read_delay }) as Box<dyn DiskShard>
                })
                .collect()
        })
    }
}

/// Per-disk shard of a [`HeteroDelayBackend`]: each shard carries its own
/// read sleep, under the shard lock, so one disk stays serial while the
/// ring's workers overlap across disks.
struct HeteroDelayShard {
    inner: Box<dyn DiskShard>,
    read_delay: Duration,
}

impl DiskShard for HeteroDelayShard {
    fn disk_id(&self) -> usize {
        self.inner.disk_id()
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.inner.write_block(block, data)
    }

    fn commit_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Result<(), RefusedWrite>> {
        self.inner.commit_batch(batch)
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        std::thread::sleep(self.read_delay);
        self.inner.read_block_into(block, buf)
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(block)
    }

    fn speed(&self) -> f64 {
        self.inner.speed()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

/// Tiny FNV-1a digest — enough to compare decoded payloads across runs
/// without holding every copy.
fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}
