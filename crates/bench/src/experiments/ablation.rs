//! Ablations of RobuSTore's design choices.
//!
//! Not figures from the paper, but direct tests of the claims behind its
//! design decisions: the §5.2.3 LT improvements and the §5.3.3 request
//! cancellation.

use rand::seq::SliceRandom;
use robustore_cluster::{BackgroundPolicy, LayoutPolicy};
use robustore_diskmodel::QueueDiscipline;
use robustore_erasure::lt::{blocks_needed, GreedyDecoder, LtCode, LtDecoder};
use robustore_erasure::LtParams;
use robustore_schemes::{AccessConfig, SchemeKind};
use robustore_simkit::report::Table;
use robustore_simkit::SimDuration;
use robustore_simkit::{OnlineStats, SeedSequence};

use super::{metric_header, metric_row, trials_for};
use crate::MASTER_SEED;

/// Ablation: stock LT codes (random neighbours, no decodability check,
/// no repair) vs the paper's improved construction, across redundancy.
pub fn ablation_lt(trials: u64) -> String {
    let seq = SeedSequence::new(MASTER_SEED ^ 0xAB17);
    let k = 256usize;
    let mut table = Table::new(
        "Ablation: stock vs improved LT construction, K=256",
        &[
            "N/K",
            "variant",
            "decode failures",
            "reception overhead",
            "coverage spread (max-min degree)",
        ],
    );
    for (pi, ratio) in [1.0f64, 1.1, 1.5, 3.0].into_iter().enumerate() {
        let n = (k as f64 * ratio) as usize;
        for (variant, improved) in [("stock", false), ("improved", true)] {
            let mut failures = 0u64;
            let mut overhead = OnlineStats::new();
            let mut spread = OnlineStats::new();
            for t in 0..trials {
                let seed = seq.seed_for(variant, (pi as u64) << 32 | t);
                let code = if improved {
                    LtCode::plan(k, n, LtParams::default(), seed).unwrap()
                } else {
                    LtCode::plan_stock(k, n, LtParams::default(), seed).unwrap()
                };
                // Original-coverage spread (the uniform-coverage claim).
                let mut deg = vec![0u32; k];
                for j in 0..code.n() {
                    for &i in code.neighbors(j) {
                        deg[i as usize] += 1;
                    }
                }
                spread.push((deg.iter().max().unwrap() - deg.iter().min().unwrap()) as f64);
                // Random-order decode.
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = seq.fork("order", (pi as u64) << 32 | t);
                order.shuffle(&mut rng);
                match blocks_needed(&code, order) {
                    Some((needed, _)) => overhead.push(needed as f64 / k as f64 - 1.0),
                    None => failures += 1,
                }
            }
            table.row(vec![
                format!("{ratio:.1}"),
                variant.into(),
                format!("{failures}/{trials}"),
                if overhead.count() > 0 {
                    format!("{:.3}", overhead.mean())
                } else {
                    "-".into()
                },
                format!("{:.1}", spread.mean()),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nClaims under test (§5.2.3): the improved construction never fails to decode from \
         its full block set (guaranteed decodability), covers originals near-uniformly \
         (small spread), and keeps reception overhead no worse than stock.\n",
    );
    out
}

/// Ablation: lazy vs greedy XOR scheduling in the LT decoder (§5.2.3
/// improvement 3) — same decode, different memory traffic.
pub fn ablation_xor(trials: u64) -> String {
    let seq = SeedSequence::new(MASTER_SEED ^ 0xAB02);
    let k = 512usize;
    let n = 3 * k;
    let block = 4 << 10;
    let mut table = Table::new(
        "Ablation: lazy vs greedy XOR decoding, K=512",
        &[
            "decoder",
            "block XORs (mean)",
            "XORs per decoded block",
            "saving",
        ],
    );
    let mut lazy_ops = OnlineStats::new();
    let mut greedy_ops = OnlineStats::new();
    for t in 0..trials.clamp(1, 30) {
        let code = LtCode::plan(k, n, LtParams::default(), seq.seed_for("plan", t)).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..block).map(|j| ((i + j) % 256) as u8).collect())
            .collect();
        let coded = code.encode(&data).unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = seq.fork("order", t);
        order.shuffle(&mut rng);
        let mut lazy = LtDecoder::new(&code, block);
        let mut greedy = GreedyDecoder::new(&code, block);
        for &j in &order {
            let done = lazy.receive(j, coded[j].clone());
            greedy.receive(j, coded[j].clone());
            if done {
                break;
            }
        }
        lazy_ops.push(lazy.xor_ops() as f64);
        greedy_ops.push(greedy.xor_ops() as f64);
    }
    let saving = 1.0 - lazy_ops.mean() / greedy_ops.mean();
    for (name, ops) in [("greedy", &greedy_ops), ("lazy", &lazy_ops)] {
        table.row(vec![
            name.into(),
            format!("{:.0}", ops.mean()),
            format!("{:.2}", ops.mean() / k as f64),
            if name == "lazy" {
                format!("{:.0}%", saving * 100.0)
            } else {
                "-".into()
            },
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\n§5.2.3: lazy XOR performs an operation only when it decodes a block, skipping \
         intermediate reductions that never pay off; both decoders produce identical data.\n",
    );
    out
}

/// Extension: disk queue discipline under heavy sharing. The paper's
/// evaluation uses FCFS and defers scheduling/QoS policy to future work
/// (§5.4); this experiment shows how much policy matters: the same heavy
/// competitive load costs very different foreground performance under
/// FCFS, fair-share, and foreground-first scheduling.
pub fn ablation_sched(trials: u64) -> String {
    let header = metric_header("discipline");
    let mut table = Table::new(
        "Extension: disk scheduling under heavy sharing (1 GB read, bg interval 12 ms)",
        &header,
    );
    for scheme in [SchemeKind::Raid0, SchemeKind::RobuStore] {
        for (label, discipline) in [
            ("FCFS", QueueDiscipline::Fcfs),
            ("fair-share", QueueDiscipline::FairShare),
            ("fg-first", QueueDiscipline::ForegroundFirst),
        ] {
            let mut cfg = AccessConfig::default().with_scheme(scheme);
            cfg.layout = LayoutPolicy::Homogeneous;
            cfg.background = BackgroundPolicy::Uniform(SimDuration::from_millis(12));
            cfg.cluster.discipline = discipline;
            let s = trials_for(
                &cfg,
                trials,
                "ablation-sched",
                (scheme as u64) << 8 | discipline as u64,
            );
            metric_row(&mut table, label.into(), scheme.name(), &s);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nFCFS makes clients wait behind the competing tenant's backlog; fair-share removes \
         most of the damage; foreground-first all of it (at the tenant's expense). The gap \
         between policies dwarfs the gap between schemes — the reason §5.4 calls admission \
         and scheduling policy critical for shared deployments. (Homogeneous disks, so \
         RobuSTore sits below RAID-0 here as in Figure 6-24.)\n",
    );
    out
}

/// Ablation: speculative access with and without request cancellation
/// (§5.3.3) — same latency, very different I/O cost.
pub fn ablation_cancel(trials: u64) -> String {
    let header = metric_header("cancellation");
    let mut table = Table::new(
        "Ablation: request cancellation on speculative reads (1 GB, 64 disks, D=3)",
        &header,
    );
    for scheme in [SchemeKind::RraidS, SchemeKind::RobuStore] {
        for (label, cancel) in [("on", true), ("off", false)] {
            let mut cfg = AccessConfig::default().with_scheme(scheme);
            cfg.read_cancellation = cancel;
            let s = trials_for(
                &cfg,
                trials,
                "ablation-cancel",
                (scheme as u64) << 1 | cancel as u64,
            );
            metric_row(&mut table, label.into(), scheme.name(), &s);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nWithout cancellation every requested block is read and shipped: latency is \
         unchanged (completion already happened) but I/O overhead rises to the full stored \
         redundancy — the resource-abuse §5.3.3 exists to prevent.\n",
    );
    out
}
