//! Coding experiments: Table 5-1, Figure 4-1, Figures 5-1/5-2/5-3, and
//! the kernel benchmark behind them (`bench-coding`).

use std::time::Instant;

use rand::seq::SliceRandom;
use robustore_erasure::analysis::{
    coded_reassembly_cdf, lt_reassembly_mc, mean_blocks_needed, replication_reassembly_cdf,
};
use robustore_erasure::lt::{blocks_needed, LtCode, LtDecoder};
use robustore_erasure::{LtParams, ReedSolomon};
use robustore_simkit::report::Table;
use robustore_simkit::{OnlineStats, SeedSequence};

use crate::MASTER_SEED;

/// Table 5-1: Reed–Solomon encode/decode bandwidth for 16 MB of data at
/// K ∈ {4, 8, 16, 32}, N = 2K. The paper's numbers (2.4 GHz Xeon) show
/// bandwidth ∝ 1/K; the absolute level depends on the host CPU.
pub fn table5_1(_trials: u64) -> String {
    let mut table = Table::new(
        "Table 5-1: Reed-Solomon coding bandwidth, 16 MB data (paper: 2.4 GHz Xeon)",
        &["K", "N", "encode (MB/s)", "decode (MB/s)"],
    );
    const DATA: usize = 16 << 20;
    for k in [4usize, 8, 16, 32] {
        let n = 2 * k;
        let rs = ReedSolomon::new(k, n).expect("valid parameters");
        let block = DATA / k;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..block).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
            .collect();

        // Wall-clock best-of-3: single timings on a shared host jitter
        // enough to scramble the K ordering the table exists to show.
        let (mut enc_bw, mut dec_bw) = (0f64, 0f64);
        for rep in 0..3 {
            let t = Instant::now();
            let coded = rs.encode(&data).expect("encode");
            enc_bw = enc_bw.max(DATA as f64 / t.elapsed().as_secs_f64() / 1e6);

            // Decode from the last K blocks (forces a real matrix solve).
            let rx: Vec<_> = (k..2 * k).map(|i| (i, coded[i].clone())).collect();
            let t = Instant::now();
            let decoded = rs.decode(&rx).expect("decode");
            dec_bw = dec_bw.max(DATA as f64 / t.elapsed().as_secs_f64() / 1e6);
            if rep == 0 {
                assert_eq!(decoded, data);
            }
        }

        table.row(vec![
            k.to_string(),
            n.to_string(),
            format!("{enc_bw:.1}"),
            format!("{dec_bw:.1}"),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nShape check: bandwidth should fall ~2x per K doubling (cost quadratic in K).\n",
    );
    out
}

/// Kernel benchmark: RS and LT coding bandwidth under the scalar
/// reference vs the vector (SWAR + nibble-table) kernels, on identical
/// inputs. Writes machine-readable rows to `BENCH_coding.json` — schema
/// `{kernel, code, k, encode_mbps, decode_mbps, host}` — alongside the
/// rendered table, so the speedup claims in `EXPERIMENTS.md` are backed
/// by same-host data. `--quick` (or `--trials 1`) shrinks the data sizes
/// for CI smoke runs.
pub fn bench_coding(trials: u64) -> String {
    use robustore_erasure::{set_kernel, simd_available, Block, BlockPool, Kernel};

    let quick = trials <= 1;
    // Wall-clock best-of: the host is shared, so single timings jitter by
    // ±15%; five reps reliably capture the uncontended rate.
    let reps = trials.clamp(1, 5);
    let rs_bytes: usize = if quick { 2 << 20 } else { 16 << 20 };
    let lt_block: usize = if quick { 4 << 10 } else { 64 << 10 };
    let seq = SeedSequence::new(MASTER_SEED ^ 0xBE7C);

    struct Row {
        kernel: &'static str,
        code: &'static str,
        k: usize,
        encode_mbps: f64,
        decode_mbps: f64,
    }
    let mut rows: Vec<Row> = Vec::new();

    // The kernels are measured back-to-back *within* each configuration,
    // not in separate sweeps: host speed drifts on a minutes scale (this
    // is a shared machine), and a ratio of two measurements taken minutes
    // apart reflects the drift, not the code. The simd column appears
    // only when the build has the `simd` feature and the CPU supports it;
    // absence from BENCH_coding.json therefore means "not measurable
    // here", never "measured at zero".
    let mut kernels: Vec<(Kernel, &'static str)> =
        vec![(Kernel::Scalar, "scalar"), (Kernel::Vector, "vector")];
    if simd_available() {
        kernels.push((Kernel::Simd, "simd"));
    }

    // Reed–Solomon: dense GF(256) arithmetic — the axpy/scale kernels.
    for k in [4usize, 8, 16, 32] {
        let n = 2 * k;
        let rs = ReedSolomon::new(k, n).expect("valid parameters");
        let block = rs_bytes / k;
        let data: Vec<Block> = (0..k)
            .map(|i| (0..block).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let mb = rs_bytes as f64 / 1e6;
        for &(kernel, kname) in &kernels {
            set_kernel(kernel);
            let (mut enc, mut dec) = (0f64, 0f64);
            for rep in 0..reps {
                let t = Instant::now();
                let coded = rs.encode(&data).expect("encode");
                enc = enc.max(mb / t.elapsed().as_secs_f64());
                // Decode from the last K blocks (forces a real matrix solve).
                let rx: Vec<_> = (k..2 * k).map(|i| (i, coded[i].clone())).collect();
                let t = Instant::now();
                let decoded = rs.decode(&rx).expect("decode");
                dec = dec.max(mb / t.elapsed().as_secs_f64());
                if rep == 0 {
                    assert_eq!(decoded, data);
                }
            }
            rows.push(Row {
                kernel: kname,
                code: "rs",
                k,
                encode_mbps: enc,
                decode_mbps: dec,
            });
        }
    }

    // LT: pure XOR — the wide-XOR kernel. Coded buffers come from a
    // BlockPool and every one returns to it, so reps after the first
    // are allocation-free (the zero-copy receive path end to end).
    for k in [128usize, 256, 512, 1024] {
        let n = 3 * k;
        let code = LtCode::plan(k, n, LtParams::default(), seq.seed_for("lt-plan", k as u64))
            .expect("valid parameters");
        let data: Vec<Block> = (0..k)
            .map(|i| (0..lt_block).map(|j| ((i + j * 13) % 256) as u8).collect())
            .collect();
        let mb = (k * lt_block) as f64 / 1e6;
        let mut pool = BlockPool::new(lt_block);
        for &(kernel, kname) in &kernels {
            set_kernel(kernel);
            let (mut enc, mut dec) = (0f64, 0f64);
            for rep in 0..reps {
                let t = Instant::now();
                let mut coded: Vec<Option<Block>> = (0..n)
                    .map(|j| {
                        let mut b = pool.get_scratch();
                        code.encode_block_into(&data, j, &mut b);
                        Some(b)
                    })
                    .collect();
                enc = enc.max(mb / t.elapsed().as_secs_f64());

                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut seq.fork("lt-order", (k as u64) << 8 | rep));
                let t = Instant::now();
                let mut ltdec = LtDecoder::new(&code, lt_block);
                for &j in &order {
                    if ltdec.receive(j, coded[j].take().unwrap()) {
                        break;
                    }
                }
                dec = dec.max(mb / t.elapsed().as_secs_f64());
                assert!(ltdec.is_complete());
                pool.put_all(ltdec.drain_spares());
                pool.put_all(coded.into_iter().flatten()); // never-fed blocks
                let decoded = ltdec.into_data().expect("complete");
                if rep == 0 {
                    assert_eq!(decoded, data);
                }
                pool.put_all(decoded);
            }
            rows.push(Row {
                kernel: kname,
                code: "lt",
                k,
                encode_mbps: enc,
                decode_mbps: dec,
            });
        }
    }
    set_kernel(Kernel::Vector); // restore the process-wide default

    let host = format!(
        "{}-{}-{}threads",
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"code\": \"{}\", \"k\": {}, \
             \"encode_mbps\": {:.1}, \"decode_mbps\": {:.1}, \"host\": \"{}\"}}{}\n",
            r.kernel,
            r.code,
            r.k,
            r.encode_mbps,
            r.decode_mbps,
            host,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_coding.json", &json) {
        Ok(()) => "rows written to BENCH_coding.json".to_string(),
        Err(e) => format!("could not write BENCH_coding.json: {e}"),
    };

    let mut table = Table::new(
        format!(
            "Kernel benchmark: scalar / vector / simd kernels ({}, {} MB RS / {} KB LT blocks)",
            host,
            rs_bytes >> 20,
            lt_block >> 10
        ),
        &["code", "K", "kernel", "encode (MB/s)", "decode (MB/s)"],
    );
    for r in &rows {
        table.row(vec![
            r.code.into(),
            r.k.to_string(),
            r.kernel.into(),
            format!("{:.0}", r.encode_mbps),
            format!("{:.0}", r.decode_mbps),
        ]);
    }
    let mut out = table.render();
    let ratio = |code: &str, k: usize| -> f64 {
        let get = |kern: &str| {
            rows.iter()
                .find(|r| r.code == code && r.k == k && r.kernel == kern)
                .map_or(f64::NAN, |r| r.decode_mbps)
        };
        get("vector") / get("scalar")
    };
    out.push_str("\nDecode speedup, vector over scalar (same host, same inputs):\n");
    for k in [4usize, 8, 16, 32] {
        out.push_str(&format!("  RS K={k}: {:.1}x\n", ratio("rs", k)));
    }
    for k in [128usize, 256, 512, 1024] {
        out.push_str(&format!("  LT K={k}: {:.1}x\n", ratio("lt", k)));
    }
    out.push_str(&format!(
        "Targets: >=3x RS decode at K=32 (got {:.1}x), >=1.5x LT decode at K=1024 (got {:.1}x).\n",
        ratio("rs", 32),
        ratio("lt", 1024),
    ));
    if simd_available() {
        let simd_ratio = |code: &str, k: usize, which: fn(&Row) -> f64| -> f64 {
            let get = |kern: &str| {
                rows.iter()
                    .find(|r| r.code == code && r.k == k && r.kernel == kern)
                    .map_or(f64::NAN, which)
            };
            get("simd") / get("vector")
        };
        out.push_str("Simd speedup over the table (vector) kernels, encode/decode:\n");
        out.push_str(&format!(
            "  RS K=32: {:.1}x / {:.1}x   LT K=1024: {:.1}x / {:.1}x\n",
            simd_ratio("rs", 32, |r| r.encode_mbps),
            simd_ratio("rs", 32, |r| r.decode_mbps),
            simd_ratio("lt", 1024, |r| r.encode_mbps),
            simd_ratio("lt", 1024, |r| r.decode_mbps),
        ));
    } else {
        out.push_str("Simd kernels unavailable (feature off or CPU unsupported): no simd rows.\n");
    }
    out.push_str(&format!("{json_note}\n"));
    out
}

/// Figure 4-1: cumulative probability of reassembling K=1024 originals
/// from the first M of 4096 stored blocks — plain replication (exact DP),
/// the idealised degree-5 erasure code (exact occupancy chain), and real
/// LT codes (Monte Carlo over graphs and orders).
pub fn fig4_1(trials: u64) -> String {
    const K: usize = 1024;
    const STORED: usize = 4 * K;
    let replication = replication_reassembly_cdf(K, 4);
    let coded = coded_reassembly_cdf(K, 5, STORED);
    let lt = lt_reassembly_mc(K, STORED, LtParams::default(), trials as usize, MASTER_SEED);

    let mut table = Table::new(
        "Figure 4-1: P(reassembly) after M of 4096 blocks, K=1024",
        &[
            "M",
            "replication (4 copies)",
            "ideal coded (degree 5)",
            "LT codes (measured)",
        ],
    );
    for m in (1280..=3584).step_by(256) {
        table.row(vec![
            m.to_string(),
            format!("{:.4}", replication[m]),
            format!("{:.4}", coded[m]),
            format!("{:.4}", lt[m]),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nmean blocks needed: replication {:.0}, ideal coded {:.0}, LT {:.0}  (paper: ~3K vs ~1.5K)\n",
        mean_blocks_needed(&replication),
        mean_blocks_needed(&coded),
        mean_blocks_needed(&lt),
    ));
    out
}

/// Survey of every implemented erasure code (§5.2.1's comparison, widened
/// to the full Chapter-2 palette): coding bandwidth and the blocks needed
/// to reconstruct under random arrivals, measured on real data.
pub fn coding_survey(trials: u64) -> String {
    use robustore_erasure::{RaptorCode, TornadoCode};

    let k = 64usize;
    let block = 64 << 10; // 4 MB of data
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..block).map(|j| ((i * 11 + j) % 256) as u8).collect())
        .collect();
    let seq = SeedSequence::new(MASTER_SEED ^ 0xC0DE);
    let reps = trials.clamp(1, 5);

    let mut table = Table::new(
        "Coding survey: 4 MB data, K=64 blocks (rates differ by design)",
        &[
            "code",
            "N",
            "encode (MB/s)",
            "blocks to decode (of N, random order)",
        ],
    );

    // Helper to time encoding.
    let mb = (k * block) as f64 / 1e6;
    let time_encode = |f: &mut dyn FnMut() -> usize| -> (f64, usize) {
        let t = Instant::now();
        let n = f();
        (mb / t.elapsed().as_secs_f64(), n)
    };

    // Reed–Solomon (optimal, any K of N).
    {
        let rs = ReedSolomon::new(k, 2 * k).unwrap();
        let mut coded = Vec::new();
        let (bw, n) = time_encode(&mut || {
            coded = rs.encode(&data).unwrap();
            coded.len()
        });
        table.row(vec![
            "Reed-Solomon".into(),
            n.to_string(),
            format!("{bw:.0}"),
            format!("{k} (optimal)"),
        ]);
    }
    // Improved LT.
    {
        let code = LtCode::plan(k, 4 * k, LtParams::default(), seq.seed_for("lt", 0)).unwrap();
        let mut coded = Vec::new();
        let (bw, n) = time_encode(&mut || {
            coded = code.encode(&data).unwrap();
            coded.len()
        });
        let mut needed = OnlineStats::new();
        for t in 0..reps {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut seq.fork("lt-order", t));
            let (used, _) = blocks_needed(&code, order).unwrap();
            needed.push(used as f64);
        }
        table.row(vec![
            "LT (improved)".into(),
            n.to_string(),
            format!("{bw:.0}"),
            format!("{:.0}", needed.mean()),
        ]);
    }
    // Raptor.
    {
        let code = RaptorCode::plan(
            k,
            4 * k,
            0.1,
            LtParams::default(),
            seq.seed_for("raptor", 0),
        )
        .unwrap();
        let mut coded = Vec::new();
        let (bw, n) = time_encode(&mut || {
            coded = code.encode(&data).unwrap();
            coded.len()
        });
        // Find blocks-needed by bisection over prefix length of a random order.
        let mut needed = OnlineStats::new();
        for t in 0..reps {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut seq.fork("raptor-order", t));
            let mut used = n;
            for take in k..=n {
                let rx: Vec<_> = order[..take]
                    .iter()
                    .map(|&j| (j, coded[j].clone()))
                    .collect();
                if code.decode(&rx).is_ok() {
                    used = take;
                    break;
                }
            }
            needed.push(used as f64);
        }
        table.row(vec![
            "Raptor".into(),
            n.to_string(),
            format!("{bw:.0}"),
            format!("{:.0}", needed.mean()),
        ]);
    }
    // Tornado (fixed rate 1-beta = 0.5).
    {
        let code = TornadoCode::new(k, 0.5, seq.seed_for("tornado", 0)).unwrap();
        let mut coded = Vec::new();
        let (bw, n) = time_encode(&mut || {
            coded = code.encode(&data).unwrap();
            coded.len()
        });
        let mut needed = OnlineStats::new();
        for t in 0..reps {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut seq.fork("tornado-order", t));
            let mut used = n;
            for take in k..=n {
                let rx: Vec<_> = order[..take]
                    .iter()
                    .map(|&j| (j, coded[j].clone()))
                    .collect();
                if code.decode(&rx).is_ok() {
                    used = take;
                    break;
                }
            }
            needed.push(used as f64);
        }
        table.row(vec![
            "Tornado".into(),
            n.to_string(),
            format!("{bw:.0}"),
            format!("{:.0}", needed.mean()),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\n§5.2.1's trade-offs on display: RS is reception-optimal but slow and rate-capped; \
         the XOR-graph codes encode at memory speed and pay 20-60% reception overhead; \
         Tornado is fixed-rate while LT/Raptor are rateless.\n",
    );
    out
}

/// The (C, δ) grid swept in Figures 5-1/5-2.
const C_GRID: [f64; 4] = [0.1, 0.5, 1.0, 2.0];
const DELTA_GRID: [f64; 4] = [0.01, 0.1, 0.5, 0.9];

fn lt_grid_stats(
    k: usize,
    c: f64,
    delta: f64,
    trials: u64,
    seq: &SeedSequence,
) -> (OnlineStats, OnlineStats) {
    let params = LtParams {
        c,
        delta,
        ..Default::default()
    };
    let n = 3 * k; // ample blocks so decoding always completes
    let mut overhead = OnlineStats::new();
    let mut edges = OnlineStats::new();
    let mut order: Vec<usize> = (0..n).collect();
    for t in 0..trials {
        let code = LtCode::plan(k, n, params, seq.seed_for("plan", t)).expect("valid params");
        let mut rng = seq.fork("order", t);
        order.shuffle(&mut rng);
        let (needed, e) = blocks_needed(&code, order.iter().copied()).expect("full set decodes");
        overhead.push(needed as f64 / k as f64 - 1.0);
        edges.push(e as f64);
    }
    (overhead, edges)
}

/// Figure 5-1: mean LT reception overhead and its relative standard
/// deviation across the (C, δ) grid for K ∈ {128, 512, 1024}.
pub fn fig5_1(trials: u64) -> String {
    let seq = SeedSequence::new(MASTER_SEED ^ 0x51);
    let mut table = Table::new(
        "Figure 5-1: LT reception overhead (mean / relative stdev)",
        &["K", "C", "delta", "overhead", "rel stdev"],
    );
    for k in [128usize, 512, 1024] {
        for &c in &C_GRID {
            for &d in &DELTA_GRID {
                let (oh, _) =
                    lt_grid_stats(k, c, d, trials, &seq.subsequence("cell", (k as u64) << 8));
                table.row(vec![
                    k.to_string(),
                    format!("{c}"),
                    format!("{d}"),
                    format!("{:.3}", oh.mean()),
                    format!("{:.3}", oh.relative_stdev()),
                ]);
            }
        }
    }
    let mut out = table.render();
    out.push_str("\nPaper: good (C, delta) settings reach overhead 0.3-0.5; e.g. K=1024, C=1, delta=0.1 -> ~0.5.\n");
    out
}

/// Figure 5-2: mean edges used during decoding (XOR-cost proxy) and its
/// relative stdev, K = 1024.
pub fn fig5_2(trials: u64) -> String {
    let seq = SeedSequence::new(MASTER_SEED ^ 0x52);
    let k = 1024usize;
    let mut table = Table::new(
        "Figure 5-2: edges used in LT decoding, K=1024 (mean / relative stdev)",
        &["C", "delta", "edges", "edges/K", "rel stdev"],
    );
    for &c in &C_GRID {
        for &d in &DELTA_GRID {
            let (_, edges) = lt_grid_stats(
                k,
                c,
                d,
                trials,
                &seq.subsequence("cell", (c * 100.0) as u64),
            );
            table.row(vec![
                format!("{c}"),
                format!("{d}"),
                format!("{:.0}", edges.mean()),
                format!("{:.1}", edges.mean() / k as f64),
                format!("{:.3}", edges.relative_stdev()),
            ]);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper: small delta / large C cost fewer edges (less CPU) but more reception overhead.\n",
    );
    out
}

/// Figure 5-3: actual decoding bandwidth (wall clock, real block data)
/// and reception overhead for representative (C, δ) points, K = 1024.
pub fn fig5_3(trials: u64) -> String {
    let seq = SeedSequence::new(MASTER_SEED ^ 0x53);
    let k = 1024usize;
    let block = 64 << 10; // 64 MB decoded per measurement
    let mut table = Table::new(
        "Figure 5-3: LT decoding bandwidth vs reception overhead, K=1024, 64 MB data",
        &["C", "delta", "decode (MB/s)", "reception overhead"],
    );
    for (c, d) in [(0.5, 0.5), (1.0, 0.5), (1.0, 0.1), (2.0, 0.1), (2.0, 0.01)] {
        let params = LtParams {
            c,
            delta: d,
            ..Default::default()
        };
        let n = 3 * k;
        let mut bw = OnlineStats::new();
        let mut oh = OnlineStats::new();
        let reps = trials.clamp(1, 5); // wall-clock measurement; few reps suffice
        for t in 0..reps {
            let code = LtCode::plan(k, n, params, seq.seed_for("plan", t)).expect("params");
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| (0..block).map(|j| ((i + j) % 256) as u8).collect())
                .collect();
            let coded = code.encode(&data).expect("encode");
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = seq.fork("order", t);
            order.shuffle(&mut rng);

            let start = Instant::now();
            let mut dec = LtDecoder::new(&code, block);
            let mut used = 0usize;
            for &j in &order {
                used += 1;
                if dec.receive(j, coded[j].clone()) {
                    break;
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            assert!(dec.is_complete());
            bw.push((k * block) as f64 / elapsed / 1e6);
            oh.push(used as f64 / k as f64 - 1.0);
        }
        table.row(vec![
            format!("{c}"),
            format!("{d}"),
            format!("{:.0}", bw.mean()),
            format!("{:.2}", oh.mean()),
        ]);
    }
    let mut out = table.render();
    out.push_str("\nPaper (2.8 GHz Opteron): ~394 MB/s at C=1, delta=0.1 with ~0.5 overhead; ~550 MB/s at C=2, delta=0.01.\n");
    out
}
