//! Repair experiment (`repair`): eager vs rate-limited repair under
//! concurrent foreground load, plus the predicted-MTTDL table.
//!
//! The question the repair service exists to answer: repair traffic is
//! necessary for durability, but it competes with foreground reads for
//! the same disks — so *how* you schedule it decides whether users
//! notice. Three variants share one device model (uniform per-disk
//! service delay, so queueing is real), one seeded decay schedule on a
//! set of **cold** files, and one Poisson arrival sample path of
//! foreground reads against a disjoint set of **hot** files (disjoint so
//! file try-locks never collide — contention is purely for disk time):
//!
//! * `none` — no repair at all: the foreground baseline.
//! * `eager` — a repair loop sweeping the cold set continuously at
//!   foreground ring priority with no throttle: every scrub read and
//!   restore write interleaves FIFO with user I/O.
//! * `ratelimited` — the same loop through [`RepairService`]: background
//!   ring priority (serviced only when no foreground op is queued), a
//!   token-bucket byte budget charged before every submission, and
//!   load-aware re-placement.
//!
//! Foreground p99 per variant lands in `BENCH_repair.json` (schema
//! `{section, config, threads, value, unit, host}`, matching
//! `BENCH_tail.json`), alongside repair throughput, bytes charged, and
//! the durability table: per-block failure rate λ calibrated from the
//! decay schedule ([`robustore_simkit::durability::lambda_from_decay`]),
//! repair rate μ from the token-bucket budget, and predicted MTTDL for
//! replication vs RS vs LT at equal (3×) storage overhead, with and
//! without repair.
//!
//! Non-quick runs hard-assert the headline: zero decodability loss on
//! the cold set across every decay round under both repair variants,
//! rate-limited foreground median within [`RL_P50_FACTOR`]× the
//! no-repair baseline, eager median above [`EAGER_P50_FACTOR`]×
//! baseline (the bars ride the medians because p99 tails on a shared
//! host are scheduler noise; p99s are still reported), and the token
//! bucket's `consumed ≤ rate·elapsed + burst` invariant.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use robustore_core::{
    AccessMode, Client, DiskShard, InMemoryBackend, QosOptions, RefusedWrite, RepairService,
    StorageBackend, StoreError, System, SystemConfig,
};
use robustore_simkit::durability::{compare_at_overhead, lambda_from_decay};
use robustore_simkit::report::Table;
use robustore_simkit::rng::exponential;
use robustore_simkit::{LogHistogram, SeedSequence};

use crate::MASTER_SEED;

const DISKS: usize = 8;
/// Rate-limited foreground median latency must stay within this factor
/// of the no-repair baseline.
pub const RL_P50_FACTOR: f64 = 1.5;
/// Eager repair must inflate the foreground median beyond this factor
/// of the baseline (otherwise the A/B demonstrates nothing).
pub const EAGER_P50_FACTOR: f64 = 1.2;

struct Row {
    section: &'static str,
    config: String,
    threads: usize,
    value: f64,
    unit: &'static str,
}

#[derive(Default)]
struct RepairSide {
    scrubs: u64,
    restored: u64,
    failures: u64,
    bytes_charged: u64,
    budget_ceiling: f64,
}

struct VariantResult {
    hist: LogHistogram,
    repair: RepairSide,
    window_secs: f64,
}

/// Run the repair experiment. `--quick` (or `--trials 1`) shrinks file
/// and access counts and skips the acceptance assertions.
pub fn repair(trials: u64) -> String {
    let quick = trials <= 1;

    let read_delay = Duration::from_micros(if quick { 120 } else { 300 });
    let block_bytes: usize = 16 << 10;
    let file_bytes: usize = 128 << 10; // k = 8 source blocks
    let k = file_bytes / block_bytes;
    let blocks_per_access = (k as f64 * 1.5).ceil();
    let capacity = DISKS as f64 / read_delay.as_secs_f64();

    let hot_files = if quick { 2usize } else { 4 };
    let cold_files = if quick { 4usize } else { 8 };
    let accesses = if quick { 40usize } else { 240 };
    let rounds = if quick { 1u64 } else { 3 };
    let rho = 0.7;
    // Low-grade enough that even the unrepaired baseline stays
    // decodable over the measured rounds (its damage accumulates), yet
    // enough damage that the repaired variants restore a meaningful
    // block count every round.
    let loss_per_round = 0.12;
    // Rate-limited budget: ~3 MB/s with 4 blocks of burst — a few
    // percent of one disk's bandwidth.
    let rl_rate = 3e6;
    let rl_burst = (4 * block_bytes) as u64;

    let payload = |f: usize| -> Vec<u8> {
        (0..file_bytes)
            .map(|i| ((i * 37 + f * 149) % 251) as u8)
            .collect()
    };
    let hot_name = |f: usize| format!("hot-{f}");
    let cold_name = |f: usize| format!("cold-{f}");

    let seq = SeedSequence::new(MASTER_SEED ^ 0x4E9A);

    // Shared Poisson arrival offsets: every variant faces the identical
    // foreground sample path, so the comparison is paired.
    let lambda_acc = rho * capacity / blocks_per_access;
    let mean_gap_us = 1e6 / lambda_acc;
    let arrivals_for = |round: u64| -> Vec<u64> {
        let mut rng = seq.fork("arrivals", round);
        let mut at = 0f64;
        (0..accesses)
            .map(|_| {
                at += exponential(&mut rng, mean_gap_us);
                at as u64
            })
            .collect()
    };

    enum Mode {
        None,
        Eager,
        RateLimited,
    }

    let run_variant = |mode: &Mode| -> VariantResult {
        let sys = System::with_backend(
            Box::new(DelayBackend::new(
                InMemoryBackend::uniform(DISKS, 50e6),
                read_delay,
            )),
            SystemConfig {
                block_bytes: block_bytes as u64,
                encode_threads: 1,
                pipeline_depth: 4,
                io_ring: true,
                read_repair: false, // the repair service is the only healer
                ..Default::default()
            },
        );
        assert!(sys.uses_io_ring());
        let client = Client::connect(&sys, sys.register_user());
        let qos = QosOptions::best_effort().with_redundancy(3.0);
        for f in 0..hot_files {
            let mut h = client
                .open(&hot_name(f), AccessMode::Write, qos.clone())
                .expect("open hot for write");
            client.write(&mut h, &payload(f)).expect("write hot");
            client.close(h).expect("close hot");
        }
        for f in 0..cold_files {
            let mut h = client
                .open(&cold_name(f), AccessMode::Write, qos.clone())
                .expect("open cold for write");
            client
                .write(&mut h, &payload(hot_files + f))
                .expect("write cold");
            client.close(h).expect("close cold");
        }
        let n_target = sys.export_meta(&cold_name(0)).expect("meta").coding.n;

        let mut hist = LogHistogram::new();
        let mut repair_side = RepairSide::default();
        let mut window_total = 0f64;
        for round in 0..rounds {
            // Seeded decay on the cold set only: the hot set stays
            // clean so the baseline's reads measure pure queueing.
            for f in 0..cold_files {
                let sub = seq.subsequence("decay", round * cold_files as u64 + f as u64);
                sys.lose_file_blocks(&cold_name(f), loss_per_round, &sub);
            }
            let arrivals = arrivals_for(round);
            let stop = AtomicBool::new(false);
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                let repair_thread = match mode {
                    Mode::None => None,
                    _ => Some(scope.spawn(|| {
                        // Repair acts with the owner's identity — it
                        // opens files for writing to commit layouts.
                        let rc = Client::connect(&sys, client.identity());
                        let service = match mode {
                            Mode::Eager => RepairService::new(rc).eager().load_aware(false),
                            _ => RepairService::new(rc).with_rate(rl_rate, rl_burst),
                        };
                        let mut side = RepairSide::default();
                        while !stop.load(Ordering::Relaxed) {
                            // The risk queue ranks the whole store; the
                            // loop repairs the cold set most-at-risk
                            // first (hot files are busy with readers).
                            for entry in service.risk_queue() {
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                                if !entry.name.starts_with("cold-") {
                                    continue;
                                }
                                match service.repair_file(&entry.name) {
                                    Ok(r) => {
                                        side.scrubs += 1;
                                        side.restored += r.blocks_restored as u64;
                                    }
                                    Err(e) => {
                                        if side.failures == 0 {
                                            eprintln!("repair_file({}): {e}", entry.name);
                                        }
                                        side.failures += 1;
                                    }
                                }
                            }
                            // Polling cadence between sweep passes: the
                            // service is a poller, not a spin loop —
                            // surveys must not contend for shard locks
                            // at CPU speed.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        if let Some(b) = service.bucket() {
                            side.bytes_charged = b.consumed();
                            side.budget_ceiling = b.budget_ceiling();
                            assert!(
                                side.bytes_charged as f64 <= side.budget_ceiling,
                                "token bucket exceeded: {} charged vs ceiling {:.0}",
                                side.bytes_charged,
                                side.budget_ceiling
                            );
                        }
                        side
                    })),
                };
                let handles: Vec<_> = (0..accesses)
                    .map(|a| {
                        client
                            .open(
                                &hot_name(a % hot_files),
                                AccessMode::Read,
                                QosOptions::best_effort(),
                            )
                            .expect("open hot for read")
                    })
                    .collect();
                let handle_refs: Vec<_> = handles.iter().collect();
                client.read_many_with(&handle_refs, Some(&arrivals), |i, r| {
                    let (bytes, _) = r.expect("foreground read");
                    let done = t0.elapsed().as_micros() as u64;
                    hist.record(done.saturating_sub(arrivals[i]));
                    assert_eq!(bytes, payload(i % hot_files), "foreground read corrupted");
                });
                for h in handles {
                    client.close(h).expect("close hot read");
                }
                stop.store(true, Ordering::Relaxed);
                if let Some(t) = repair_thread {
                    let side = t.join().expect("repair thread");
                    repair_side.scrubs += side.scrubs;
                    repair_side.restored += side.restored;
                    repair_side.failures += side.failures;
                    repair_side.bytes_charged += side.bytes_charged;
                    repair_side.budget_ceiling += side.budget_ceiling;
                }
            });
            window_total += t0.elapsed().as_secs_f64();
            assert_eq!(sys.pool_outstanding_bytes(), 0, "round leaked buffers");

            // End of round, repair quiesced: every cold file must still
            // decode bit-correct — zero decodability loss under decay.
            // The repaired variants are then topped back to full
            // strength so each round faces fresh damage from the same
            // starting point.
            for f in 0..cold_files {
                let h = client
                    .open(&cold_name(f), AccessMode::Read, QosOptions::best_effort())
                    .expect("open cold for read");
                let got = client.read(&h).expect("cold file must stay decodable");
                assert_eq!(got, payload(hot_files + f), "cold file decoded wrong bytes");
                client.close(h).expect("close cold read");
            }
            if !matches!(mode, Mode::None) {
                for f in 0..cold_files {
                    client.scrub(&cold_name(f)).expect("quiesced top-up scrub");
                    let meta = sys.export_meta(&cold_name(f)).expect("meta");
                    let present: usize = meta
                        .layout
                        .iter()
                        .map(|(d, ids)| {
                            ids.iter()
                                .filter(|&&id| sys.probe_block(*d, meta.block_key(id)))
                                .count()
                        })
                        .sum();
                    assert_eq!(
                        present, n_target,
                        "cold-{f} not restored to full strength after round {round}"
                    );
                }
            }
        }
        VariantResult {
            hist,
            repair: repair_side,
            window_secs: window_total / rounds as f64,
        }
    };

    let base = run_variant(&Mode::None);
    let eager = run_variant(&Mode::Eager);
    let rl = run_variant(&Mode::RateLimited);

    // Durability table: λ calibrated from the decay schedule (fraction
    // per round over the measured round window), μ from the repair
    // budget in blocks/second.
    let lambda = lambda_from_decay(loss_per_round, base.window_secs.max(1e-3));
    let mu_rl = rl_rate / block_bytes as f64;
    let mut rows: Vec<Row> = Vec::new();
    for (variant, r) in [("none", &base), ("eager", &eager), ("ratelimited", &rl)] {
        for (q, tag) in [(0.5, "p50"), (0.99, "p99"), (0.999, "p999")] {
            rows.push(Row {
                section: "repair-foreground-latency",
                config: format!("{variant} {tag}"),
                threads: accesses,
                value: r.hist.percentile(q) as f64,
                unit: "us",
            });
        }
        rows.push(Row {
            section: "repair-restored",
            config: variant.to_string(),
            threads: accesses,
            value: r.repair.restored as f64,
            unit: "blocks",
        });
        rows.push(Row {
            section: "repair-scrubs",
            config: variant.to_string(),
            threads: accesses,
            value: r.repair.scrubs as f64,
            unit: "files",
        });
        rows.push(Row {
            section: "repair-bytes-charged",
            config: variant.to_string(),
            threads: accesses,
            value: r.repair.bytes_charged as f64,
            unit: "bytes",
        });
    }
    for (mu, label) in [(0.0, "no-repair"), (mu_rl, "budgeted-repair")] {
        for est in compare_at_overhead(k, 3, lambda, mu, 0.2) {
            rows.push(Row {
                section: "repair-mttdl",
                config: format!("{} {label}", est.scheme),
                threads: est.threshold,
                value: est.mttdl_secs,
                unit: "s",
            });
        }
    }

    let base_p99 = base.hist.percentile(0.99) as f64;
    let eager_p99 = eager.hist.percentile(0.99) as f64;
    let rl_p99 = rl.hist.percentile(0.99) as f64;
    let base_p50 = base.hist.percentile(0.5) as f64;
    let eager_p50 = eager.hist.percentile(0.5) as f64;
    let rl_p50 = rl.hist.percentile(0.5) as f64;
    if !quick {
        assert_eq!(
            eager.repair.failures + rl.repair.failures,
            0,
            "a repair-cycle scrub failed: damage outran the margin"
        );
        // The acceptance bars ride the medians: on a shared host the
        // p99 tail is kernel-scheduler noise (one bad preemption moves
        // it), while the pooled-round median is stable run to run. p99s
        // are still reported per variant.
        assert!(
            rl_p50 <= RL_P50_FACTOR * base_p50,
            "rate-limited repair inflated foreground p50 {rl_p50:.0}us past \
             {RL_P50_FACTOR}x the {base_p50:.0}us baseline"
        );
        assert!(
            eager_p50 >= EAGER_P50_FACTOR * base_p50,
            "eager repair p50 {eager_p50:.0}us did not measurably exceed the \
             {base_p50:.0}us baseline — the A/B shows nothing"
        );
    }

    // --- Report ---------------------------------------------------------
    let host = format!(
        "{}-{}-{}threads",
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        // A bare `inf`/`NaN` is not JSON; clamp to the f64 ceiling so a
        // pathological MTTDL can never corrupt the results file.
        let value = if r.value.is_finite() {
            r.value
        } else {
            f64::MAX
        };
        json.push_str(&format!(
            "  {{\"section\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
             \"value\": {:.3e}, \"unit\": \"{}\", \"host\": \"{}\"}}{}\n",
            r.section,
            r.config,
            r.threads,
            value,
            r.unit,
            host,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_repair.json", &json) {
        Ok(()) => "rows written to BENCH_repair.json".to_string(),
        Err(e) => format!("could not write BENCH_repair.json: {e}"),
    };

    let mut table = Table::new(
        format!(
            "Repair under load: eager vs rate-limited repair racing \
             {accesses} foreground reads/round at rho={rho:.2} \
             ({rounds} decay rounds, {}% cold-block loss/round, {host})",
            (loss_per_round * 100.0) as u32
        ),
        &["section", "config", "threads", "value", "unit"],
    );
    for r in &rows {
        table.row(vec![
            r.section.into(),
            r.config.clone(),
            r.threads.to_string(),
            if r.section == "repair-mttdl" {
                format!("{:.3e}", r.value)
            } else {
                format!("{:.1}", r.value)
            },
            r.unit.into(),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nForeground p50: baseline {base_p50:.0}us, eager {eager_p50:.0}us \
         ({:.2}x), rate-limited {rl_p50:.0}us ({:.2}x).\n\
         Foreground p99: baseline {base_p99:.0}us, eager {eager_p99:.0}us \
         ({:.2}x), rate-limited {rl_p99:.0}us ({:.2}x).\n\
         Rate-limited repair charged {} bytes against a {:.1} MB/s budget \
         (ceiling invariant asserted); every cold file decoded bit-correct \
         after every decay round under both repair variants.\n{json_note}\n",
        eager_p50 / base_p50.max(1.0),
        rl_p50 / base_p50.max(1.0),
        eager_p99 / base_p99.max(1.0),
        rl_p99 / base_p99.max(1.0),
        rl.repair.bytes_charged,
        rl_rate / 1e6,
    ));
    out
}

/// An [`InMemoryBackend`] whose block reads sleep a uniform per-disk
/// amount, so disk time is a real contended resource and repair traffic
/// queues against foreground reads. Presence probes skip the sleep —
/// the risk survey is a metadata-speed scan.
struct DelayBackend {
    inner: InMemoryBackend,
    read_delay: Duration,
}

impl DelayBackend {
    fn new(inner: InMemoryBackend, read_delay: Duration) -> Self {
        DelayBackend { inner, read_delay }
    }
}

impl StorageBackend for DelayBackend {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.inner.write_block(disk, block, data)
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        std::thread::sleep(self.read_delay);
        self.inner.read_block(disk, block)
    }

    fn read_block_into(
        &self,
        disk: usize,
        block: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        std::thread::sleep(self.read_delay);
        self.inner.read_block_into(disk, block, buf)
    }

    fn has_block(&self, disk: usize, block: u64) -> bool {
        self.inner.has_block(disk, block)
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(disk, block)
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.inner.disk_speed(disk)
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.inner.disk_used(disk)
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn commit_batch(
        &mut self,
        disk: usize,
        batch: Vec<(u64, Vec<u8>)>,
    ) -> Vec<Result<(), RefusedWrite>> {
        self.inner.commit_batch(disk, batch)
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        let delay = self.read_delay;
        self.inner.try_shard().map(|shards| {
            shards
                .into_iter()
                .map(|inner| {
                    Box::new(DelayShard {
                        inner,
                        read_delay: delay,
                    }) as Box<dyn DiskShard>
                })
                .collect()
        })
    }
}

/// Per-disk shard of a [`DelayBackend`]: the read sleep runs under the
/// shard lock, so one disk stays serial while the ring's workers
/// overlap across disks.
struct DelayShard {
    inner: Box<dyn DiskShard>,
    read_delay: Duration,
}

impl DiskShard for DelayShard {
    fn disk_id(&self) -> usize {
        self.inner.disk_id()
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.inner.write_block(block, data)
    }

    fn commit_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Result<(), RefusedWrite>> {
        self.inner.commit_batch(batch)
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        std::thread::sleep(self.read_delay);
        self.inner.read_block_into(block, buf)
    }

    fn has_block(&self, block: u64) -> bool {
        self.inner.has_block(block)
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(block)
    }

    fn speed(&self) -> f64 {
        self.inner.speed()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}
