//! §6.3.2 experiments: performance variation from competitive workloads.
//!
//! These isolate disk sharing as the variation source, so the in-disk
//! layout is homogeneous (good sequential layout on every disk; only zone
//! placement differs) and each disk runs a background request stream.

use robustore_cluster::{BackgroundPolicy, LayoutPolicy};
use robustore_schemes::{AccessConfig, AccessKind, SchemeKind};
use robustore_simkit::report::Table;
use robustore_simkit::SimDuration;

use super::{metric_header, metric_row, trials_for};
use crate::experiments::layoutvar::REDUNDANCY_SWEEP;

fn competitive_baseline(scheme: SchemeKind) -> AccessConfig {
    let mut cfg = AccessConfig::default().with_scheme(scheme);
    cfg.layout = LayoutPolicy::Homogeneous;
    cfg.background = BackgroundPolicy::Heterogeneous;
    cfg
}

/// Figures 6-24/6-25: read vs background request interval, homogeneous
/// layout and homogeneous (same-interval) competitive workloads.
pub fn fig6_24(trials: u64) -> String {
    let header = metric_header("bg interval (ms)");
    let mut table = Table::new(
        "Figures 6-24/6-25: 1 GB read vs background interval, homogeneous layout & load",
        &header,
    );
    for (i, &interval_ms) in [6u64, 12, 25, 50, 100, 200].iter().enumerate() {
        for scheme in SchemeKind::ALL {
            let mut cfg = AccessConfig::default().with_scheme(scheme);
            cfg.layout = LayoutPolicy::Homogeneous;
            cfg.background = BackgroundPolicy::Uniform(SimDuration::from_millis(interval_ms));
            let s = trials_for(&cfg, trials, "fig6-24", (i * 4) as u64);
            metric_row(&mut table, interval_ms.to_string(), scheme.name(), &s);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper: all schemes improve as background load lightens; in this homogeneous \
         environment RobuSTore is ~18% *below* the best baseline at peak (reception overhead \
         with nothing to hide) — the paper's own negative result.\n",
    );
    out
}

fn competitive_redundancy_sweep(title: &str, id: &str, kind: AccessKind, trials: u64) -> Table {
    let header = metric_header("redundancy");
    let mut table = Table::new(title, &header);
    {
        let mut cfg = competitive_baseline(SchemeKind::Raid0).with_kind(kind);
        cfg.redundancy = 0.0;
        let s = trials_for(&cfg, trials, id, 999);
        metric_row(&mut table, "0%".into(), SchemeKind::Raid0.name(), &s);
    }
    for (i, &d) in REDUNDANCY_SWEEP.iter().enumerate() {
        for scheme in [
            SchemeKind::RraidS,
            SchemeKind::RraidA,
            SchemeKind::RobuStore,
        ] {
            let cfg = competitive_baseline(scheme)
                .with_kind(kind)
                .with_redundancy(d);
            let s = trials_for(&cfg, trials, id, (i * 4 + scheme as usize) as u64);
            metric_row(&mut table, format!("{:.0}%", d * 100.0), scheme.name(), &s);
        }
    }
    table
}

/// Figures 6-26/6-27/6-28: read vs redundancy under heterogeneous
/// competitive workloads.
pub fn fig6_26(trials: u64) -> String {
    let table = competitive_redundancy_sweep(
        "Figures 6-26/6-27/6-28: 1 GB read vs redundancy, heterogeneous competitive load",
        "fig6-26",
        AccessKind::Read,
        trials,
    );
    let mut out = table.render();
    out.push_str(
        "\nPaper: RobuSTore's read bandwidth rises quickly and peaks once redundancy exceeds \
         ~140% (peak/average disk bandwidth with sharing ≈ 44/33, times 1.5 reception \
         overhead); beyond that its latency stdev is far below RRAID-S/A; I/O overhead ~50%.\n",
    );
    out
}

/// Figures 6-29/6-30/6-31: write vs redundancy under heterogeneous
/// competitive workloads.
pub fn fig6_29(trials: u64) -> String {
    let table = competitive_redundancy_sweep(
        "Figures 6-29/6-30/6-31: 1 GB write vs redundancy, heterogeneous competitive load",
        "fig6-29",
        AccessKind::Write,
        trials,
    );
    let mut out = table.render();
    out.push_str(
        "\nPaper: write bandwidth falls with redundancy for all schemes; RobuSTore stays far \
         above RAID-0/RRAID with much lower write-latency stdev.\n",
    );
    out
}

/// Figures 6-32/6-33/6-34: read-after-write (unbalanced striping) vs
/// redundancy under heterogeneous competitive workloads.
pub fn fig6_32(trials: u64) -> String {
    let table = competitive_redundancy_sweep(
        "Figures 6-32/6-33/6-34: 1 GB read-after-write vs redundancy, competitive load",
        "fig6-32",
        AccessKind::ReadAfterWrite,
        trials,
    );
    let mut out = table.render();
    out.push_str(
        "\nPaper: RobuSTore with unbalanced striping still delivers the highest bandwidth and \
         the lowest latency variation; I/O overhead ~40-50%, set by LT reception overhead.\n",
    );
    out
}
