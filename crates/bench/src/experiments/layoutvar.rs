//! §6.3.1 experiments: performance variation from in-disk data layout.
//!
//! All sweeps start from the paper baseline (1 GB, 64 disks, 1 ms RTT,
//! 1 MB blocks, 3× redundancy, heterogeneous layout, idle disks) and vary
//! one parameter.

use robustore_schemes::{AccessConfig, AccessKind, SchemeKind};
use robustore_simkit::report::Table;
use robustore_simkit::SimDuration;

use super::{metric_header, metric_row, trials_for};

/// Figures 6-6/6-7/6-8: read vs number of disks (2–128).
pub fn fig6_6(trials: u64) -> String {
    let header = metric_header("disks");
    let header_refs: Vec<&str> = header.to_vec();
    let mut table = Table::new(
        "Figures 6-6/6-7/6-8: 1 GB read vs number of disks, heterogeneous layout",
        &header_refs,
    );
    for (i, &disks) in [2usize, 4, 8, 16, 32, 64, 128].iter().enumerate() {
        for scheme in SchemeKind::ALL {
            let cfg = AccessConfig::default()
                .with_scheme(scheme)
                .with_disks(disks);
            let s = trials_for(&cfg, trials, "fig6-6", (i * 4) as u64);
            metric_row(&mut table, disks.to_string(), scheme.name(), &s);
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper @64 disks: RAID-0 31, RRAID-S 117, RRAID-A 228, RobuSTore 459 MB/s; \
         latency stdev 1.9 / 7.3 / 1.9 / 0.5 s; RobuSTore scales ~linearly, I/O overhead ~40%.\n",
    );
    out
}

/// Figures 6-9/6-10/6-11: read vs block size (0.5–64 MB).
pub fn fig6_9(trials: u64) -> String {
    let header = metric_header("block (MB)");
    let header_refs: Vec<&str> = header.to_vec();
    let mut table = Table::new(
        "Figures 6-9/6-10/6-11: 1 GB read vs block size, heterogeneous layout",
        &header_refs,
    );
    for (i, &mb2) in [1u64, 2, 4, 8, 16, 32, 64, 128].iter().enumerate() {
        // mb2 is block size in half-megabytes: 0.5, 1, 2, ... 64 MB.
        let block_bytes = mb2 * (1 << 19);
        for scheme in SchemeKind::ALL {
            let mut cfg = AccessConfig::default().with_scheme(scheme);
            cfg.block_bytes = block_bytes;
            let s = trials_for(&cfg, trials, "fig6-9", (i * 4) as u64);
            metric_row(
                &mut table,
                format!("{}", mb2 as f64 / 2.0),
                scheme.name(),
                &s,
            );
        }
    }
    let mut out = table.render();
    out.push_str(
        "\nPaper: block size affects only RobuSTore — bandwidth peaks around 1 MB, \
         falls toward 64 MB; I/O overhead grows with block size but stays below RRAID-S.\n",
    );
    out
}

/// Figures 6-12/6-13/6-14: read vs network RTT for 1 GB and 128 MB
/// segments.
pub fn fig6_12(trials: u64) -> String {
    let header = metric_header("RTT (ms)");
    let header_refs: Vec<&str> = header.to_vec();
    let mut out = String::new();
    for (label, bytes) in [("1024 MB", 1u64 << 30), ("128 MB", 128 << 20)] {
        let mut table = Table::new(
            format!("Figures 6-12/6-13/6-14: {label} read vs network latency"),
            &header_refs,
        );
        for (i, &rtt_ms) in [1u64, 10, 30, 100].iter().enumerate() {
            for scheme in SchemeKind::ALL {
                let mut cfg = AccessConfig::default().with_scheme(scheme);
                cfg.data_bytes = bytes;
                cfg.cluster.rtt = SimDuration::from_millis(rtt_ms);
                let s = trials_for(&cfg, trials, "fig6-12", (bytes >> 20) + (i * 4) as u64);
                metric_row(&mut table, rtt_ms.to_string(), scheme.name(), &s);
            }
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "Paper: only RRAID-A degrades with RTT (multi-round adaptation): −30% over 1→100 ms \
         at 1 GB, −52% at 128 MB; the single-round speculative schemes are flat.\n",
    );
    out
}

/// The redundancy sweep used by Figures 6-15..6-23 (and the competitive
/// variants): D from 0 to 9 (0%–900%).
pub const REDUNDANCY_SWEEP: [f64; 8] = [0.0, 0.4, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0];

/// Schemes that appear in redundancy sweeps (RAID-0 has no redundancy
/// knob; the paper represents it as the zero-redundancy point).
const REDUNDANT_SCHEMES: [SchemeKind; 3] = [
    SchemeKind::RraidS,
    SchemeKind::RraidA,
    SchemeKind::RobuStore,
];

fn redundancy_sweep(
    title: &str,
    id: &str,
    kind: AccessKind,
    trials: u64,
    mutate: impl Fn(&mut AccessConfig),
) -> Table {
    let header = metric_header("redundancy");
    let header_refs: Vec<&str> = header.to_vec();
    let mut table = Table::new(title, &header_refs);
    // RAID-0 reference point (zero redundancy).
    {
        let mut cfg = AccessConfig::default()
            .with_scheme(SchemeKind::Raid0)
            .with_kind(kind);
        mutate(&mut cfg);
        let s = trials_for(&cfg, trials, id, 999);
        metric_row(&mut table, "0%".into(), SchemeKind::Raid0.name(), &s);
    }
    for (i, &d) in REDUNDANCY_SWEEP.iter().enumerate() {
        for scheme in REDUNDANT_SCHEMES {
            let mut cfg = AccessConfig::default()
                .with_scheme(scheme)
                .with_kind(kind)
                .with_redundancy(d);
            mutate(&mut cfg);
            let s = trials_for(&cfg, trials, id, (i * 4 + scheme as usize) as u64);
            metric_row(&mut table, format!("{:.0}%", d * 100.0), scheme.name(), &s);
        }
    }
    table
}

/// Figures 6-15/6-16/6-17: read vs data redundancy.
pub fn fig6_15(trials: u64) -> String {
    let table = redundancy_sweep(
        "Figures 6-15/6-16/6-17: 1 GB read vs data redundancy, heterogeneous layout",
        "fig6-15",
        AccessKind::Read,
        trials,
        |_| {},
    );
    let mut out = table.render();
    out.push_str(
        "\nPaper: RobuSTore approaches peak by 200% redundancy (peak ≥500%); RRAID-S/A gain \
         less; RobuSTore needs only 1-2x redundancy for most robustness benefit; RobuSTore \
         I/O overhead stays ~40-50% while RRAID-S grows with redundancy.\n",
    );
    out
}

/// Figures 6-18/6-19/6-20: write vs data redundancy.
pub fn fig6_18(trials: u64) -> String {
    let table = redundancy_sweep(
        "Figures 6-18/6-19/6-20: 1 GB write vs data redundancy, heterogeneous layout",
        "fig6-18",
        AccessKind::Write,
        trials,
        |_| {},
    );
    let mut out = table.render();
    out.push_str(
        "\nPaper @300%: RobuSTore 186 MB/s vs RRAID-S/A 7.5 MB/s and RAID-0 30 MB/s; write \
         latency stdev 0.5 s vs 6.4 s; write I/O overhead ≈ redundancy (RobuSTore slightly more).\n",
    );
    out
}

/// Figures 6-21/6-22/6-23: read-after-write (RobuSTore unbalanced
/// striping) vs data redundancy.
pub fn fig6_21(trials: u64) -> String {
    let table = redundancy_sweep(
        "Figures 6-21/6-22/6-23: 1 GB read-after-write vs redundancy (RobuSTore unbalanced)",
        "fig6-21",
        AccessKind::ReadAfterWrite,
        trials,
        |_| {},
    );
    let mut out = table.render();
    out.push_str(
        "\nPaper: RobuSTore with unbalanced striping reads slightly slower than balanced but \
         still beats every baseline, with the lowest latency variation; I/O overhead unchanged.\n",
    );
    out
}
