//! Metadata-plane experiment (`metadata`): namespace scaling, recovery
//! time, and hard-asserted zero loss under seeded chaos.
//!
//! Drives the durable metastore directly — no data blocks, no erasure
//! coding — so the numbers isolate the metadata plane itself: the
//! per-commit cost of the quorum-replicated WAL append, the per-stat
//! cost of the sharded namespace image, and the cost of crash recovery
//! (log replay + winner election + read-repair) as the namespace grows
//! through three decades of file count.
//!
//! The acceptance bar is *flatness*: sharding (hash-ordered images,
//! O(1) point lookups) plus snapshot compaction (trigger
//! `max(snapshot_every, image size)`, one shared buffer per snapshot)
//! amortises the log to O(1) per operation, so the median per-commit
//! latency measured while growing 10⁵ → 10⁶ must stay within
//! [`FLAT_FACTOR`]× of the median measured growing 0 → 10⁴ (medians
//! over 512-op windows, so neither the rare amortised snapshot bursts
//! nor shared-host scheduler spikes decide the verdict; decade means
//! are reported alongside). Commits are real lifecycle ops (open →
//! allocate → commit → close), so the lock table and id allocator are
//! on the measured path.
//!
//! After the growth sweep, the store is crash-recovered three ways —
//! clean, with a strict minority of every shard's replicas down, and
//! with bit rot in one replica log tail per shard — and each recovery
//! hard-asserts **zero namespace loss**: every file committed is still
//! present (count plus a seeded sample of full-meta compares).
//!
//! Results land in `BENCH_metadata.json` (schema `{section, config,
//! threads, value, unit, host}`, matching `BENCH_tail.json`).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::time::Instant;

use rand::Rng;
use robustore_core::{AccessMode, CodingSpec, FileMeta, MemReplica, Metastore, MetastoreConfig};
use robustore_erasure::LtParams;
use robustore_simkit::report::Table;
use robustore_simkit::{MetaFaultKind, MetaFaultPlan, MetaFaultScenario, SeedSequence};

use crate::MASTER_SEED;

/// Median per-commit latency while growing the last decade must stay
/// within this factor of the first decade's — the "flat per-op cost"
/// bar.
pub const FLAT_FACTOR: f64 = 2.0;

const SHARDS: usize = 8;
const REPLICAS: usize = 3;

struct Row {
    section: &'static str,
    config: String,
    threads: usize,
    value: f64,
    unit: &'static str,
}

fn file_name(i: u64) -> String {
    format!("f-{i:07}")
}

fn file_meta(name: String, file_id: u64) -> FileMeta {
    FileMeta {
        name,
        file_id,
        size_bytes: 1 << 20,
        coding: CodingSpec {
            k: 8,
            n: 24,
            block_bytes: 64 << 10,
            params: LtParams::default(),
            seed: file_id,
        },
        layout: vec![(file_id as usize % SHARDS, vec![0, 1, 2])],
        odd_keys: BTreeSet::new(),
        checksums: BTreeMap::new(),
        owner: 1,
        version: 1,
    }
}

/// One full lifecycle commit: open for write, allocate an id, commit the
/// generation record, release the lock.
fn commit_one(store: &mut Metastore, i: u64) {
    let name = file_name(i);
    store
        .open(&name, AccessMode::Write)
        .expect("open new file for write");
    let id = store.allocate_file_id().expect("allocate id");
    store
        .commit(file_meta(name.clone(), id))
        .expect("commit file");
    store.close(&name, AccessMode::Write);
}

/// Clone out every shard's replica handles for chaos arming.
fn replica_handles(store: &Metastore) -> Vec<Vec<MemReplica>> {
    (0..store.shard_count())
        .map(|s| {
            (0..store.replica_count())
                .map(|r| store.mem_replica(s, r).expect("mem replica").clone())
                .collect()
        })
        .collect()
}

/// Crash-recover and hard-assert zero namespace loss: the count is
/// intact and a seeded sample of files stats back with identical meta.
fn recover_asserting_zero_loss(
    store: &mut Metastore,
    expect_files: u64,
    sample: &[u64],
    what: &str,
) -> f64 {
    let t0 = Instant::now();
    store
        .crash_and_recover()
        .unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        store.file_count() as u64,
        expect_files,
        "{what}: namespace lost files"
    );
    for &i in sample {
        let name = file_name(i);
        let meta = store
            .stat(&name)
            .unwrap_or_else(|| panic!("{what}: {name} lost"));
        assert_eq!(meta.name, name, "{what}: {name} stats wrong meta");
        assert!(meta.file_id > 0 || i == 0, "{what}: {name} id corrupted");
        assert_eq!(meta.coding.k, 8, "{what}: {name} coding corrupted");
    }
    secs
}

/// Run the metadata experiment. `--quick` (or `--trials 1`) shrinks the
/// decade sweep and skips the acceptance assertions.
pub fn metadata(trials: u64) -> String {
    let quick = trials <= 1;
    let decades: &[u64] = if quick {
        &[1_000, 10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let stat_probes: usize = if quick { 2_000 } else { 10_000 };
    let sample_size: usize = if quick { 200 } else { 1_000 };

    let seq = SeedSequence::new(MASTER_SEED ^ 0x3E7A);
    let mut store = Metastore::new(MetastoreConfig {
        shards: SHARDS,
        replicas: REPLICAS,
        ..MetastoreConfig::default()
    })
    .expect("in-memory metastore");

    let mut rows: Vec<Row> = Vec::new();
    let mut commit_ns: Vec<(u64, f64)> = Vec::new();

    // --- Growth sweep: commit latency and stat latency per decade -------
    // Per-decade latency is the MEDIAN over fixed 512-op windows: the
    // median is what a typical operation costs at that namespace size,
    // immune both to the rare amortised snapshot bursts (by design a
    // vanishing fraction of windows) and to scheduler noise on a shared
    // host. The mean over the decade is reported alongside for honesty
    // about total throughput.
    const WINDOW: u64 = 512;
    let mut committed = 0u64;
    for &target in decades {
        let batch = target - committed;
        let t0 = Instant::now();
        let mut windows: Vec<f64> = Vec::with_capacity((batch / WINDOW + 1) as usize);
        let mut win_start = Instant::now();
        for i in committed..target {
            commit_one(&mut store, i);
            if (i + 1 - committed).is_multiple_of(WINDOW) {
                windows.push(win_start.elapsed().as_secs_f64() / WINDOW as f64 * 1e9);
                win_start = Instant::now();
            }
        }
        let mean_commit = t0.elapsed().as_secs_f64() / batch as f64 * 1e9;
        windows.sort_by(|a, b| a.total_cmp(b));
        let per_commit = windows[windows.len() / 2];
        committed = target;

        let mut rng = seq.fork("stat-probes", target);
        let names: Vec<String> = (0..stat_probes)
            .map(|_| file_name(rng.gen_range(0..target)))
            .collect();
        let t1 = Instant::now();
        let mut found = 0usize;
        for name in &names {
            found += store.stat(name).is_some() as usize;
        }
        let per_stat = t1.elapsed().as_secs_f64() / stat_probes as f64 * 1e9;
        assert_eq!(found, stat_probes, "every committed file must stat");

        commit_ns.push((target, per_commit));
        rows.push(Row {
            section: "metadata-commit-latency",
            config: format!("files={target} median"),
            threads: 1,
            value: per_commit,
            unit: "ns/op",
        });
        rows.push(Row {
            section: "metadata-commit-latency",
            config: format!("files={target} mean"),
            threads: 1,
            value: mean_commit,
            unit: "ns/op",
        });
        rows.push(Row {
            section: "metadata-stat-latency",
            config: format!("files={target}"),
            threads: 1,
            value: per_stat,
            unit: "ns/op",
        });
    }
    let total = committed;
    assert_eq!(store.file_count() as u64, total);

    // Seeded sample of files every recovery must preserve bit-for-bit.
    let mut rng = seq.fork("loss-sample", 0);
    let sample: Vec<u64> = (0..sample_size).map(|_| rng.gen_range(0..total)).collect();

    // --- Clean crash recovery at full size ------------------------------
    let clean_secs = recover_asserting_zero_loss(&mut store, total, &sample, "clean recovery");
    rows.push(Row {
        section: "metadata-recovery",
        config: format!("clean files={total}"),
        threads: 1,
        value: clean_secs,
        unit: "s",
    });
    rows.push(Row {
        section: "metadata-recovery-rate",
        config: format!("clean files={total}"),
        threads: 1,
        value: total as f64 / clean_secs.max(1e-9),
        unit: "files/s",
    });

    // --- Chaos: minority replica loss -----------------------------------
    let handles = replica_handles(&store);
    let minority = MetaFaultPlan::generate(
        &MetaFaultScenario::MinorityLoss {
            per_replica_losses: REPLICAS,
        },
        SHARDS,
        REPLICAS,
        &seq,
    );
    for f in &minority.faults {
        if f.kind == MetaFaultKind::ReplicaDown {
            handles[f.shard][f.replica].set_down(true);
        }
    }
    let minority_secs =
        recover_asserting_zero_loss(&mut store, total, &sample, "minority-loss recovery");
    rows.push(Row {
        section: "metadata-chaos",
        config: "minority-loss files lost".into(),
        threads: 1,
        value: 0.0,
        unit: "files",
    });
    rows.push(Row {
        section: "metadata-recovery",
        config: format!("minority-down files={total}"),
        threads: 1,
        value: minority_secs,
        unit: "s",
    });
    for row in &handles {
        for replica in row {
            replica.set_down(false);
        }
    }

    // --- Chaos: bit rot in one replica log tail per shard ---------------
    // Commit a little churn first so every shard's logs are non-empty
    // past its snapshot (rot needs a tail to eat).
    for i in total..total + 64 {
        commit_one(&mut store, i);
    }
    let churned = total + 64;
    let rot = MetaFaultPlan::generate(
        &MetaFaultScenario::TailRot {
            shards: SHARDS,
            bytes: 17,
        },
        SHARDS,
        REPLICAS,
        &seq,
    );
    for f in &rot.faults {
        if let MetaFaultKind::CorruptTail { bytes } = f.kind {
            handles[f.shard][f.replica].corrupt_tail(bytes);
        }
    }
    let rot_secs = recover_asserting_zero_loss(&mut store, churned, &sample, "tail-rot recovery");
    rows.push(Row {
        section: "metadata-chaos",
        config: "tail-rot files lost".into(),
        threads: 1,
        value: 0.0,
        unit: "files",
    });
    rows.push(Row {
        section: "metadata-recovery",
        config: format!("tail-rot files={churned}"),
        threads: 1,
        value: rot_secs,
        unit: "s",
    });
    // Convergence: read-repair healed the rotten replicas, so a second
    // recovery finds nothing to truncate.
    let converged = store.recover().expect("post-rot recovery");
    let residue: u64 = converged.iter().map(|r| r.torn_bytes_dropped).sum();
    assert_eq!(residue, 0, "tail rot must converge after one read-repair");

    // --- Acceptance ------------------------------------------------------
    let (first_files, first_ns) = commit_ns[0];
    let (last_files, last_ns) = *commit_ns.last().expect("at least one decade");
    if !quick {
        assert!(
            last_ns <= FLAT_FACTOR * first_ns,
            "per-commit latency not flat: median {last_ns:.0} ns/op at {last_files} \
             files vs {first_ns:.0} ns/op at {first_files} files (> {FLAT_FACTOR}x)"
        );
    }

    // --- Report ----------------------------------------------------------
    let host = format!(
        "{}-{}-{}threads",
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"section\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
             \"value\": {:.3e}, \"unit\": \"{}\", \"host\": \"{}\"}}{}\n",
            r.section,
            r.config,
            r.threads,
            r.value,
            r.unit,
            host,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let json_note = match std::fs::write("BENCH_metadata.json", &json) {
        Ok(()) => "rows written to BENCH_metadata.json".to_string(),
        Err(e) => format!("could not write BENCH_metadata.json: {e}"),
    };

    let mut table = Table::new(
        format!(
            "Metadata plane: {SHARDS} shards x {REPLICAS} replicas, namespace grown to \
             {total} files, quorum-commit WAL + snapshot compaction ({host})"
        ),
        &["section", "config", "threads", "value", "unit"],
    );
    for r in &rows {
        table.row(vec![
            r.section.into(),
            r.config.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.value),
            r.unit.into(),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\nMedian per-commit latency {first_ns:.0} ns/op at {first_files} files -> \
         {last_ns:.0} ns/op at {last_files} files ({:.2}x; bar: <= {FLAT_FACTOR}x). \
         Crash recovery of {total} files took {clean_secs:.2}s clean, \
         {minority_secs:.2}s with a minority of every shard down, and \
         {rot_secs:.2}s with a rotten log tail per shard — zero files lost in \
         all three (hard-asserted on the count and a {}-file sample).\n{json_note}\n",
        last_ns / first_ns.max(1e-9),
        sample.len(),
    ));
    out
}
