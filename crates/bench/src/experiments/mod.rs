//! The experiment implementations, grouped by the evaluation section they
//! reproduce.

pub mod ablation;
pub mod cache;
pub mod coding;
pub mod competitive;
pub mod disk;
pub mod faults;
pub mod layoutvar;
pub mod metadata;
pub mod multiuser;
pub mod pipeline;
pub mod repair;
pub mod scrub;
pub mod tail;

use robustore_schemes::{run_trials, AccessConfig, TrialStats};
use robustore_simkit::report::Table;

use crate::MASTER_SEED;

/// Standard columns for a scheme-comparison sweep: the three §6.2.3
/// metrics plus mean latency for context.
pub fn metric_header(sweep: &str) -> Vec<&str> {
    // Leaked once per table construction; tables are few and small.
    vec![
        Box::leak(sweep.to_string().into_boxed_str()),
        "scheme",
        "bw (MB/s)",
        "lat (s)",
        "lat stdev (s)",
        "I/O overhead",
    ]
}

/// Append one (sweep-point, scheme) row.
pub fn metric_row(table: &mut Table, point: String, scheme: &str, s: &TrialStats) {
    table.row(vec![
        point,
        scheme.to_string(),
        format!("{:.1}", s.mean_bandwidth_mbps()),
        format!("{:.2}", s.mean_latency_secs()),
        format!("{:.3}", s.latency_stdev_secs()),
        format!("{:.0}%", s.mean_io_overhead() * 100.0),
    ]);
}

/// Run `cfg` for `trials` with a seed derived from the experiment id and
/// sweep position, so experiments are independent and reproducible.
pub fn trials_for(cfg: &AccessConfig, trials: u64, id: &str, point: u64) -> TrialStats {
    let seed = id
        .bytes()
        .fold(MASTER_SEED, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        })
        .wrapping_add(point.wrapping_mul(0x9E37_79B9));
    run_trials(cfg, trials, seed)
}
