#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of the RobuSTore
//! evaluation.
//!
//! Each experiment in [`experiments`] regenerates one paper artifact —
//! the same sweep, the same series, printed as a plain-text table. The
//! `xp` binary dispatches on experiment id (`xp fig6-6`, `xp all`, …) and
//! writes each result to `results/<id>.txt`.
//!
//! Absolute numbers differ from the paper's (our disk substrate is a
//! from-scratch model calibrated to the *shape* of Table 6-1, and the
//! coding benchmarks run on today's CPUs); the comparisons the paper
//! draws — who wins, by what factor, where the knees fall — are the
//! reproduction targets. See `EXPERIMENTS.md` at the repo root.

pub mod experiments;

/// Default trial count per configuration. The paper uses 100; the default
/// here keeps a full `xp all` run in minutes on one core. Override with
/// `--trials`.
pub const DEFAULT_TRIALS: u64 = 40;

/// Master seed for all experiments (deterministic output).
pub const MASTER_SEED: u64 = 0x0B05_7013;

/// One registered experiment.
pub struct Experiment {
    /// Id used on the command line and for the results file.
    pub id: &'static str,
    /// The paper artifacts it regenerates.
    pub covers: &'static str,
    /// Run it and return the rendered report.
    pub run: fn(trials: u64) -> String,
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    use experiments::*;
    vec![
        Experiment {
            id: "table5-1",
            covers: "Table 5-1: Reed-Solomon coding bandwidth vs K",
            run: coding::table5_1,
        },
        Experiment {
            id: "fig4-1",
            covers: "Figure 4-1: reassembly probability, replication vs erasure codes",
            run: coding::fig4_1,
        },
        Experiment {
            id: "fig5-1",
            covers: "Figure 5-1: LT reception overhead vs (C, delta) for K=128/512/1024",
            run: coding::fig5_1,
        },
        Experiment {
            id: "fig5-2",
            covers: "Figure 5-2: edges used in LT decoding vs (C, delta), K=1024",
            run: coding::fig5_2,
        },
        Experiment {
            id: "fig5-3",
            covers: "Figure 5-3: LT decoding bandwidth and reception overhead",
            run: coding::fig5_3,
        },
        Experiment {
            id: "table6-1",
            covers: "Table 6-1: disk bandwidth per (blocking factor, seq probability)",
            run: disk::table6_1,
        },
        Experiment {
            id: "fig6-5",
            covers: "Figure 6-5: background workload interval vs utilisation/foreground bandwidth",
            run: disk::fig6_5,
        },
        Experiment {
            id: "fig6-6",
            covers: "Figures 6-6/6-7/6-8: read vs number of disks (heterogeneous layout)",
            run: layoutvar::fig6_6,
        },
        Experiment {
            id: "fig6-9",
            covers: "Figures 6-9/6-10/6-11: read vs block size",
            run: layoutvar::fig6_9,
        },
        Experiment {
            id: "fig6-12",
            covers: "Figures 6-12/6-13/6-14: read vs network latency (1 GB and 128 MB)",
            run: layoutvar::fig6_12,
        },
        Experiment {
            id: "fig6-15",
            covers: "Figures 6-15/6-16/6-17: read vs data redundancy",
            run: layoutvar::fig6_15,
        },
        Experiment {
            id: "fig6-18",
            covers: "Figures 6-18/6-19/6-20: write vs data redundancy",
            run: layoutvar::fig6_18,
        },
        Experiment {
            id: "fig6-21",
            covers: "Figures 6-21/6-22/6-23: read-after-write (unbalanced striping) vs redundancy",
            run: layoutvar::fig6_21,
        },
        Experiment {
            id: "fig6-24",
            covers: "Figures 6-24/6-25: read vs background interval (homogeneous layout & load)",
            run: competitive::fig6_24,
        },
        Experiment {
            id: "fig6-26",
            covers: "Figures 6-26/6-27/6-28: read vs redundancy under heterogeneous competitive load",
            run: competitive::fig6_26,
        },
        Experiment {
            id: "fig6-29",
            covers: "Figures 6-29/6-30/6-31: write vs redundancy under heterogeneous competitive load",
            run: competitive::fig6_29,
        },
        Experiment {
            id: "fig6-32",
            covers: "Figures 6-32/6-33/6-34: read-after-write vs redundancy under competitive load",
            run: competitive::fig6_32,
        },
        Experiment {
            id: "fig6-35",
            covers: "Figures 6-35/6-36: filesystem-cache impact on bandwidth and variation",
            run: cache::fig6_35,
        },
        Experiment {
            id: "multiuser",
            covers: "Extension: concurrent clients — fairness and system throughput (§7.3 future work)",
            run: multiuser::multiuser,
        },
        Experiment {
            id: "coding-survey",
            covers: "Survey: bandwidth and reception across every implemented erasure code",
            run: coding::coding_survey,
        },
        Experiment {
            id: "bench-coding",
            covers: "Kernel benchmark: scalar vs vector vs simd coding kernels (writes BENCH_coding.json)",
            run: coding::bench_coding,
        },
        Experiment {
            id: "bench-pipeline",
            covers: "Pipeline benchmark: single- vs multi-threaded encode and trial fan-out (writes BENCH_pipeline.json)",
            run: pipeline::bench_pipeline,
        },
        Experiment {
            id: "ablation-lt",
            covers: "Ablation: stock vs improved LT construction (the §5.2.3 claims)",
            run: ablation::ablation_lt,
        },
        Experiment {
            id: "ablation-xor",
            covers: "Ablation: lazy vs greedy XOR decoding (the §5.2.3 lazy-XOR claim)",
            run: ablation::ablation_xor,
        },
        Experiment {
            id: "ablation-sched",
            covers: "Extension: disk queue discipline under heavy sharing (§5.4 future work)",
            run: ablation::ablation_sched,
        },
        Experiment {
            id: "ablation-cancel",
            covers: "Ablation: request cancellation on/off (the §5.3.3 claim)",
            run: ablation::ablation_cancel,
        },
        Experiment {
            id: "faults",
            covers: "Chaos extension: schemes under identical injected fault schedules (§6.3 operationalised)",
            run: faults::faults,
        },
        Experiment {
            id: "tail",
            covers: "Perf extension: open-loop tail latency, static vs queue-aware adaptive read waves (writes BENCH_tail.json)",
            run: tail::tail,
        },
        Experiment {
            id: "scrub",
            covers: "Self-healing extension: redundancy over time with/without scrubbing under seeded loss + bit rot (writes BENCH_scrub.json)",
            run: scrub::scrub,
        },
        Experiment {
            id: "repair",
            covers: "Repair extension: eager vs rate-limited repair under foreground load, plus predicted MTTDL per scheme (writes BENCH_repair.json)",
            run: repair::repair,
        },
        Experiment {
            id: "metadata",
            covers: "Metadata extension: sharded WAL namespace scaling 10^4->10^6 files, crash-recovery time, zero loss under seeded replica chaos (writes BENCH_metadata.json)",
            run: metadata::metadata,
        },
    ]
}

/// Look up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert_eq!(n, 31, "one entry per paper artifact group plus extensions");
    }

    #[test]
    fn find_works() {
        assert!(find("fig6-6").is_some());
        assert!(find("nope").is_none());
    }
}
