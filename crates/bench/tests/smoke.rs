//! Smoke tests: every registered experiment runs and produces a
//! non-trivial report. Fast experiments run at tiny trial counts in the
//! normal suite; the full registry sweep is `#[ignore]`d for CI time.

use robustore_bench::{find, registry};

fn run(id: &str, trials: u64) -> String {
    let e = find(id).unwrap_or_else(|| panic!("experiment {id} not registered"));
    let out = (e.run)(trials);
    assert!(
        out.lines().count() > 4,
        "{id} produced a trivial report:\n{out}"
    );
    assert!(out.contains('#'), "{id} report lacks a title");
    out
}

#[test]
fn fast_experiments_run() {
    for id in ["table6-1", "fig6-5", "fig4-1", "ablation-lt"] {
        run(id, 2);
    }
}

#[test]
fn scheme_sweep_experiments_run() {
    for id in ["fig6-6", "fig6-15", "fig6-24"] {
        let out = run(id, 2);
        assert!(
            out.contains("RobuSTore"),
            "{id} should report RobuSTore rows"
        );
        assert!(out.contains("RAID-0"), "{id} should report RAID-0 rows");
    }
}

#[test]
#[ignore = "runs the entire registry; invoke with --ignored for the full sweep"]
fn every_registered_experiment_runs() {
    for e in registry() {
        run(e.id, 2);
    }
}
