//! Disk-model throughput: simulated requests per second of host time.
//!
//! The evaluation sweeps run hundreds of thousands of simulated disk
//! requests; this bench keeps the model's host-side cost visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robustore_diskmodel::request::{Direction, DiskRequest, RequestId, StreamId};
use robustore_diskmodel::{Disk, DiskGeometry, LayoutConfig};
use robustore_simkit::{SeedSequence, SimTime};

fn bench_disk(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk_service");
    g.sample_size(20);
    const REQUESTS: u64 = 1_000;
    for (label, layout) in [
        ("sequential", LayoutConfig::grid_point(1024, 1.0)),
        ("random_4k_runs", LayoutConfig::grid_point(8, 0.0)),
    ] {
        g.throughput(Throughput::Elements(REQUESTS));
        g.bench_with_input(BenchmarkId::new("layout", label), &layout, |b, &layout| {
            b.iter(|| {
                let mut disk = Disk::new(
                    0,
                    DiskGeometry::default(),
                    layout,
                    SeedSequence::new(1).fork("d", 0),
                );
                let mut now = SimTime::ZERO;
                for i in 0..REQUESTS {
                    let done = disk
                        .submit(
                            now,
                            DiskRequest {
                                id: RequestId(i),
                                stream: StreamId::Foreground(0),
                                direction: Direction::Read,
                                sectors: 2048,
                                tag: 0,
                            },
                        )
                        .unwrap();
                    disk.on_complete(done);
                    now = done;
                }
                now
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_disk);
criterion_main!(benches);
