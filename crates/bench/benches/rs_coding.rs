//! Reed–Solomon coding throughput vs K (Table 5-1).
//!
//! The reproduction target is the *scaling shape*: bandwidth halves as K
//! doubles, which is what disqualifies optimal codes for long code words
//! (§5.2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robustore_erasure::ReedSolomon;

const DATA: usize = 4 << 20;

fn bench_rs(c: &mut Criterion) {
    let mut enc = c.benchmark_group("rs_encode");
    enc.sample_size(10);
    for k in [4usize, 8, 16, 32] {
        let rs = ReedSolomon::new(k, 2 * k).unwrap();
        let block = DATA / k;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..block).map(|j| ((i + j) % 256) as u8).collect())
            .collect();
        enc.throughput(Throughput::Bytes(DATA as u64));
        enc.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| rs.encode(&data).unwrap());
        });
    }
    enc.finish();

    let mut dec = c.benchmark_group("rs_decode");
    dec.sample_size(10);
    for k in [4usize, 8, 16, 32] {
        let rs = ReedSolomon::new(k, 2 * k).unwrap();
        let block = DATA / k;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..block).map(|j| ((i + j) % 256) as u8).collect())
            .collect();
        let coded = rs.encode(&data).unwrap();
        // Decode from the parity half: forces a full matrix solve.
        let rx: Vec<_> = (k..2 * k).map(|i| (i, coded[i].clone())).collect();
        dec.throughput(Throughput::Bytes(DATA as u64));
        dec.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| rs.decode(&rx).unwrap());
        });
    }
    dec.finish();
}

criterion_group!(benches, bench_rs);
criterion_main!(benches);
