//! LT coding throughput (Figure 5-3 / §5.2.4).
//!
//! The paper's claim: the improved LT implementation decodes at hundreds
//! of MB/s (394 MB/s at C=1, δ=0.1 on a 2.8 GHz Opteron), fast enough to
//! saturate a multi-Gb/s NIC. Run with `cargo bench -p robustore-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::seq::SliceRandom;
use robustore_erasure::lt::{LtCode, LtDecoder};
use robustore_erasure::LtParams;
use robustore_simkit::SeedSequence;

const BLOCK: usize = 64 << 10;

fn data_for(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..BLOCK).map(|j| ((i * 31 + j) % 256) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("lt_encode");
    g.sample_size(10);
    for k in [256usize, 1024] {
        let n = 3 * k;
        let code = LtCode::plan(k, n, LtParams::recommended(), 7).unwrap();
        let data = data_for(k);
        g.throughput(Throughput::Bytes((n * BLOCK) as u64));
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| code.encode(&data).unwrap());
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("lt_decode");
    g.sample_size(10);
    for (label, params) in [
        ("c1_d0.5", LtParams::default()),
        ("c1_d0.1", LtParams::recommended()),
    ] {
        let k = 1024usize;
        let n = 3 * k;
        let code = LtCode::plan(k, n, params, 11).unwrap();
        let data = data_for(k);
        let coded = code.encode(&data).unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SeedSequence::new(3).fork("order", 0);
        order.shuffle(&mut rng);
        g.throughput(Throughput::Bytes((k * BLOCK) as u64));
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut dec = LtDecoder::new(&code, BLOCK);
                for &j in &order {
                    if dec.receive(j, coded[j].clone()) {
                        break;
                    }
                }
                assert!(dec.is_complete());
                dec.received()
            });
        });
    }
    g.finish();
}

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("lt_plan");
    g.sample_size(10);
    for k in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                LtCode::plan(k, 4 * k, LtParams::default(), seed).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_plan);
criterion_main!(benches);
