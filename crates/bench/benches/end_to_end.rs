//! End-to-end access simulation cost: one trial per scheme.
//!
//! A reduced configuration (64 MB over 8 of 16 disks) of the Figure 6-6
//! baseline, measuring how fast the full engine — cluster build, LT plan,
//! event loop, metrics — turns around one access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robustore_schemes::{run_access, AccessConfig, SchemeKind};
use robustore_simkit::SeedSequence;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_trial");
    g.sample_size(20);
    for scheme in SchemeKind::ALL {
        let mut cfg = AccessConfig::default().with_scheme(scheme).with_disks(8);
        cfg.data_bytes = 64 << 20;
        cfg.cluster.num_disks = 16;
        g.bench_with_input(BenchmarkId::new("scheme", scheme.name()), &cfg, |b, cfg| {
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                run_access(cfg, &SeedSequence::new(77).subsequence("trial", t))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
