//! Trial orchestration: build a cluster, select disks, place data, run the
//! engine, repeat.
//!
//! Each trial draws fresh per-disk layouts, background intervals, disk
//! selection, and LT graphs from its own seed subsequence — the paper's
//! per-access randomisation (§6.2.5: "in each access, disks are randomly
//! selected"; "the data in each access has a random intra-disk layout"),
//! which is what produces the latency variation the robustness metric
//! measures.

use rand::seq::SliceRandom;
use robustore_cluster::Cluster;
use robustore_erasure::lt::LtCode;
use robustore_simkit::{FaultPlan, SeedSequence};

use crate::adaptive::AdaptivePlanner;
use crate::config::{AccessConfig, AccessKind, SchemeKind, Striping};
use crate::engine::{Engine, WriteResult};
use crate::outcome::{AccessOutcome, TrialStats};
use crate::placement::Placement;
use crate::tracker::ReadTracker;

/// Choose `count` distinct disks from the pool, in random order.
pub(crate) fn select_disks(pool: usize, count: usize, seq: &SeedSequence) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..pool).collect();
    let mut rng = seq.fork("disk-select", 0);
    ids.shuffle(&mut rng);
    ids.truncate(count);
    ids
}

/// Balanced placement for the scheme.
fn balanced_placement(cfg: &AccessConfig) -> Placement {
    let k = cfg.k();
    let h = cfg.num_disks;
    match cfg.scheme {
        SchemeKind::Raid0 => Placement::raid0(k, h),
        SchemeKind::RraidS | SchemeKind::RraidA => Placement::rraid(k, cfg.n(), h),
        SchemeKind::RobuStore => Placement::coded_balanced(k, cfg.n(), h),
    }
}

fn build_cluster(cfg: &AccessConfig, seq: &SeedSequence) -> Cluster {
    Cluster::build(cfg.cluster.clone(), cfg.layout, cfg.background, seq)
}

/// Run one read against an existing cluster with the given disk selection
/// and placement. The caller controls cluster lifetime, so consecutive
/// reads can share filer caches (the Figure 6-35/36 experiment).
pub fn read_on_cluster(
    cfg: &AccessConfig,
    cluster: &mut Cluster,
    disks: &[usize],
    placement: &Placement,
    seq: &SeedSequence,
) -> AccessOutcome {
    // The LT plan is owned here and borrowed by the tracker.
    let code: Option<LtCode> = match cfg.scheme {
        SchemeKind::RobuStore => Some(
            LtCode::plan(
                placement.k,
                placement.total_blocks(),
                cfg.lt,
                seq.seed_for("lt-plan", 0),
            )
            .expect("valid LT parameters"),
        ),
        _ => None,
    };
    let tracker = match &code {
        Some(c) => ReadTracker::lt(c),
        None => ReadTracker::coverage(placement.k),
    };
    let adaptive = (cfg.scheme == SchemeKind::RraidA)
        .then(|| AdaptivePlanner::new(placement.k, cfg.num_disks));
    let faults = FaultPlan::generate(&cfg.faults, disks.len(), seq);
    let engine = Engine::new(cfg, cluster, disks, placement, faults);
    engine.run_read(tracker, adaptive)
}

/// Run one read over a freshly built cluster with the given placement.
fn run_read_once(cfg: &AccessConfig, placement: &Placement, seq: &SeedSequence) -> AccessOutcome {
    let mut cluster = build_cluster(cfg, &seq.subsequence("cluster", 0));
    let disks = select_disks(cluster.num_disks(), cfg.num_disks, seq);
    read_on_cluster(cfg, &mut cluster, &disks, placement, seq)
}

/// Run the same read twice on one cluster — cold then warm — so the
/// second pass can hit whatever the filer caches retained (Figures
/// 6-35/6-36). Without caches the two passes are statistically identical.
pub fn run_read_cold_warm(
    cfg: &AccessConfig,
    seq: &SeedSequence,
) -> (AccessOutcome, AccessOutcome) {
    cfg.validate().expect("invalid access config");
    let placement = balanced_placement(cfg);
    let mut cluster = build_cluster(cfg, &seq.subsequence("cluster", 0));
    let disks = select_disks(cluster.num_disks(), cfg.num_disks, seq);
    let cold = read_on_cluster(
        cfg,
        &mut cluster,
        &disks,
        &placement,
        &seq.subsequence("cold", 0),
    );
    let warm = read_on_cluster(
        cfg,
        &mut cluster,
        &disks,
        &placement,
        &seq.subsequence("warm", 0),
    );
    (cold, warm)
}

/// Run one write against an existing cluster. `seq` seeds the write's
/// fault schedule (and nothing else — the write itself is deterministic
/// given the cluster and disk selection).
pub fn write_on_cluster(
    cfg: &AccessConfig,
    cluster: &mut Cluster,
    disks: &[usize],
    seq: &SeedSequence,
) -> WriteResult {
    let placement = balanced_placement(cfg);
    let faults = FaultPlan::generate(&cfg.faults, disks.len(), seq);
    let engine = Engine::new(cfg, cluster, disks, &placement, faults);
    engine.run_write(cfg.n())
}

/// Run one write over a freshly built cluster. Returns metrics plus the
/// committed layout.
fn run_write_once(cfg: &AccessConfig, seq: &SeedSequence) -> WriteResult {
    let mut cluster = build_cluster(cfg, &seq.subsequence("cluster", 0));
    let disks = select_disks(cluster.num_disks(), cfg.num_disks, seq);
    write_on_cluster(cfg, &mut cluster, &disks, seq)
}

/// Run a §6.2.4-style access *sequence* — mixed reads and writes from one
/// client session against a single cluster (filer caches persist across
/// the sequence; each access selects its own random disks). Reads access
/// balanced layouts of previously-written-sized segments; `ReadAfterWrite`
/// entries are not meaningful inside a sequence and are treated as reads.
pub fn run_sequence(
    cfg: &AccessConfig,
    ops: &[AccessKind],
    seq: &SeedSequence,
) -> Vec<AccessOutcome> {
    cfg.validate().expect("invalid access config");
    let mut cluster = build_cluster(cfg, &seq.subsequence("cluster", 0));
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let op_seq = seq.subsequence("op", i as u64);
        let disks = select_disks(cluster.num_disks(), cfg.num_disks, &op_seq);
        let outcome = match op {
            AccessKind::Write => {
                let mut c = cfg.clone();
                c.kind = AccessKind::Write;
                write_on_cluster(&c, &mut cluster, &disks, &op_seq).outcome
            }
            AccessKind::Read | AccessKind::ReadAfterWrite => {
                let mut c = cfg.clone();
                c.kind = AccessKind::Read;
                let placement = balanced_placement(&c);
                read_on_cluster(&c, &mut cluster, &disks, &placement, &op_seq)
            }
        };
        out.push(outcome);
    }
    out
}

/// Turn a speculative write's committed block lists into a read placement,
/// renumbering the (symbolic, symmetric) coded ids to 0..total.
fn committed_placement(k: usize, committed: &[Vec<u32>]) -> Placement {
    let mut next = 0u32;
    let lists: Vec<Vec<u32>> = committed
        .iter()
        .map(|slot| {
            slot.iter()
                .map(|_| {
                    let id = next;
                    next += 1;
                    id
                })
                .collect()
        })
        .collect();
    Placement::from_lists(k, lists)
}

/// Run a single access described by `cfg`, deterministically from `seq`.
///
/// * `Read` — balanced striping (RobuSTore with `Striping::Unbalanced`
///   first simulates the speculative write that produces the skew).
/// * `Write` — returns the write's metrics.
/// * `ReadAfterWrite` — RobuSTore writes speculatively, then reads the
///   committed (unbalanced) layout over an *independently drawn* cluster —
///   the paper's assumption that disk performance changes between write
///   and read. The baselines write uniformly, so their read-after-write
///   equals a balanced read.
pub fn run_access(cfg: &AccessConfig, seq: &SeedSequence) -> AccessOutcome {
    cfg.validate().expect("invalid access config");
    let unbalanced_read = cfg.scheme == SchemeKind::RobuStore
        && (cfg.kind == AccessKind::ReadAfterWrite
            || (cfg.kind == AccessKind::Read && cfg.striping == Striping::Unbalanced));
    match cfg.kind {
        AccessKind::Write => run_write_once(cfg, &seq.subsequence("write", 0)).outcome,
        AccessKind::Read | AccessKind::ReadAfterWrite => {
            if unbalanced_read {
                let write_cfg = AccessConfig {
                    kind: AccessKind::Write,
                    ..cfg.clone()
                };
                let wr = run_write_once(&write_cfg, &seq.subsequence("write", 0));
                if wr.outcome.failed {
                    return wr.outcome;
                }
                let placement = committed_placement(cfg.k(), &wr.committed_per_slot);
                run_read_once(cfg, &placement, &seq.subsequence("read", 0))
            } else {
                let placement = balanced_placement(cfg);
                run_read_once(cfg, &placement, &seq.subsequence("read", 0))
            }
        }
    }
}

/// Run `trials` independent accesses and aggregate the metrics. Trials run
/// in parallel across OS threads (one per available core, capped by the
/// trial count); results are deterministic in (`cfg`, `trials`,
/// `master_seed`) regardless of thread count — see
/// [`run_trials_threaded`] for why.
pub fn run_trials(cfg: &AccessConfig, trials: u64, master_seed: u64) -> TrialStats {
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    run_trials_threaded(cfg, trials, master_seed, n_threads)
}

/// [`run_trials`] with an explicit worker-thread count (1 = sequential).
///
/// Determinism is by construction, not by luck:
/// * every trial draws from its own label-indexed seed subsequence
///   (`root.subsequence("trial", i)`), so a trial's randomness depends
///   only on (`master_seed`, trial index) — never on which thread ran it
///   or in what order;
/// * each trial writes its outcome into a preassigned slot, and the
///   aggregation folds the slots in index order — [`TrialStats`]'s
///   floating-point accumulations see the exact same operand sequence at
///   any thread count, so the aggregate is *byte-identical*, not merely
///   statistically equal (pinned by a regression test).
pub fn run_trials_threaded(
    cfg: &AccessConfig,
    trials: u64,
    master_seed: u64,
    threads: usize,
) -> TrialStats {
    let root = SeedSequence::new(master_seed);
    // Cap the fan-out at the machine's real parallelism: trials are CPU
    // bound, so threads beyond the core count only add scheduler churn
    // (on a 1-core host, 2 workers ran *slower* than 1). Determinism is
    // unaffected — trial seeds and slots are indexed, not thread-owned.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(usize::MAX);
    let n_threads = threads.max(1).min(hw).min(trials.max(1) as usize);
    let mut outcomes: Vec<Option<AccessOutcome>> = vec![None; trials as usize];
    let chunk = trials.div_ceil(n_threads as u64).max(1);
    std::thread::scope(|scope| {
        for (tid, slice) in outcomes.chunks_mut(chunk as usize).enumerate() {
            let cfg = &*cfg;
            scope.spawn(move || {
                let base = tid as u64 * chunk;
                for (i, slot) in slice.iter_mut().enumerate() {
                    let seq = root.subsequence("trial", base + i as u64);
                    *slot = Some(run_access(cfg, &seq));
                }
            });
        }
    });
    let mut stats = TrialStats::new();
    for o in outcomes.into_iter().flatten() {
        stats.push(&o);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_simkit::SimDuration;

    /// A small, fast configuration: 64 MB over 8 disks.
    fn small(scheme: SchemeKind) -> AccessConfig {
        let mut cfg = AccessConfig::default().with_scheme(scheme).with_disks(8);
        cfg.data_bytes = 64 << 20;
        cfg.cluster.num_disks = 16;
        cfg
    }

    #[test]
    fn read_completes_for_every_scheme() {
        for scheme in SchemeKind::ALL {
            let cfg = small(scheme);
            let o = run_access(&cfg, &SeedSequence::new(7));
            assert!(o.latency > SimDuration::ZERO, "{scheme:?}");
            assert!(o.bandwidth() > 0.0, "{scheme:?}");
            assert!(
                o.network_bytes >= o.data_bytes,
                "{scheme:?}: must move at least the data"
            );
        }
    }

    #[test]
    fn write_completes_for_every_scheme() {
        for scheme in SchemeKind::ALL {
            let cfg = small(scheme).with_kind(AccessKind::Write);
            let o = run_access(&cfg, &SeedSequence::new(8));
            assert!(o.bandwidth() > 0.0, "{scheme:?}");
            // Writes move ≥ (1+D)·data for redundant schemes, ≥ data for RAID-0.
            if scheme.uses_redundancy() {
                assert!(
                    o.io_overhead() >= 2.9,
                    "{scheme:?}: 3x redundancy write overhead, got {}",
                    o.io_overhead()
                );
            }
        }
    }

    #[test]
    fn read_after_write_completes() {
        for scheme in [SchemeKind::RobuStore, SchemeKind::RraidA] {
            let cfg = small(scheme).with_kind(AccessKind::ReadAfterWrite);
            let o = run_access(&cfg, &SeedSequence::new(9));
            assert!(o.bandwidth() > 0.0, "{scheme:?}");
        }
    }

    #[test]
    fn run_access_is_deterministic() {
        let cfg = small(SchemeKind::RobuStore);
        let a = run_access(&cfg, &SeedSequence::new(10));
        let b = run_access(&cfg, &SeedSequence::new(10));
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.network_bytes, b.network_bytes);
    }

    /// Multi-threaded trial fan-out must aggregate *byte-identically* to
    /// the single-threaded run: every float compared by bit pattern, every
    /// counter exactly — at several thread counts, including ones that
    /// split the trials into ragged chunks.
    #[test]
    fn trial_fanout_is_byte_identical_across_thread_counts() {
        let cfg = small(SchemeKind::RobuStore);
        let trials = 6;
        let base = run_trials_threaded(&cfg, trials, 42, 1);
        for threads in [2usize, 3, 4, 16] {
            let par = run_trials_threaded(&cfg, trials, 42, threads);
            let pairs = [
                (base.bandwidth.mean(), par.bandwidth.mean(), "bw mean"),
                (base.bandwidth.stdev(), par.bandwidth.stdev(), "bw stdev"),
                (base.latency.mean(), par.latency.mean(), "lat mean"),
                (base.latency.stdev(), par.latency.stdev(), "lat stdev"),
                (
                    base.io_overhead.mean(),
                    par.io_overhead.mean(),
                    "io overhead",
                ),
                (
                    base.reception_overhead.mean(),
                    par.reception_overhead.mean(),
                    "reception",
                ),
            ];
            for (a, b, what) in pairs {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{what} diverges at {threads} threads: {a} vs {b}"
                );
            }
            assert_eq!(base.failures, par.failures, "threads={threads}");
            assert_eq!(
                base.served_requests, par.served_requests,
                "threads={threads}"
            );
            assert_eq!(
                base.cancelled_requests, par.cancelled_requests,
                "threads={threads}"
            );
            assert_eq!(base.trials(), par.trials(), "threads={threads}");
        }
    }

    #[test]
    fn encode_model_orders_write_latencies() {
        // No encode charge ≤ streamed encode ≤ barriered encode: streaming
        // hides encode time behind disk I/O, the barrier serialises it in
        // front, and turning the model off reproduces the legacy numbers.
        let seq = SeedSequence::new(33);
        let base_cfg = small(SchemeKind::RobuStore).with_kind(AccessKind::Write);
        let none = run_access(&base_cfg, &seq);
        // Slow enough (50 MB/s) that encode time is material for 64 MB.
        let stream = run_access(&base_cfg.clone().with_encode(50e6, false), &seq);
        let barrier = run_access(&base_cfg.clone().with_encode(50e6, true), &seq);
        assert!(
            none.latency <= stream.latency,
            "encode time cannot speed a write up"
        );
        assert!(
            stream.latency < barrier.latency,
            "streaming must beat the encode barrier: {:?} vs {:?}",
            stream.latency,
            barrier.latency
        );
        // The model leaves the legacy path bit-identical when off.
        let again = run_access(&base_cfg, &seq);
        assert_eq!(none.latency, again.latency);
        assert_eq!(none.network_bytes, again.network_bytes);
    }

    #[test]
    fn trials_differ_across_seeds() {
        let cfg = small(SchemeKind::RobuStore);
        let a = run_access(&cfg, &SeedSequence::new(1).subsequence("trial", 0));
        let b = run_access(&cfg, &SeedSequence::new(1).subsequence("trial", 1));
        assert_ne!(
            a.latency, b.latency,
            "independent trials should not coincide exactly"
        );
    }

    #[test]
    fn run_trials_aggregates_and_is_thread_invariant() {
        let cfg = small(SchemeKind::Raid0);
        let s = run_trials(&cfg, 6, 42);
        assert_eq!(s.trials(), 6);
        assert!(s.mean_bandwidth_mbps() > 0.0);
        // Determinism: re-running yields the identical aggregate.
        let s2 = run_trials(&cfg, 6, 42);
        assert_eq!(s.bandwidth.mean(), s2.bandwidth.mean());
        assert_eq!(s.latency.stdev(), s2.latency.stdev());
    }

    #[test]
    fn robustore_beats_raid0_on_heterogeneous_reads() {
        // The paper's headline (Figure 6-6): with heterogeneous layouts
        // and enough disks, RobuSTore's bandwidth is a large multiple of
        // RAID-0's. Small version: 64 MB over 8 of 16 disks, 5 trials.
        let robusto = run_trials(&small(SchemeKind::RobuStore), 5, 77);
        let raid0 = run_trials(&small(SchemeKind::Raid0), 5, 77);
        let ratio = robusto.mean_bandwidth_mbps() / raid0.mean_bandwidth_mbps();
        assert!(
            ratio > 2.0,
            "RobuSTore {:.1} MB/s vs RAID-0 {:.1} MB/s (ratio {ratio:.2})",
            robusto.mean_bandwidth_mbps(),
            raid0.mean_bandwidth_mbps()
        );
    }

    #[test]
    fn robustore_read_overhead_is_moderate() {
        // LT reception overhead runs high at this test's small K = 64
        // (the paper's 40–50% figure is for K = 1024, checked in the
        // integration suite); it must still stay far below RRAID-S's
        // ~200%, i.e. well under the 3x stored redundancy.
        let o = run_access(&small(SchemeKind::RobuStore), &SeedSequence::new(13));
        assert!(
            o.io_overhead() < 1.8,
            "RobuSTore I/O overhead too high: {}",
            o.io_overhead()
        );
        assert!(o.reception_overhead > 0.0);
    }

    #[test]
    fn warm_read_benefits_from_filer_cache() {
        let mut cfg = small(SchemeKind::Raid0);
        cfg.cluster.cache_bytes = Some(256 << 20); // plenty for 64 MB
        let (cold, warm) = run_read_cold_warm(&cfg, &SeedSequence::new(21));
        assert!(warm.cache_hit_blocks > 0, "second pass must hit the cache");
        assert!(
            warm.latency < cold.latency,
            "cached read should be faster: cold {} vs warm {}",
            cold.latency,
            warm.latency
        );
        // Without a cache the two passes perform equivalently.
        let mut nocache = small(SchemeKind::Raid0);
        nocache.cluster.cache_bytes = None;
        let (c2, w2) = run_read_cold_warm(&nocache, &SeedSequence::new(21));
        assert_eq!(w2.cache_hit_blocks, 0);
        let ratio = w2.latency.as_secs_f64() / c2.latency.as_secs_f64();
        assert!((0.5..2.0).contains(&ratio), "uncached passes comparable");
    }

    #[test]
    fn single_disk_accesses_complete() {
        // Degenerate parallelism: one disk serves everything.
        for scheme in SchemeKind::ALL {
            let mut cfg = small(scheme).with_disks(1);
            cfg.data_bytes = 8 << 20;
            let o = run_access(&cfg, &SeedSequence::new(51));
            assert!(!o.failed, "{scheme:?}");
            assert!(o.bandwidth() > 0.0, "{scheme:?}");
            let w = run_access(&cfg.with_kind(AccessKind::Write), &SeedSequence::new(52));
            assert!(!w.failed);
        }
    }

    #[test]
    fn one_block_segment_roundtrips() {
        // K = 1: the smallest possible code word.
        for scheme in SchemeKind::ALL {
            let mut cfg = small(scheme).with_disks(4);
            cfg.data_bytes = 1 << 20;
            cfg.block_bytes = 1 << 20;
            let o = run_access(&cfg, &SeedSequence::new(53));
            assert!(!o.failed, "{scheme:?}");
            assert!(o.blocks_at_completion >= 1, "{scheme:?}");
        }
    }

    #[test]
    fn zero_rtt_is_legal() {
        let mut cfg = small(SchemeKind::RobuStore);
        cfg.cluster.rtt = SimDuration::ZERO;
        let o = run_access(&cfg, &SeedSequence::new(54));
        assert!(!o.failed);
        assert!(o.bandwidth() > 0.0);
    }

    #[test]
    fn mixed_sequences_complete_and_benefit_from_caches() {
        // A read-write-read-read session (§6.2.4's mixed sequences) on one
        // cluster with filer caches: later reads of same-shaped segments
        // run at least as fast as the cold one on average.
        let mut cfg = small(SchemeKind::RobuStore);
        cfg.cluster.cache_bytes = Some(512 << 20);
        let ops = [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::Read,
            AccessKind::Read,
        ];
        let outcomes = run_sequence(&cfg, &ops, &SeedSequence::new(41));
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert!(!o.failed, "op {i}");
            assert!(o.bandwidth() > 0.0, "op {i}");
        }
        // Determinism holds for sequences too.
        let again = run_sequence(&cfg, &ops, &SeedSequence::new(41));
        assert_eq!(outcomes[3].latency, again[3].latency);
    }

    #[test]
    fn erasure_coding_survives_disk_failures_raid0_does_not() {
        // §4.1.3: redundancy lets RobuSTore ride through dead servers.
        let mut robusto = small(SchemeKind::RobuStore);
        robusto.failed_disks = 2; // 2 of 8 disks down, 3x redundancy
        let o = run_access(&robusto, &SeedSequence::new(31));
        assert!(!o.failed, "RobuSTore should survive 2/8 failures");
        assert!(o.bandwidth() > 0.0);

        let mut raid0 = small(SchemeKind::Raid0);
        raid0.failed_disks = 1;
        let o = run_access(&raid0, &SeedSequence::new(32));
        assert!(o.failed, "RAID-0 cannot survive any failure");

        // Replication survives while a surviving copy exists for every
        // block: 4 copies rotated over 8 disks tolerate 2 adjacent losses.
        let mut rraid = small(SchemeKind::RraidS);
        rraid.failed_disks = 2;
        let o = run_access(&rraid, &SeedSequence::new(33));
        assert!(!o.failed, "RRAID-S should survive 2/8 failures at 4 copies");
    }

    #[test]
    fn failed_writes_are_reported() {
        // Uniform-striping writes need every disk; a dead one fails the
        // write. Speculative writing shifts the blocks to live disks.
        let mut rraid = small(SchemeKind::RraidS).with_kind(AccessKind::Write);
        rraid.failed_disks = 1;
        let o = run_access(&rraid, &SeedSequence::new(34));
        assert!(o.failed, "uniform write to a dead disk must fail");

        let mut robusto = small(SchemeKind::RobuStore).with_kind(AccessKind::Write);
        robusto.failed_disks = 2;
        let o = run_access(&robusto, &SeedSequence::new(35));
        assert!(!o.failed, "speculative write routes around dead disks");
    }

    #[test]
    fn trial_stats_count_failures() {
        let mut cfg = small(SchemeKind::Raid0);
        cfg.failed_disks = 1;
        let s = run_trials(&cfg, 4, 36);
        assert_eq!(s.failures, 4);
        assert_eq!(s.trials(), 0);
    }

    #[test]
    fn raid0_has_near_zero_read_overhead() {
        let o = run_access(&small(SchemeKind::Raid0), &SeedSequence::new(14));
        assert!(
            o.io_overhead().abs() < 0.01,
            "RAID-0 reads exactly the data: {}",
            o.io_overhead()
        );
    }
}
