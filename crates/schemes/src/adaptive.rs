//! RRAID-A's client-side adaptive planner (Figure 6-2b).
//!
//! The reader first requests the blocks of replica 0 from each disk. When
//! some disk A finishes its assignment, the client finds the disk B with
//! the most outstanding blocks that A also stores, splits B's outstanding
//! list in half, cancels the second half at B, and requests those blocks
//! from A — classic work stealing, one network round-trip per round. This
//! avoids RRAID-S's duplicate reads but pays multiple RTTs, which is why
//! RRAID-A alone is latency-sensitive (Figures 6-12..6-14).
//!
//! This module is pure bookkeeping (no simulation time): the engine tells
//! it about request/receive/cancel events and asks it to plan steals.

use crate::placement::Placement;

/// One planned steal: take `semantics` away from `victim` and read them
/// from `thief` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Steal {
    /// Slot that ran out of work.
    pub thief: usize,
    /// Slot the work is taken from.
    pub victim: usize,
    /// Original-block ids moved (victim's later half).
    pub semantics: Vec<u32>,
}

/// Client-side view of which originals are outstanding on which disk.
#[derive(Debug)]
pub struct AdaptivePlanner {
    /// Outstanding (requested, not received, not cancelled) originals per
    /// slot, in request order.
    pending: Vec<Vec<u32>>,
    /// Originals already received (no point stealing them).
    received: Vec<bool>,
}

impl AdaptivePlanner {
    /// Planner over `k` originals and `slots` disks.
    pub fn new(k: usize, slots: usize) -> Self {
        AdaptivePlanner {
            pending: vec![Vec::new(); slots],
            received: vec![false; k],
        }
    }

    /// Record that `semantic` was requested from `slot`.
    pub fn on_request(&mut self, slot: usize, semantic: u32) {
        self.pending[slot].push(semantic);
    }

    /// Record the arrival of `semantic` (from any slot). Returns the slots
    /// that are now idle and should try to steal.
    pub fn on_receive(&mut self, semantic: u32) -> Vec<usize> {
        if self.received[semantic as usize] {
            return Vec::new();
        }
        self.received[semantic as usize] = true;
        let mut newly_idle = Vec::new();
        for (slot, pend) in self.pending.iter_mut().enumerate() {
            let before = pend.len();
            pend.retain(|&s| s != semantic);
            if before > 0 && pend.is_empty() {
                newly_idle.push(slot);
            }
        }
        newly_idle
    }

    /// Outstanding originals on `slot` (client view).
    pub fn pending(&self, slot: usize) -> &[u32] {
        &self.pending[slot]
    }

    /// Whether every original has been received.
    pub fn all_received(&self) -> bool {
        self.received.iter().all(|&r| r)
    }

    /// Plan a steal for idle `thief`: pick the victim with the most
    /// outstanding blocks that the thief's disk also stores, move the
    /// second half of the victim's list. Returns `None` when no victim has
    /// ≥ 2 eligible blocks — halving a single block takes nothing, the
    /// natural termination of the paper's protocol. (A consequence probed
    /// by the failure-injection tests: adaptive access cannot drain a dead
    /// disk's last block, so RRAID-A reads fail under dead servers, while
    /// the speculative schemes' redundancy rides through.)
    pub fn plan_steal(&mut self, thief: usize, placement: &Placement) -> Option<Steal> {
        if !self.pending[thief].is_empty() {
            return None; // not actually idle
        }
        let mut best: Option<(usize, Vec<u32>)> = None;
        for victim in 0..self.pending.len() {
            if victim == thief {
                continue;
            }
            let eligible: Vec<u32> = self.pending[victim]
                .iter()
                .copied()
                .filter(|&s| {
                    !self.received[s as usize] && placement.find_on_disk(thief, s).is_some()
                })
                .collect();
            if best.as_ref().is_none_or(|(_, b)| eligible.len() > b.len()) {
                best = Some((victim, eligible));
            }
        }
        let (victim, eligible) = best?;
        if eligible.len() < 2 {
            return None;
        }
        // Second half of the victim's (ordered) eligible list.
        let take = eligible.len() / 2;
        let semantics: Vec<u32> = eligible[eligible.len() - take..].to_vec();
        // Update client view: remove from victim, assign to thief.
        self.pending[victim].retain(|s| !semantics.contains(s));
        self.pending[thief].extend_from_slice(&semantics);
        Some(Steal {
            thief,
            victim,
            semantics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rraid_placement() -> Placement {
        // 8 originals, 2 replicas, 4 disks.
        Placement::rraid(8, 16, 4)
    }

    #[test]
    fn receive_clears_pending_and_reports_idle() {
        let mut p = AdaptivePlanner::new(8, 4);
        p.on_request(0, 0);
        p.on_request(0, 4);
        p.on_request(1, 1);
        assert!(p.on_receive(0).is_empty(), "slot 0 still has block 4");
        assert_eq!(p.on_receive(4), vec![0], "slot 0 idle now");
        assert_eq!(p.on_receive(1), vec![1]);
        assert!(!p.all_received());
    }

    #[test]
    fn duplicate_receive_is_ignored() {
        let mut p = AdaptivePlanner::new(4, 2);
        p.on_request(0, 2);
        assert_eq!(p.on_receive(2), vec![0]);
        assert!(p.on_receive(2).is_empty());
    }

    #[test]
    fn steal_takes_second_half_from_biggest_victim() {
        let placement = rraid_placement();
        let mut p = AdaptivePlanner::new(8, 4);
        // Initial replica-0 assignment: slot d gets {d, d+4}.
        for i in 0..8u32 {
            p.on_request(i as usize % 4, i);
        }
        // Slot 0 receives both of its blocks.
        p.on_receive(0);
        let idle = p.on_receive(4);
        assert_eq!(idle, vec![0]);
        // Disk 0 stores replica-1 copies of blocks 3 and 7 (rotation), so
        // the only eligible victim is slot 3 with [3, 7].
        let steal = p.plan_steal(0, &placement).expect("steal planned");
        assert_eq!(steal.thief, 0);
        assert_eq!(steal.victim, 3);
        assert_eq!(steal.semantics, vec![7], "second half of [3,7]");
        assert_eq!(p.pending(3), &[3]);
        assert_eq!(p.pending(0), &[7]);
    }

    #[test]
    fn no_steal_when_single_eligible_block() {
        // Floor halving: the victim's last block stays with it — the
        // paper's protocol relies on the victim eventually serving it.
        let placement = rraid_placement();
        let mut p = AdaptivePlanner::new(8, 4);
        p.on_request(3, 3); // victim has one block only
        assert!(p.plan_steal(0, &placement).is_none());
    }

    #[test]
    fn no_steal_without_a_local_copy() {
        // Single-replica placement: thief holds no copies of others' blocks.
        let placement = Placement::rraid(8, 8, 4);
        let mut p = AdaptivePlanner::new(8, 4);
        for i in 0..8u32 {
            p.on_request(i as usize % 4, i);
        }
        p.on_receive(0);
        p.on_receive(4);
        assert!(p.plan_steal(0, &placement).is_none());
    }

    #[test]
    fn busy_thief_cannot_steal() {
        let placement = rraid_placement();
        let mut p = AdaptivePlanner::new(8, 4);
        p.on_request(0, 0);
        p.on_request(1, 1);
        assert!(p.plan_steal(0, &placement).is_none());
    }

    #[test]
    fn all_received_terminates() {
        let mut p = AdaptivePlanner::new(3, 2);
        for s in 0..3 {
            p.on_request(s % 2, s as u32);
            p.on_receive(s as u32);
        }
        assert!(p.all_received());
    }
}
