//! RRAID-A's client-side adaptive planner (Figure 6-2b).
//!
//! The reader first requests the blocks of replica 0 from each disk. When
//! some disk A finishes its assignment, the client finds the disk B with
//! the most outstanding blocks that A also stores, splits B's outstanding
//! list in half, cancels the second half at B, and requests those blocks
//! from A — classic work stealing, one network round-trip per round. This
//! avoids RRAID-S's duplicate reads but pays multiple RTTs, which is why
//! RRAID-A alone is latency-sensitive (Figures 6-12..6-14).
//!
//! This module is pure bookkeeping (no simulation time): the engine tells
//! it about request/receive/cancel events and asks it to plan steals.

use crate::placement::Placement;

/// One planned steal: take `semantics` away from `victim` and read them
/// from `thief` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Steal {
    /// Slot that ran out of work.
    pub thief: usize,
    /// Slot the work is taken from.
    pub victim: usize,
    /// Original-block ids moved (victim's later half).
    pub semantics: Vec<u32>,
}

/// Client-side view of which originals are outstanding on which disk.
#[derive(Debug)]
pub struct AdaptivePlanner {
    /// Outstanding (requested, not received, not cancelled) originals per
    /// slot, in request order.
    pending: Vec<Vec<u32>>,
    /// Originals already received (no point stealing them).
    received: Vec<bool>,
}

impl AdaptivePlanner {
    /// Planner over `k` originals and `slots` disks.
    pub fn new(k: usize, slots: usize) -> Self {
        AdaptivePlanner {
            pending: vec![Vec::new(); slots],
            received: vec![false; k],
        }
    }

    /// Record that `semantic` was requested from `slot`.
    pub fn on_request(&mut self, slot: usize, semantic: u32) {
        self.pending[slot].push(semantic);
    }

    /// Record the arrival of `semantic` (from any slot). Returns the slots
    /// that are now idle and should try to steal.
    pub fn on_receive(&mut self, semantic: u32) -> Vec<usize> {
        if self.received[semantic as usize] {
            return Vec::new();
        }
        self.received[semantic as usize] = true;
        let mut newly_idle = Vec::new();
        for (slot, pend) in self.pending.iter_mut().enumerate() {
            let before = pend.len();
            pend.retain(|&s| s != semantic);
            if before > 0 && pend.is_empty() {
                newly_idle.push(slot);
            }
        }
        newly_idle
    }

    /// Outstanding originals on `slot` (client view).
    pub fn pending(&self, slot: usize) -> &[u32] {
        &self.pending[slot]
    }

    /// Whether every original has been received.
    pub fn all_received(&self) -> bool {
        self.received.iter().all(|&r| r)
    }

    /// Plan a steal for idle `thief`: pick the victim with the most
    /// outstanding blocks that the thief's disk also stores, move the
    /// second half of the victim's list. Returns `None` when no victim has
    /// ≥ 2 eligible blocks — halving a single block takes nothing, the
    /// natural termination of the paper's protocol. (A consequence probed
    /// by the failure-injection tests: adaptive access cannot drain a dead
    /// disk's last block, so RRAID-A reads fail under dead servers, while
    /// the speculative schemes' redundancy rides through.)
    pub fn plan_steal(&mut self, thief: usize, placement: &Placement) -> Option<Steal> {
        if !self.pending[thief].is_empty() {
            return None; // not actually idle
        }
        let mut best: Option<(usize, Vec<u32>)> = None;
        for victim in 0..self.pending.len() {
            if victim == thief {
                continue;
            }
            let eligible: Vec<u32> = self.pending[victim]
                .iter()
                .copied()
                .filter(|&s| {
                    !self.received[s as usize] && placement.find_on_disk(thief, s).is_some()
                })
                .collect();
            if best.as_ref().is_none_or(|(_, b)| eligible.len() > b.len()) {
                best = Some((victim, eligible));
            }
        }
        let (victim, eligible) = best?;
        if eligible.len() < 2 {
            return None;
        }
        // Second half of the victim's (ordered) eligible list.
        let take = eligible.len() / 2;
        let semantics: Vec<u32> = eligible[eligible.len() - take..].to_vec();
        // Update client view: remove from victim, assign to thief.
        self.pending[victim].retain(|s| !semantics.contains(s));
        self.pending[thief].extend_from_slice(&semantics);
        Some(Steal {
            thief,
            victim,
            semantics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rraid_placement() -> Placement {
        // 8 originals, 2 replicas, 4 disks.
        Placement::rraid(8, 16, 4)
    }

    #[test]
    fn receive_clears_pending_and_reports_idle() {
        let mut p = AdaptivePlanner::new(8, 4);
        p.on_request(0, 0);
        p.on_request(0, 4);
        p.on_request(1, 1);
        assert!(p.on_receive(0).is_empty(), "slot 0 still has block 4");
        assert_eq!(p.on_receive(4), vec![0], "slot 0 idle now");
        assert_eq!(p.on_receive(1), vec![1]);
        assert!(!p.all_received());
    }

    #[test]
    fn duplicate_receive_is_ignored() {
        let mut p = AdaptivePlanner::new(4, 2);
        p.on_request(0, 2);
        assert_eq!(p.on_receive(2), vec![0]);
        assert!(p.on_receive(2).is_empty());
    }

    #[test]
    fn steal_takes_second_half_from_biggest_victim() {
        let placement = rraid_placement();
        let mut p = AdaptivePlanner::new(8, 4);
        // Initial replica-0 assignment: slot d gets {d, d+4}.
        for i in 0..8u32 {
            p.on_request(i as usize % 4, i);
        }
        // Slot 0 receives both of its blocks.
        p.on_receive(0);
        let idle = p.on_receive(4);
        assert_eq!(idle, vec![0]);
        // Disk 0 stores replica-1 copies of blocks 3 and 7 (rotation), so
        // the only eligible victim is slot 3 with [3, 7].
        let steal = p.plan_steal(0, &placement).expect("steal planned");
        assert_eq!(steal.thief, 0);
        assert_eq!(steal.victim, 3);
        assert_eq!(steal.semantics, vec![7], "second half of [3,7]");
        assert_eq!(p.pending(3), &[3]);
        assert_eq!(p.pending(0), &[7]);
    }

    #[test]
    fn no_steal_when_single_eligible_block() {
        // Floor halving: the victim's last block stays with it — the
        // paper's protocol relies on the victim eventually serving it.
        let placement = rraid_placement();
        let mut p = AdaptivePlanner::new(8, 4);
        p.on_request(3, 3); // victim has one block only
        assert!(p.plan_steal(0, &placement).is_none());
    }

    #[test]
    fn no_steal_without_a_local_copy() {
        // Single-replica placement: thief holds no copies of others' blocks.
        let placement = Placement::rraid(8, 8, 4);
        let mut p = AdaptivePlanner::new(8, 4);
        for i in 0..8u32 {
            p.on_request(i as usize % 4, i);
        }
        p.on_receive(0);
        p.on_receive(4);
        assert!(p.plan_steal(0, &placement).is_none());
    }

    #[test]
    fn busy_thief_cannot_steal() {
        let placement = rraid_placement();
        let mut p = AdaptivePlanner::new(8, 4);
        p.on_request(0, 0);
        p.on_request(1, 1);
        assert!(p.plan_steal(0, &placement).is_none());
    }

    #[test]
    fn all_received_terminates() {
        let mut p = AdaptivePlanner::new(3, 2);
        for s in 0..3 {
            p.on_request(s % 2, s as u32);
            p.on_receive(s as u32);
        }
        assert!(p.all_received());
    }
}

// ---------------------------------------------------------------------------
// Queue-aware wave scheduling for the speculative (LT-coded) read path.
//
// RobuSTore's original policy requests *every* stored block and cancels the
// leftovers once the decoder finishes. That is optimal at low load but
// self-defeating under traffic: the redundant requests are exactly what
// builds the queues that create tail latency. The types below implement the
// queue-aware alternative — request a first wave sized to the decoder's
// expected need, ordered by *estimated* completion time from live per-disk
// load, and top up from the fastest remaining queues only when completions
// stall or a deadline budget slips.
//
// Like `AdaptivePlanner` above, this is pure bookkeeping: the I/O ring
// feeds it a load snapshot, the client executes the schedule.

/// Live load estimate for one disk, snapshotted from its ring worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskLoad {
    /// Operations accepted by the worker's queue but not yet started.
    pub queued: u64,
    /// Operations the worker has started and not yet completed.
    pub in_flight: u64,
    /// Exponentially weighted moving average of per-op service time in
    /// microseconds; `0.0` until the first completion.
    pub ewma_service_micros: f64,
}

impl DiskLoad {
    /// Queued plus in-flight — the backlog a new request waits behind.
    pub fn backlog(&self) -> u64 {
        self.queued + self.in_flight
    }
}

/// A snapshot of per-disk load, indexed by disk id. An *empty* map (no
/// telemetry source, e.g. the blocking path) makes every policy degenerate
/// to the static arrival-order schedule.
#[derive(Debug, Clone, Default)]
pub struct DiskLoadMap {
    loads: Vec<DiskLoad>,
}

impl DiskLoadMap {
    /// The empty map: no live information, schedules degenerate to static.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from per-disk loads, indexed by disk id.
    pub fn from_loads(loads: Vec<DiskLoad>) -> Self {
        DiskLoadMap { loads }
    }

    /// True when the map carries no live information.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Load estimate for `disk`, if the map knows it.
    pub fn get(&self, disk: usize) -> Option<&DiskLoad> {
        self.loads.get(disk)
    }
}

/// One layout slot as the wave scheduler sees it: a disk holding `blocks`
/// coded blocks of the file, with a nominal (catalogued-bandwidth) per-block
/// service time and the disk's availability class input.
#[derive(Debug, Clone, Copy)]
pub struct WaveSlot {
    /// Disk id (for load lookup).
    pub disk: usize,
    /// Stored blocks of this file on the disk.
    pub blocks: usize,
    /// Nominal per-block service time, microseconds
    /// (`block_bytes / catalogued_bandwidth`).
    pub nominal_micros: f64,
    /// Catalogued availability of the disk (mixing-rule input).
    pub availability: f64,
}

/// The full submission schedule for one access.
///
/// `order` lists every stored block as `(slot, idx)` — slot index into the
/// `WaveSlot` array, block index within that slot — sorted by estimated
/// completion time. The client submits `order[..first_wave]` up front, then
/// extends its submission limit by `topup` entries whenever completions
/// stall or the deadline budget slips, until the decoder finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveSchedule {
    /// Every stored block as `(slot, idx)`, in estimated completion order.
    pub order: Vec<(usize, usize)>,
    /// Entries of `order` to request immediately.
    pub first_wave: usize,
    /// Entries added per top-up wave.
    pub topup: usize,
    /// Budget (µs) after which the client should top up even though
    /// completions are still trickling in; `None` disables the timer
    /// (static schedule: everything is already submitted).
    pub deadline_micros: Option<u64>,
}

/// Queue-aware wave policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReadPolicy {
    /// ε in the first-wave size `⌈k·(1+ε)⌉` — matched to the LT decoder's
    /// expected reception overhead.
    pub first_wave_overhead: f64,
    /// Top-up wave size as a fraction of `k` (at least one block).
    pub topup_fraction: f64,
    /// Deadline budget as a multiple of the first wave's estimated
    /// completion time.
    pub deadline_factor: f64,
}

impl Default for AdaptiveReadPolicy {
    fn default() -> Self {
        AdaptiveReadPolicy {
            first_wave_overhead: 0.5,
            topup_fraction: 0.25,
            deadline_factor: 2.0,
        }
    }
}

/// Merge per-slot block streams by estimated completion time. For a slot
/// with per-block service estimate `srv` and a backlog of `b` foreign ops,
/// its `i`-th block is estimated to complete at `(b + i + 1)·srv` — the
/// accumulation mirrors the virtual-arrival merge the static path uses, so
/// with no live load the two produce bit-identical orders.
fn merge_by_completion(slots: &[WaveSlot], srv: &[f64], start: &[f64]) -> Vec<(usize, usize)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq, PartialOrd)]
    struct T(f64);
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Eq for T {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for T {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .expect("finite completion times")
        }
    }
    let mut heap: BinaryHeap<Reverse<(T, usize, usize)>> = BinaryHeap::new();
    for (slot, ws) in slots.iter().enumerate() {
        if ws.blocks > 0 {
            heap.push(Reverse((T(start[slot] + srv[slot]), slot, 0)));
        }
    }
    let mut order = Vec::new();
    while let Some(Reverse((T(t), slot, idx))) = heap.pop() {
        order.push((slot, idx));
        if idx + 1 < slots[slot].blocks {
            heap.push(Reverse((T(t + srv[slot]), slot, idx + 1)));
        }
    }
    order
}

/// Estimated completion time of the `n`-th entry (0-based) of a merged
/// order — recomputed by replaying the accumulation.
fn completion_time_at(order: &[(usize, usize)], srv: &[f64], start: &[f64], n: usize) -> f64 {
    let (slot, idx) = order[n];
    start[slot] + (idx as f64 + 1.0) * srv[slot]
}

impl AdaptiveReadPolicy {
    /// The static (request-everything) schedule: blocks in nominal
    /// arrival order, all submitted as the first wave, no deadline. This
    /// is the differential oracle the adaptive policy must match byte for
    /// byte, and exactly the order the pre-wave client used.
    pub fn static_schedule(slots: &[WaveSlot]) -> WaveSchedule {
        let srv: Vec<f64> = slots.iter().map(|s| s.nominal_micros).collect();
        let start = vec![0.0; slots.len()];
        let order = merge_by_completion(slots, &srv, &start);
        let n = order.len();
        WaveSchedule {
            order,
            first_wave: n,
            topup: n.max(1),
            deadline_micros: None,
        }
    }

    /// Build the submission schedule for one access over `slots`, needing
    /// `k` decoded blocks, given the live `load` snapshot.
    ///
    /// Per-slot service time is `max(nominal, EWMA)` — the nominal floor
    /// keeps a freshly idle disk from looking infinitely fast — and each
    /// slot's stream starts behind its current backlog. An empty load map
    /// degenerates to [`Self::static_schedule`]. The first wave is
    /// `⌈k·(1+ε)⌉` blocks, fixed up so it touches both availability
    /// classes (the planner's mixing rule): if every first-wave block sits
    /// on one side of the median availability while the other side holds
    /// blocks, the other side's earliest block is swapped into the wave.
    pub fn schedule(&self, slots: &[WaveSlot], k: usize, load: &DiskLoadMap) -> WaveSchedule {
        if load.is_empty() {
            return Self::static_schedule(slots);
        }
        let srv: Vec<f64> = slots
            .iter()
            .map(|s| match load.get(s.disk) {
                Some(l) if l.ewma_service_micros > s.nominal_micros => l.ewma_service_micros,
                _ => s.nominal_micros,
            })
            .collect();
        let start: Vec<f64> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let backlog = load.get(s.disk).map_or(0, |l| l.backlog());
                backlog as f64 * srv[i]
            })
            .collect();
        let mut order = merge_by_completion(slots, &srv, &start);
        let total = order.len();
        let first_wave = ((k as f64 * (1.0 + self.first_wave_overhead)).ceil() as usize)
            .clamp(1.min(total), total);
        fix_up_mixing(&mut order, slots, first_wave);
        let topup = ((k as f64 * self.topup_fraction).ceil() as usize).max(1);
        let deadline_micros = if first_wave < total && first_wave > 0 {
            let t = completion_time_at(&order, &srv, &start, first_wave - 1);
            Some((t * self.deadline_factor).ceil() as u64)
        } else {
            None
        };
        WaveSchedule {
            order,
            first_wave,
            topup,
            deadline_micros,
        }
    }
}

/// Enforce the planner's availability-class mixing rule on the first wave:
/// classes split at the median availability of block-holding slots (at or
/// above the median is the high class). If one non-empty class has no
/// block inside `order[..first_wave]`, swap its earliest entry into the
/// last first-wave position. The rest of the order is untouched, so the
/// static-oracle prefix property degrades by at most one entry.
fn fix_up_mixing(order: &mut [(usize, usize)], slots: &[WaveSlot], first_wave: usize) {
    if first_wave == 0 || first_wave >= order.len() {
        return;
    }
    let mut avails: Vec<f64> = slots
        .iter()
        .filter(|s| s.blocks > 0)
        .map(|s| s.availability)
        .collect();
    if avails.len() < 2 {
        return;
    }
    avails.sort_by(|a, b| a.partial_cmp(b).expect("finite availability"));
    let median = avails[avails.len() / 2];
    let is_high = |slot: usize| slots[slot].availability >= median;
    let wave_has = |order: &[(usize, usize)], high: bool| {
        order[..first_wave].iter().any(|&(s, _)| is_high(s) == high)
    };
    for class_high in [false, true] {
        let class_exists = slots
            .iter()
            .enumerate()
            .any(|(i, s)| s.blocks > 0 && is_high(i) == class_high);
        if class_exists && !wave_has(order, class_high) {
            if let Some(pos) = order[first_wave..]
                .iter()
                .position(|&(s, _)| is_high(s) == class_high)
            {
                order.swap(first_wave - 1, first_wave + pos);
            }
        }
    }
}

#[cfg(test)]
mod wave_tests {
    use super::*;

    fn slots(blocks: &[usize], nominal: f64) -> Vec<WaveSlot> {
        blocks
            .iter()
            .enumerate()
            .map(|(d, &b)| WaveSlot {
                disk: d,
                blocks: b,
                nominal_micros: nominal,
                availability: if d % 2 == 0 { 0.999 } else { 0.95 },
            })
            .collect()
    }

    #[test]
    fn empty_load_degenerates_to_static() {
        let s = slots(&[3, 3, 3, 3], 100.0);
        let policy = AdaptiveReadPolicy::default();
        let adaptive = policy.schedule(&s, 4, &DiskLoadMap::empty());
        let oracle = AdaptiveReadPolicy::static_schedule(&s);
        assert_eq!(adaptive, oracle);
        assert_eq!(adaptive.first_wave, adaptive.order.len());
        assert_eq!(adaptive.deadline_micros, None);
    }

    #[test]
    fn zero_load_map_matches_static_order() {
        // A present-but-quiescent load map must give the static order too
        // (EWMA below nominal, zero backlog).
        let s = slots(&[2, 4, 1, 3], 250.0);
        let load = DiskLoadMap::from_loads(vec![DiskLoad::default(); 4]);
        let policy = AdaptiveReadPolicy::default();
        let adaptive = policy.schedule(&s, 20, &load);
        let oracle = AdaptiveReadPolicy::static_schedule(&s);
        assert_eq!(adaptive.order, oracle.order);
    }

    #[test]
    fn backlogged_disk_is_scheduled_late() {
        let s = slots(&[2, 2], 100.0);
        let load = DiskLoadMap::from_loads(vec![
            DiskLoad {
                queued: 5,
                in_flight: 1,
                ewma_service_micros: 0.0,
            },
            DiskLoad::default(),
        ]);
        let sched = AdaptiveReadPolicy::default().schedule(&s, 2, &load);
        // Disk 1's two blocks (100, 200 µs) beat disk 0's (700, 800 µs).
        assert_eq!(sched.order, vec![(1, 0), (1, 1), (0, 0), (0, 1)]);
    }

    #[test]
    fn slow_ewma_overrides_nominal() {
        let s = slots(&[1, 1], 100.0);
        let load = DiskLoadMap::from_loads(vec![
            DiskLoad {
                queued: 0,
                in_flight: 0,
                ewma_service_micros: 5_000.0,
            },
            DiskLoad::default(),
        ]);
        let sched = AdaptiveReadPolicy::default().schedule(&s, 1, &load);
        assert_eq!(sched.order[0], (1, 0));
    }

    #[test]
    fn first_wave_sized_from_reception_overhead() {
        let s = slots(&[8, 8, 8, 8], 100.0);
        let load = DiskLoadMap::from_loads(vec![DiskLoad::default(); 4]);
        let sched = AdaptiveReadPolicy::default().schedule(&s, 16, &load);
        assert_eq!(sched.first_wave, 24, "⌈16·1.5⌉");
        assert_eq!(sched.topup, 4, "⌈16·0.25⌉");
        assert!(sched.deadline_micros.is_some());
        assert_eq!(sched.order.len(), 32);
    }

    #[test]
    fn first_wave_clamped_to_total() {
        let s = slots(&[2, 2], 100.0);
        let load = DiskLoadMap::from_loads(vec![DiskLoad::default(); 2]);
        let sched = AdaptiveReadPolicy::default().schedule(&s, 16, &load);
        assert_eq!(sched.first_wave, 4);
        assert_eq!(sched.deadline_micros, None, "nothing left to top up");
    }

    #[test]
    fn mixing_fix_up_pulls_in_missing_class() {
        // Disk 0 (high class) is so fast the natural first wave is all
        // disk 0; the fix-up must swap one low-class block in.
        let s = vec![
            WaveSlot {
                disk: 0,
                blocks: 6,
                nominal_micros: 10.0,
                availability: 0.999,
            },
            WaveSlot {
                disk: 1,
                blocks: 6,
                nominal_micros: 10_000.0,
                availability: 0.95,
            },
        ];
        let load = DiskLoadMap::from_loads(vec![DiskLoad::default(); 2]);
        let policy = AdaptiveReadPolicy {
            first_wave_overhead: 0.0,
            ..Default::default()
        };
        let sched = policy.schedule(&s, 4, &load);
        assert_eq!(sched.first_wave, 4);
        let wave = &sched.order[..4];
        assert!(
            wave.iter().any(|&(slot, _)| slot == 1),
            "low-availability class must appear in the first wave: {wave:?}"
        );
        assert!(wave.iter().any(|&(slot, _)| slot == 0));
        // Everything is still a permutation of all stored blocks.
        let mut sorted = sched.order.clone();
        sorted.sort_unstable();
        let expect: Vec<(usize, usize)> = (0..2_usize)
            .flat_map(|s| (0..6).map(move |i| (s, i)))
            .collect();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn deadline_scales_with_first_wave_estimate() {
        let s = slots(&[4, 4], 100.0);
        let load = DiskLoadMap::from_loads(vec![DiskLoad::default(); 2]);
        let policy = AdaptiveReadPolicy {
            first_wave_overhead: 0.0,
            topup_fraction: 0.5,
            deadline_factor: 3.0,
        };
        let sched = policy.schedule(&s, 4, &load);
        assert_eq!(sched.first_wave, 4);
        // First wave = first two blocks of each disk; the 4th entry
        // completes at 200 µs, so the budget is 600 µs.
        assert_eq!(sched.deadline_micros, Some(600));
    }
}
