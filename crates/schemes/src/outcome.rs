//! Access metrics and multi-trial statistics (§6.2.3).
//!
//! Three metrics, exactly as the paper defines them:
//!
//! * **Access bandwidth** — original data size / access latency, where the
//!   latency includes connection setup, disk service, transfer, and coding
//!   time.
//! * **Variation of access latency** — the standard deviation of latency
//!   over the trials of one configuration.
//! * **I/O overhead** — (bytes sent over networks − original size) /
//!   original size; cache hits still cross the network, so they count.

use robustore_simkit::{OnlineStats, SimDuration, Summary};

/// How one block-request instance ended. Under a shared fault schedule
/// the four schemes produce directly comparable logs of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// The block arrived and was counted toward completion.
    Served,
    /// The access completed from other blocks first and the request was
    /// cancelled (the speculative-access I/O overhead).
    CancelledBySpeculation,
    /// The adaptive planner gave up waiting on the disk and re-issued
    /// the work elsewhere.
    TimedOut,
    /// The request was lost: its disk was down or failed mid-access, or
    /// retries of a flaky disk were exhausted.
    Failed,
    /// The queue-aware wave policy never issued the request: the decoder
    /// finished before the block's wave came up. Unlike
    /// [`CancelledBySpeculation`](Self::CancelledBySpeculation) these cost
    /// no disk or network work at all.
    Deferred,
}

/// One entry of the per-request outcome log: which slot served which
/// semantic block, and how that request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Slot index (into the access's selected disks) the request went to.
    pub slot: usize,
    /// Semantic block index the request carried.
    pub semantic: u32,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

/// The result of one simulated access.
#[derive(Debug, Clone)]
pub struct AccessOutcome {
    /// Original data size, bytes.
    pub data_bytes: u64,
    /// End-to-end access latency (metadata, disk, network, decode tail).
    pub latency: SimDuration,
    /// Total foreground bytes that crossed the network, including
    /// duplicates, cache-served bytes, and bytes in flight at cancel time.
    pub network_bytes: u64,
    /// Blocks the client had received when the access completed.
    pub blocks_at_completion: usize,
    /// Blocks served from filer caches.
    pub cache_hit_blocks: usize,
    /// RobuSTore only: LT reception overhead ((received/K) − 1) at
    /// completion; 0 for other schemes.
    pub reception_overhead: f64,
    /// True if the access could not complete (injected failures removed
    /// too many blocks). Latency/bandwidth are meaningless when set.
    pub failed: bool,
    /// Per-request outcome log in completion order. Deterministic for a
    /// given (config, fault scenario, seed): two runs produce identical
    /// logs, and different schemes under the same fault schedule can be
    /// compared request by request.
    pub request_log: Vec<RequestRecord>,
}

impl AccessOutcome {
    /// Delivered bandwidth, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.data_bytes as f64 / self.latency.as_secs_f64()
    }

    /// I/O overhead per the paper's definition.
    pub fn io_overhead(&self) -> f64 {
        (self.network_bytes as f64 - self.data_bytes as f64) / self.data_bytes as f64
    }

    /// Requests in the log with the given outcome.
    pub fn count_outcome(&self, outcome: RequestOutcome) -> u64 {
        self.request_log
            .iter()
            .filter(|r| r.outcome == outcome)
            .count() as u64
    }
}

/// Aggregated statistics over the trials of one configuration.
#[derive(Debug, Clone, Default)]
pub struct TrialStats {
    /// Trials that failed to complete (failure injection).
    pub failures: u64,
    /// Access bandwidth (bytes/second) across trials.
    pub bandwidth: OnlineStats,
    /// Access latency (seconds) across trials.
    pub latency: OnlineStats,
    /// I/O overhead (ratio) across trials.
    pub io_overhead: OnlineStats,
    /// Reception overhead (ratio) across trials.
    pub reception_overhead: OnlineStats,
    /// Cache-hit blocks across trials.
    pub cache_hits: OnlineStats,
    /// Requests served, across all trials (including failed trials).
    pub served_requests: u64,
    /// Requests cancelled by speculative completion, across all trials.
    pub cancelled_requests: u64,
    /// Requests abandoned by the adaptive planner, across all trials.
    pub timed_out_requests: u64,
    /// Requests lost to injected faults, across all trials.
    pub failed_requests: u64,
    /// Requests the wave policy never issued, across all trials.
    pub deferred_requests: u64,
}

impl TrialStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one trial. Failed accesses count toward [`Self::failures`]
    /// and contribute no performance samples.
    pub fn push(&mut self, o: &AccessOutcome) {
        self.served_requests += o.count_outcome(RequestOutcome::Served);
        self.cancelled_requests += o.count_outcome(RequestOutcome::CancelledBySpeculation);
        self.timed_out_requests += o.count_outcome(RequestOutcome::TimedOut);
        self.failed_requests += o.count_outcome(RequestOutcome::Failed);
        self.deferred_requests += o.count_outcome(RequestOutcome::Deferred);
        if o.failed {
            self.failures += 1;
            return;
        }
        self.bandwidth.push(o.bandwidth());
        self.latency.push(o.latency.as_secs_f64());
        self.io_overhead.push(o.io_overhead());
        self.reception_overhead.push(o.reception_overhead);
        self.cache_hits.push(o.cache_hit_blocks as f64);
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> u64 {
        self.bandwidth.count()
    }

    /// Mean bandwidth in MB/s (10⁶ bytes, as the paper reports).
    pub fn mean_bandwidth_mbps(&self) -> f64 {
        self.bandwidth.mean() / 1e6
    }

    /// Standard deviation of latency in seconds — the robustness metric.
    pub fn latency_stdev_secs(&self) -> f64 {
        self.latency.stdev()
    }

    /// Mean latency in seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        self.latency.mean()
    }

    /// Mean I/O overhead ratio.
    pub fn mean_io_overhead(&self) -> f64 {
        self.io_overhead.mean()
    }

    /// Frozen summaries for reporting.
    pub fn summaries(&self) -> (Summary, Summary, Summary) {
        (
            self.bandwidth.summary(),
            self.latency.summary(),
            self.io_overhead.summary(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(latency_s: f64, net: u64) -> AccessOutcome {
        AccessOutcome {
            data_bytes: 1_000_000,
            latency: SimDuration::from_secs_f64(latency_s),
            network_bytes: net,
            blocks_at_completion: 10,
            cache_hit_blocks: 0,
            reception_overhead: 0.5,
            failed: false,
            request_log: vec![
                RequestRecord {
                    slot: 0,
                    semantic: 0,
                    outcome: RequestOutcome::Served,
                },
                RequestRecord {
                    slot: 1,
                    semantic: 1,
                    outcome: RequestOutcome::CancelledBySpeculation,
                },
                RequestRecord {
                    slot: 1,
                    semantic: 2,
                    outcome: RequestOutcome::Deferred,
                },
            ],
        }
    }

    #[test]
    fn bandwidth_and_overhead() {
        let o = outcome(2.0, 1_500_000);
        assert!((o.bandwidth() - 500_000.0).abs() < 1e-6);
        assert!((o.io_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_aggregate() {
        let mut s = TrialStats::new();
        s.push(&outcome(1.0, 1_000_000));
        s.push(&outcome(3.0, 2_000_000));
        assert_eq!(s.trials(), 2);
        assert!((s.mean_latency_secs() - 2.0).abs() < 1e-9);
        assert!((s.latency_stdev_secs() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!((s.mean_io_overhead() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn request_outcomes_are_counted() {
        let o = outcome(1.0, 1_000_000);
        assert_eq!(o.count_outcome(RequestOutcome::Served), 1);
        assert_eq!(o.count_outcome(RequestOutcome::Failed), 0);
        let mut s = TrialStats::new();
        s.push(&o);
        s.push(&o);
        assert_eq!(s.served_requests, 2);
        assert_eq!(s.cancelled_requests, 2);
        assert_eq!(s.timed_out_requests, 0);
        assert_eq!(s.failed_requests, 0);
        assert_eq!(s.deferred_requests, 2);
    }

    #[test]
    fn negative_overhead_impossible_at_or_above_original() {
        // A scheme that sends exactly the original bytes has zero overhead.
        let o = outcome(1.0, 1_000_000);
        assert_eq!(o.io_overhead(), 0.0);
    }
}
