//! Access metrics and multi-trial statistics (§6.2.3).
//!
//! Three metrics, exactly as the paper defines them:
//!
//! * **Access bandwidth** — original data size / access latency, where the
//!   latency includes connection setup, disk service, transfer, and coding
//!   time.
//! * **Variation of access latency** — the standard deviation of latency
//!   over the trials of one configuration.
//! * **I/O overhead** — (bytes sent over networks − original size) /
//!   original size; cache hits still cross the network, so they count.

use robustore_simkit::{OnlineStats, SimDuration, Summary};

/// The result of one simulated access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Original data size, bytes.
    pub data_bytes: u64,
    /// End-to-end access latency (metadata, disk, network, decode tail).
    pub latency: SimDuration,
    /// Total foreground bytes that crossed the network, including
    /// duplicates, cache-served bytes, and bytes in flight at cancel time.
    pub network_bytes: u64,
    /// Blocks the client had received when the access completed.
    pub blocks_at_completion: usize,
    /// Blocks served from filer caches.
    pub cache_hit_blocks: usize,
    /// RobuSTore only: LT reception overhead ((received/K) − 1) at
    /// completion; 0 for other schemes.
    pub reception_overhead: f64,
    /// True if the access could not complete (injected failures removed
    /// too many blocks). Latency/bandwidth are meaningless when set.
    pub failed: bool,
}

impl AccessOutcome {
    /// Delivered bandwidth, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.data_bytes as f64 / self.latency.as_secs_f64()
    }

    /// I/O overhead per the paper's definition.
    pub fn io_overhead(&self) -> f64 {
        (self.network_bytes as f64 - self.data_bytes as f64) / self.data_bytes as f64
    }
}

/// Aggregated statistics over the trials of one configuration.
#[derive(Debug, Clone, Default)]
pub struct TrialStats {
    /// Trials that failed to complete (failure injection).
    pub failures: u64,
    /// Access bandwidth (bytes/second) across trials.
    pub bandwidth: OnlineStats,
    /// Access latency (seconds) across trials.
    pub latency: OnlineStats,
    /// I/O overhead (ratio) across trials.
    pub io_overhead: OnlineStats,
    /// Reception overhead (ratio) across trials.
    pub reception_overhead: OnlineStats,
    /// Cache-hit blocks across trials.
    pub cache_hits: OnlineStats,
}

impl TrialStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one trial. Failed accesses count toward [`Self::failures`]
    /// and contribute no performance samples.
    pub fn push(&mut self, o: &AccessOutcome) {
        if o.failed {
            self.failures += 1;
            return;
        }
        self.bandwidth.push(o.bandwidth());
        self.latency.push(o.latency.as_secs_f64());
        self.io_overhead.push(o.io_overhead());
        self.reception_overhead.push(o.reception_overhead);
        self.cache_hits.push(o.cache_hit_blocks as f64);
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> u64 {
        self.bandwidth.count()
    }

    /// Mean bandwidth in MB/s (10⁶ bytes, as the paper reports).
    pub fn mean_bandwidth_mbps(&self) -> f64 {
        self.bandwidth.mean() / 1e6
    }

    /// Standard deviation of latency in seconds — the robustness metric.
    pub fn latency_stdev_secs(&self) -> f64 {
        self.latency.stdev()
    }

    /// Mean latency in seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        self.latency.mean()
    }

    /// Mean I/O overhead ratio.
    pub fn mean_io_overhead(&self) -> f64 {
        self.io_overhead.mean()
    }

    /// Frozen summaries for reporting.
    pub fn summaries(&self) -> (Summary, Summary, Summary) {
        (
            self.bandwidth.summary(),
            self.latency.summary(),
            self.io_overhead.summary(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(latency_s: f64, net: u64) -> AccessOutcome {
        AccessOutcome {
            data_bytes: 1_000_000,
            latency: SimDuration::from_secs_f64(latency_s),
            network_bytes: net,
            blocks_at_completion: 10,
            cache_hit_blocks: 0,
            reception_overhead: 0.5,
            failed: false,
        }
    }

    #[test]
    fn bandwidth_and_overhead() {
        let o = outcome(2.0, 1_500_000);
        assert!((o.bandwidth() - 500_000.0).abs() < 1e-6);
        assert!((o.io_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_aggregate() {
        let mut s = TrialStats::new();
        s.push(&outcome(1.0, 1_000_000));
        s.push(&outcome(3.0, 2_000_000));
        assert_eq!(s.trials(), 2);
        assert!((s.mean_latency_secs() - 2.0).abs() < 1e-9);
        assert!((s.latency_stdev_secs() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!((s.mean_io_overhead() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn negative_overhead_impossible_at_or_above_original() {
        // A scheme that sends exactly the original bytes has zero overhead.
        let o = outcome(1.0, 1_000_000);
        assert_eq!(o.io_overhead(), 0.0);
    }
}
