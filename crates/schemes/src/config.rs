//! Access configuration.
//!
//! The paper sweeps one knob at a time from a fixed baseline (§6.2.5): a
//! 1 GB access over 64 disks, 1 ms RTT, 1 MB blocks, 3× data redundancy
//! (RAID-0 always 1×), heterogeneous in-disk layout, no competitive load,
//! no filer cache, 100 trials. `AccessConfig::default()` is that baseline.

use robustore_cluster::{BackgroundPolicy, ClusterConfig, LayoutPolicy};
use robustore_erasure::LtParams;
use robustore_simkit::FaultScenario;

/// Which storage scheme performs the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Plain striping, zero redundancy, parallel read-all.
    Raid0,
    /// Rotated replication + speculative access.
    RraidS,
    /// Rotated replication + adaptive multi-round access.
    RraidA,
    /// LT erasure coding + speculative access (the paper's system).
    RobuStore,
}

impl SchemeKind {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Raid0,
        SchemeKind::RraidS,
        SchemeKind::RraidA,
        SchemeKind::RobuStore,
    ];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Raid0 => "RAID-0",
            SchemeKind::RraidS => "RRAID-S",
            SchemeKind::RraidA => "RRAID-A",
            SchemeKind::RobuStore => "RobuSTore",
        }
    }

    /// Whether the scheme stores redundant data at all.
    pub fn uses_redundancy(&self) -> bool {
        !matches!(self, SchemeKind::Raid0)
    }
}

/// Read, write, or the read-after-write composition of §6.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A fresh read of balanced-striped data.
    Read,
    /// A write (speculative for RobuSTore, uniform for the others).
    Write,
    /// A write followed by an independent read of the resulting layout —
    /// unbalanced striping for RobuSTore, balanced for the baselines.
    ReadAfterWrite,
}

/// How RobuSTore coded blocks are striped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Striping {
    /// Round-robin, equal counts per disk.
    Balanced,
    /// Proportional to observed per-disk write bandwidth (what speculative
    /// writing produces).
    Unbalanced,
}

/// Full description of one access experiment.
#[derive(Debug, Clone)]
pub struct AccessConfig {
    /// The scheme under test.
    pub scheme: SchemeKind,
    /// Read / write / read-after-write.
    pub kind: AccessKind,
    /// Original data size in bytes.
    pub data_bytes: u64,
    /// Coding/striping block size in bytes.
    pub block_bytes: u64,
    /// Disks selected for the access (chosen at random from the pool).
    pub num_disks: usize,
    /// Degree of data redundancy D = N/K − 1 (ignored by RAID-0).
    pub redundancy: f64,
    /// LT coding parameters (RobuSTore only).
    pub lt: LtParams,
    /// Decode bandwidth charged for the pipelined LT decode tail,
    /// bytes/second (§6.2.5: 500 MB/s).
    pub decode_bandwidth: f64,
    /// RobuSTore striping mode for plain reads. (`ReadAfterWrite` derives
    /// the layout from the simulated write instead.)
    pub striping: Striping,
    /// Cluster shape, RTT, cache, metadata overhead.
    pub cluster: ClusterConfig,
    /// Per-disk layout policy.
    pub layout: LayoutPolicy,
    /// Competitive workload policy.
    pub background: BackgroundPolicy,
    /// Whether reads cancel outstanding requests on completion (§5.3.3).
    /// Disabling this is the cancellation ablation: every requested block
    /// is then read and shipped, and I/O overhead balloons to the full
    /// stored redundancy.
    pub read_cancellation: bool,
    /// Failure injection: this many of the selected disks are down for
    /// the whole access — their servers never respond to requests,
    /// writes, or cancels. Erasure-coded redundancy should ride through
    /// up to its margin (§4.1.3); RAID-0 cannot survive even one.
    pub failed_disks: usize,
    /// Dynamic fault injection: a scenario expanded per trial into a
    /// deterministic schedule of mid-access slowdowns, failures, flaky
    /// windows, or load bursts (unlike `failed_disks`, which is a
    /// static from-the-start outage). The schedule depends only on
    /// (scenario, seed), so every scheme sees identical faults.
    pub faults: FaultScenario,
    /// Client-side encode bandwidth charged on RobuSTore writes,
    /// bytes/second. `None` (default) charges no encode time — the
    /// legacy write model. With `Some(rate)`, coded block `j` leaves the
    /// encoder at `start + (j+1)·block/rate` and cannot be sent earlier,
    /// which quantifies the encode/I-O overlap of the pipelined client
    /// write path.
    pub encode_bandwidth: Option<f64>,
    /// With encode modeling on: `true` holds every send until the whole
    /// target set is encoded (the barrier mode the pipelined write path
    /// replaces); `false` streams each block as it leaves the encoder.
    pub encode_barrier: bool,
}

impl Default for AccessConfig {
    fn default() -> Self {
        AccessConfig {
            scheme: SchemeKind::RobuStore,
            kind: AccessKind::Read,
            data_bytes: 1 << 30,
            block_bytes: 1 << 20,
            num_disks: 64,
            redundancy: 3.0,
            lt: LtParams::default(),
            decode_bandwidth: 500e6,
            striping: Striping::Balanced,
            cluster: ClusterConfig::default(),
            layout: LayoutPolicy::Heterogeneous,
            background: BackgroundPolicy::None,
            read_cancellation: true,
            failed_disks: 0,
            faults: FaultScenario::None,
            encode_bandwidth: None,
            encode_barrier: false,
        }
    }
}

impl AccessConfig {
    /// Number of original blocks K.
    pub fn k(&self) -> usize {
        (self.data_bytes.div_ceil(self.block_bytes)) as usize
    }

    /// Number of stored blocks N for this scheme: K for RAID-0,
    /// ⌈(1+D)·K⌉ otherwise.
    pub fn n(&self) -> usize {
        if self.scheme.uses_redundancy() {
            ((1.0 + self.redundancy) * self.k() as f64).round() as usize
        } else {
            self.k()
        }
    }

    /// Replica count for the RRAID schemes: 1+D rounded to at least 1.
    /// (The paper's RRAID layout "allows arbitrary redundancy"; we realise
    /// fractional redundancy by giving the first `frac·K` originals one
    /// extra copy.)
    pub fn full_replicas(&self) -> usize {
        ((1.0 + self.redundancy).floor() as usize).max(1)
    }

    /// Baseline variants used throughout the harness.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the access kind.
    pub fn with_kind(mut self, kind: AccessKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the number of selected disks.
    pub fn with_disks(mut self, n: usize) -> Self {
        self.num_disks = n;
        self
    }

    /// Set the redundancy degree.
    pub fn with_redundancy(mut self, d: f64) -> Self {
        self.redundancy = d;
        self
    }

    /// Set the fault-injection scenario.
    pub fn with_faults(mut self, faults: FaultScenario) -> Self {
        self.faults = faults;
        self
    }

    /// Model client-side encode time on RobuSTore writes at `bandwidth`
    /// bytes/second; `barrier` selects encode-everything-first over
    /// streaming.
    pub fn with_encode(mut self, bandwidth: f64, barrier: bool) -> Self {
        self.encode_bandwidth = Some(bandwidth);
        self.encode_barrier = barrier;
        self
    }

    /// Sanity checks before running.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        if self.data_bytes == 0 || self.block_bytes == 0 {
            return Err("data and block sizes must be positive".into());
        }
        if self.block_bytes > self.data_bytes {
            return Err("block larger than data".into());
        }
        if self.num_disks == 0 || self.num_disks > self.cluster.num_disks {
            return Err(format!(
                "num_disks {} out of range 1..={}",
                self.num_disks, self.cluster.num_disks
            ));
        }
        if self.redundancy < 0.0 {
            return Err("redundancy cannot be negative".into());
        }
        if self.decode_bandwidth <= 0.0 {
            return Err("decode bandwidth must be positive".into());
        }
        if let Some(bw) = self.encode_bandwidth {
            if bw <= 0.0 {
                return Err("encode bandwidth must be positive".into());
            }
        }
        if self.failed_disks >= self.num_disks {
            return Err("cannot fail every selected disk".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = AccessConfig::default();
        assert_eq!(c.k(), 1024);
        assert_eq!(c.n(), 4096);
        assert_eq!(c.num_disks, 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn raid0_ignores_redundancy() {
        let c = AccessConfig::default().with_scheme(SchemeKind::Raid0);
        assert_eq!(c.n(), c.k());
    }

    #[test]
    fn replica_counts() {
        let c = AccessConfig::default().with_redundancy(3.0);
        assert_eq!(c.full_replicas(), 4);
        let c = c.with_redundancy(0.0);
        assert_eq!(c.full_replicas(), 1);
        let c = c.with_redundancy(1.4);
        assert_eq!(c.full_replicas(), 2);
    }

    #[test]
    fn validation() {
        assert!(AccessConfig::default().with_disks(0).validate().is_err());
        assert!(AccessConfig::default().with_disks(129).validate().is_err());
        assert!(AccessConfig::default()
            .with_redundancy(-1.0)
            .validate()
            .is_err());
        let mut c = AccessConfig::default();
        c.block_bytes = c.data_bytes * 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_scenario_defaults_to_none() {
        let c = AccessConfig::default();
        assert!(c.faults.is_none());
        let c = c.with_faults(FaultScenario::one_slow_disk(8.0));
        assert_eq!(c.faults.name(), "one_slow_disk");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn encode_model_defaults_off_and_validates() {
        let c = AccessConfig::default();
        assert!(c.encode_bandwidth.is_none());
        assert!(!c.encode_barrier);
        let c = c.with_encode(400e6, true);
        assert_eq!(c.encode_bandwidth, Some(400e6));
        assert!(c.encode_barrier);
        assert!(c.validate().is_ok());
        assert!(AccessConfig::default()
            .with_encode(0.0, false)
            .validate()
            .is_err());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SchemeKind::RobuStore.name(), "RobuSTore");
        assert_eq!(SchemeKind::ALL.len(), 4);
        assert!(!SchemeKind::Raid0.uses_redundancy());
        assert!(SchemeKind::RraidS.uses_redundancy());
    }
}
