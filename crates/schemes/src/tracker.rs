//! Scheme-specific completion detection for read accesses.
//!
//! Each scheme decides differently when "enough" blocks have arrived
//! (§6.2.1): RAID-0 needs every block, the RRAID schemes need one copy of
//! every original, RobuSTore needs the LT peeling decoder to finish.

use robustore_erasure::lt::{LtCode, SymbolDecoder};
use robustore_erasure::replication::CoverageTracker;

/// Read-completion tracker.
pub enum ReadTracker<'a> {
    /// One copy of every original (RAID-0 degenerates to this with exactly
    /// one copy existing; RRAID-S/A deduplicate replicas through it).
    Coverage(CoverageTracker),
    /// LT peeling over coded-block ids (RobuSTore).
    Lt(SymbolDecoder<'a>),
}

impl<'a> ReadTracker<'a> {
    /// Tracker for plain/replicated layouts over `k` originals.
    pub fn coverage(k: usize) -> Self {
        ReadTracker::Coverage(CoverageTracker::new(k))
    }

    /// Tracker for an LT-coded layout.
    pub fn lt(code: &'a LtCode) -> Self {
        ReadTracker::Lt(SymbolDecoder::new(code))
    }

    /// Record the arrival of a block (original id for coverage, coded id
    /// for LT). Returns `true` once the read can complete.
    pub fn receive(&mut self, semantic: u32) -> bool {
        match self {
            ReadTracker::Coverage(t) => t.receive(semantic as usize),
            ReadTracker::Lt(d) => d.receive(semantic as usize),
        }
    }

    /// Whether the read is complete.
    pub fn is_complete(&self) -> bool {
        match self {
            ReadTracker::Coverage(t) => t.is_complete(),
            ReadTracker::Lt(d) => d.is_complete(),
        }
    }

    /// Distinct useful arrivals so far (coverage counts every arrival
    /// including duplicates; LT counts distinct coded blocks).
    pub fn received(&self) -> usize {
        match self {
            ReadTracker::Coverage(t) => t.received(),
            ReadTracker::Lt(d) => d.received(),
        }
    }

    /// Whether `semantic` has already been covered/received — used by
    /// RRAID-A to avoid stealing blocks it already has.
    pub fn has(&self, semantic: u32) -> bool {
        match self {
            ReadTracker::Coverage(t) => t.is_covered(semantic as usize),
            // For LT, a coded block is "had" only if that exact coded id
            // arrived (coded blocks are not interchangeable one-for-one).
            ReadTracker::Lt(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_erasure::LtParams;

    #[test]
    fn coverage_completes_on_all_originals() {
        let mut t = ReadTracker::coverage(3);
        assert!(!t.receive(0));
        assert!(!t.receive(0));
        assert!(!t.receive(1));
        assert!(t.receive(2));
        assert!(t.is_complete());
        assert!(t.has(0));
        assert!(!ReadTracker::coverage(3).has(0));
    }

    #[test]
    fn lt_completes_via_peeling() {
        let code = LtCode::plan(16, 64, LtParams::default(), 99).unwrap();
        let mut t = ReadTracker::lt(&code);
        let mut done = false;
        for j in 0..64 {
            if t.receive(j) {
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(t.received() >= 16);
    }

    #[test]
    fn received_counts_duplicates_for_coverage() {
        let mut t = ReadTracker::coverage(2);
        t.receive(0);
        t.receive(0);
        assert_eq!(t.received(), 2);
    }
}
